//! Banzhaf values from d-DNNF circuits (extension).
//!
//! The paper's related-work section situates Shapley values among other
//! responsibility measures for query answers (causal responsibility,
//! causal effect [24, 30]). The *Banzhaf value* is the closest cousin:
//!
//! ```text
//! Banzhaf(f) = 2^{-(n-1)} Σ_{E ⊆ D_n\{f}} ( q(D_x∪E∪{f}) − q(D_x∪E) )
//! ```
//!
//! — the same marginal-contribution sum as Equation (1) but with uniform
//! coalition weights. On a deterministic and decomposable circuit it needs
//! no `#SAT_k` stratification at all: it equals
//! `Pr(C | f→1) − Pr(C | f→0)` under independent fact probability ½, i.e.
//! two weighted model counts — an `O(|C|)` computation per fact that shares
//! all of the Shapley pipeline up to the very last step. Unlike the Shapley
//! value it is insensitive to `|D_n|` (null players change nothing), which
//! the tests exercise.

use crate::measure::Measure;
use crate::readonce::power_read_once;
use shapdb_circuit::{factor, Circuit, Dnf, VarId};
use shapdb_kc::{compile_circuit, Budget, DNode, Ddnnf};
use shapdb_num::{BigInt, BigUint, Bitset, Rational};

/// Exact Banzhaf value of every d-DNNF variable.
///
/// Variables absent from the circuit are null players with value 0 (entries
/// are still returned for them, as zero).
pub fn banzhaf_all_facts(d: &Ddnnf) -> Vec<Rational> {
    let num_vars = d.num_vars();
    let mut out = vec![Rational::zero(); num_vars];
    if num_vars == 0 {
        return out;
    }
    let sets = d.var_sets();
    let root_vars = sets[d.root().index()].clone();
    let half = Rational::from_ratio(1, 2);
    for f in root_vars.iter() {
        let mut p1 = vec![half.clone(); num_vars];
        p1[f] = Rational::one();
        let mut p0 = vec![half.clone(); num_vars];
        p0[f] = Rational::zero();
        out[f] = &d.probability_rational(&p1) - &d.probability_rational(&p0);
    }
    out
}

/// Exact Banzhaf value of every fact of a monotone DNF lineage.
///
/// Absorption-minimizes the lineage first — the uniform null-player
/// semantics every Shapley engine enforces (an absorbed conjunct can name a
/// fact the function does not depend on, and unminimized inputs defeat the
/// syntactic read-once factoring) — then evaluates through the read-once
/// fast path when the minimized lineage factors, falling back to knowledge
/// compilation otherwise. Returns `(fact, value)` pairs sorted by
/// decreasing value (ties by fact id), one per variable of the minimized
/// lineage.
pub fn banzhaf_from_lineage(lineage: &Dnf) -> Vec<(VarId, Rational)> {
    let mut min = lineage.clone();
    min.minimize();
    let n_vars = min.vars().len();
    let mut out = if let Some(tree) = factor(&min) {
        power_read_once(&tree, n_vars, None, Measure::Banzhaf).expect("no deadline set")
    } else {
        let mut c = Circuit::new();
        let root = min.to_circuit(&mut c);
        let comp = compile_circuit(&c, root, &Budget::unlimited()).expect("unlimited budget");
        let values = banzhaf_all_facts(&comp.ddnnf);
        comp.fact_vars
            .iter()
            .zip(values)
            .map(|(&v, r)| (v, r))
            .collect()
    };
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// `O(2ⁿ)` ground truth straight from the definition (test oracle).
pub fn banzhaf_naive(f: &impl Fn(&Bitset) -> bool, n: usize) -> Vec<Rational> {
    assert!(n <= 25, "naive enumeration limited to 25 facts");
    if n == 0 {
        return Vec::new();
    }
    let evals: Vec<bool> = (0u64..(1 << n))
        .map(|mask| {
            let mut s = Bitset::new(n);
            for i in 0..n {
                if mask >> i & 1 == 1 {
                    s.insert(i);
                }
            }
            f(&s)
        })
        .collect();
    let denom = BigUint::one() << (n - 1);
    (0..n)
        .map(|target| {
            let bit = 1u64 << target;
            let mut num = BigInt::zero();
            for mask in 0u64..(1 << n) {
                if mask & bit != 0 {
                    continue;
                }
                let with = evals[(mask | bit) as usize];
                let without = evals[mask as usize];
                if with && !without {
                    num += &BigInt::one();
                } else if !with && without {
                    num += &BigInt::from_i64(-1);
                }
            }
            Rational::new(num, denom.clone())
        })
        .collect()
}

/// Total number of *critical coalitions* of a fact (the raw Banzhaf count,
/// an integer): coalitions `E` where adding `f` flips the query. Computed
/// from the circuit without enumeration via `#SAT(C[f→1]) − #SAT(C[f→0])`.
pub fn critical_coalitions(d: &Ddnnf, var: usize) -> BigUint {
    let num_vars = d.num_vars();
    assert!(var < num_vars);
    let sets = d.var_sets();
    let root = d.root().index();
    if !sets[root].contains(var) {
        return BigUint::zero();
    }
    // Count models over Vars \ {var} with var conditioned.
    let count_conditioned = |value: bool| -> BigUint {
        let nodes = d.nodes();
        let mut counts: Vec<BigUint> = Vec::with_capacity(nodes.len());
        let size = |g: usize| sets[g].len() - usize::from(sets[g].contains(var));
        for (i, n) in nodes.iter().enumerate() {
            let c = match n {
                DNode::True => BigUint::one(),
                DNode::False => BigUint::zero(),
                DNode::Lit(l) => {
                    if l.var() == var {
                        BigUint::from_u64(u64::from(l.satisfied_by(value)))
                    } else {
                        BigUint::one()
                    }
                }
                DNode::And(cs) => {
                    let mut acc = BigUint::one();
                    for ch in cs.iter() {
                        acc = &acc * &counts[ch.index()];
                    }
                    acc
                }
                DNode::Or(cs, _) => {
                    let mut acc = BigUint::zero();
                    for ch in cs.iter() {
                        let gap = size(i) - size(ch.index());
                        acc += &(counts[ch.index()].clone() << gap);
                    }
                    acc
                }
            };
            counts.push(c);
        }
        // Complete over variables absent from the root's var set.
        let gap = (num_vars - 1) - size(root);
        counts[root].clone() << gap
    };
    let with = count_conditioned(true);
    let without = count_conditioned(false);
    // Monotone lineages have with ≥ without; support the general case too.
    with.checked_sub(&without).unwrap_or_else(|| {
        without
            .checked_sub(&with)
            .expect("one direction must subtract")
    })
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // parallel-array comparisons read better indexed
mod tests {
    use super::*;
    use proptest::prelude::*;
    use shapdb_circuit::{Circuit, Dnf, VarId};
    use shapdb_kc::{compile_circuit, Budget};

    fn compile_dense(d: &Dnf, n: usize) -> Ddnnf {
        use shapdb_circuit::Lit;
        let mut c = Circuit::new();
        let root = d.to_circuit(&mut c);
        let comp = compile_circuit(&c, root, &Budget::unlimited()).unwrap();
        let mapping: Vec<usize> = comp.fact_vars.iter().map(|v| v.index()).collect();
        let nodes = comp
            .ddnnf
            .nodes()
            .iter()
            .map(|nd| match nd {
                DNode::Lit(l) => {
                    let v = mapping[l.var()];
                    DNode::Lit(if l.is_positive() {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    })
                }
                other => other.clone(),
            })
            .collect();
        Ddnnf::new(nodes, comp.ddnnf.root(), n)
    }

    fn running_example() -> Dnf {
        let mut d = Dnf::new();
        d.add_conjunct(vec![VarId(0)]);
        for pair in [[1u32, 3], [1, 4], [2, 3], [2, 4], [5, 6]] {
            d.add_conjunct(pair.iter().map(|&v| VarId(v)).collect());
        }
        d
    }

    #[test]
    fn matches_naive_on_running_example() {
        let dnf = running_example();
        let dd = compile_dense(&dnf, 7);
        let f = |s: &Bitset| dnf.eval_set(s);
        let expect = banzhaf_naive(&f, 7);
        let got = banzhaf_all_facts(&dd);
        assert_eq!(got, expect);
        // a1's Banzhaf: it is critical whenever no other route exists.
        assert!(got[0] > got[1], "a1 dominates as with Shapley");
    }

    #[test]
    fn critical_coalitions_match_banzhaf() {
        let dnf = running_example();
        let dd = compile_dense(&dnf, 7);
        let values = banzhaf_all_facts(&dd);
        let denom = BigUint::one() << 6; // 2^(n-1)
        for v in 0..7 {
            let crit = critical_coalitions(&dd, v);
            let expect = Rational::new(BigInt::from_biguint(crit), denom.clone());
            assert_eq!(values[v], expect, "var {v}");
        }
    }

    #[test]
    fn from_lineage_minimizes_before_evaluating() {
        // (x0) ∨ (x0 ∧ x3) ∨ (x1 ∧ x2): the absorbed conjunct names x3,
        // which the function does not depend on; minimization must make the
        // unminimized input indistinguishable from the minimized one.
        let mut raw = Dnf::new();
        raw.add_conjunct(vec![VarId(0)]);
        raw.add_conjunct(vec![VarId(0), VarId(3)]);
        raw.add_conjunct(vec![VarId(1), VarId(2)]);
        let mut min = raw.clone();
        min.minimize();
        let got_raw = banzhaf_from_lineage(&raw);
        let got_min = banzhaf_from_lineage(&min);
        assert_eq!(got_raw, got_min);
        assert!(got_raw.iter().all(|(v, _)| *v != VarId(3)));
        // And both agree with the enumeration oracle on the same function.
        let expect = banzhaf_naive(&|s: &Bitset| raw.eval_set(s), 3);
        for (v, r) in &got_raw {
            assert_eq!(r, &expect[v.index()], "var {}", v.0);
        }
    }

    #[test]
    fn from_lineage_falls_back_to_compilation() {
        // Non-read-once minimized lineage: (x0x1)∨(x1x2)∨(x0x2).
        let mut d = Dnf::new();
        d.add_conjunct(vec![VarId(0), VarId(1)]);
        d.add_conjunct(vec![VarId(1), VarId(2)]);
        d.add_conjunct(vec![VarId(0), VarId(2)]);
        let got = banzhaf_from_lineage(&d);
        let expect = banzhaf_naive(&|s: &Bitset| d.eval_set(s), 3);
        assert_eq!(got.len(), 3);
        for (v, r) in &got {
            assert_eq!(r, &expect[v.index()], "var {}", v.0);
        }
    }

    #[test]
    fn null_player_invariance() {
        // Unlike Shapley's n-dependent weights, Banzhaf values are unchanged
        // by the ambient variable count — declared null players get zero.
        let mut dnf = Dnf::new();
        dnf.add_conjunct(vec![VarId(0), VarId(1)]);
        let d3 = compile_dense(&dnf, 3);
        let d5 = compile_dense(&dnf, 5);
        let v3 = banzhaf_all_facts(&d3);
        let v5 = banzhaf_all_facts(&d5);
        assert_eq!(v3[..2], v5[..2]);
        assert!(v5[2..].iter().all(|v| v.is_zero()));
        assert_eq!(v3[0], Rational::from_ratio(1, 2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn prop_matches_naive(
            conjuncts in proptest::collection::vec(
                proptest::collection::vec(0u32..6, 1..4), 1..6)
        ) {
            let mut dnf = Dnf::new();
            for c in &conjuncts {
                dnf.add_conjunct(c.iter().map(|&v| VarId(v)).collect());
            }
            let n = 6;
            let dd = compile_dense(&dnf, n);
            let f = |s: &Bitset| dnf.eval_set(s);
            prop_assert_eq!(banzhaf_all_facts(&dd), banzhaf_naive(&f, n));
        }
    }
}
