//! Shapley values directly from read-once lineages — no knowledge
//! compilation.
//!
//! A read-once formula is decomposable at *every* gate: `∧` children are
//! variable-disjoint (the d-DNNF condition) but so are `∨` children. That
//! second property buys exactly what determinism buys in Algorithm 1: a
//! well-defined `#SAT_k` recurrence. At an `∨` gate with variable-disjoint
//! children the *unsatisfying* assignments factor —
//! `UNSAT(g₁ ∨ g₂) = UNSAT(g₁) ⊗ UNSAT(g₂)` — so level-wise counts follow by
//! convolution and complementation (`#UNSAT_ℓ = C(n,ℓ) − #SAT_ℓ`).
//!
//! Hierarchical self-join-free CQs always have read-once lineages, so this
//! module *is* the polynomial-time algorithm of Livshits et al. that the
//! paper cites as the known tractable case — implemented here as a fast path
//! that [`crate::pipeline::analyze_lineage_auto`] tries before paying for
//! Tseytin + compilation. It also covers many non-hierarchical outputs: the
//! complete-bipartite `q2` pattern of the running example factors as
//! `(⋁xᵢ) ∧ (⋁yⱼ)` and is handled here in linear time, while its Tseytin
//! CNF is exponential for the DPLL compiler.
//!
//! Conditioning a fact `f → b` only changes the counts of `f`'s ancestors —
//! a root-to-leaf *path* in a tree — so computing all facts costs
//! `O(Σ_f depth(f) · fanin · m)` big-integer operations, usually far below
//! Algorithm 1's `O(|C|·m²)` per fact.

use crate::exact::ShapleyTimeout;
use crate::measure::Measure;
use crate::weights::{completion_weights, power_weights, weighted_difference};
use shapdb_circuit::{factor, Dnf, ReadOnce, VarId};
use shapdb_num::{
    combinatorics::{BinomialTable, FactorialTable},
    BigUint, Rational,
};
use std::collections::HashMap;
use std::time::Instant;

/// Arena node for the flattened read-once tree.
enum RNode {
    True,
    False,
    Var(VarId),
    And(Vec<usize>),
    Or(Vec<usize>),
}

/// Flattened tree with parent pointers (children precede parents).
struct Arena {
    nodes: Vec<RNode>,
    parent: Vec<Option<usize>>,
    /// Variables under each node.
    nvars: Vec<usize>,
    /// Leaf index of each variable.
    leaf_of: HashMap<VarId, usize>,
    root: usize,
}

impl Arena {
    fn build(tree: &ReadOnce) -> Arena {
        let mut a = Arena {
            nodes: Vec::new(),
            parent: Vec::new(),
            nvars: Vec::new(),
            leaf_of: HashMap::new(),
            root: 0,
        };
        let root = a.add(tree);
        a.root = root;
        a
    }

    fn add(&mut self, t: &ReadOnce) -> usize {
        let (node, nv) = match t {
            ReadOnce::True => (RNode::True, 0),
            ReadOnce::False => (RNode::False, 0),
            ReadOnce::Var(v) => (RNode::Var(*v), 1),
            ReadOnce::And(cs) => {
                let kids: Vec<usize> = cs.iter().map(|c| self.add(c)).collect();
                let nv = kids.iter().map(|&k| self.nvars[k]).sum();
                (RNode::And(kids), nv)
            }
            ReadOnce::Or(cs) => {
                let kids: Vec<usize> = cs.iter().map(|c| self.add(c)).collect();
                let nv = kids.iter().map(|&k| self.nvars[k]).sum();
                (RNode::Or(kids), nv)
            }
        };
        let idx = self.nodes.len();
        if let RNode::And(kids) | RNode::Or(kids) = &node {
            for &k in kids {
                self.parent[k] = Some(idx);
            }
        }
        if let RNode::Var(v) = &node {
            self.leaf_of.insert(*v, idx);
        }
        self.nodes.push(node);
        self.parent.push(None);
        self.nvars.push(nv);
        idx
    }
}

/// `#SAT_ℓ` arrays (`ℓ = 0..=nvars`) for every node, bottom-up.
fn base_counts(a: &Arena, binomials: &mut BinomialTable) -> Vec<Vec<BigUint>> {
    let mut sat: Vec<Vec<BigUint>> = Vec::with_capacity(a.nodes.len());
    for (i, n) in a.nodes.iter().enumerate() {
        let counts = match n {
            RNode::True => vec![BigUint::one()],
            RNode::False => vec![BigUint::zero()],
            RNode::Var(_) => vec![BigUint::zero(), BigUint::one()],
            RNode::And(kids) => {
                let arrays: Vec<&[BigUint]> = kids.iter().map(|&k| sat[k].as_slice()).collect();
                convolve(&arrays)
            }
            RNode::Or(kids) => {
                let unsats: Vec<Vec<BigUint>> = kids
                    .iter()
                    .map(|&k| complement(&sat[k], a.nvars[k], binomials))
                    .collect();
                let refs: Vec<&[BigUint]> = unsats.iter().map(Vec::as_slice).collect();
                complement(&convolve(&refs), a.nvars[i], binomials)
            }
        };
        debug_assert_eq!(counts.len(), a.nvars[i] + 1);
        sat.push(counts);
    }
    sat
}

/// `#UNSAT_ℓ = C(n, ℓ) − #SAT_ℓ` (and vice versa; complement is an
/// involution).
fn complement(counts: &[BigUint], nvars: usize, binomials: &mut BinomialTable) -> Vec<BigUint> {
    let row = binomials.row(nvars).to_vec();
    counts
        .iter()
        .zip(row)
        .map(|(c, total)| &total - c)
        .collect()
}

/// Level-wise product of variable-disjoint functions.
fn convolve(arrays: &[&[BigUint]]) -> Vec<BigUint> {
    let mut acc = vec![BigUint::one()];
    for arr in arrays {
        let mut next = vec![BigUint::zero(); acc.len() + arr.len() - 1];
        for (i, ai) in acc.iter().enumerate() {
            if ai.is_zero() {
                continue;
            }
            for (j, bj) in arr.iter().enumerate() {
                if bj.is_zero() {
                    continue;
                }
                next[i + j] += &(ai * bj);
            }
        }
        acc = next;
    }
    acc
}

/// Recomputes the counts along the path from `leaf` to the root with the
/// leaf's variable conditioned to `value`, reusing the base arrays for every
/// off-path child. Returns the root's conditioned `#SAT` array (over `m − 1`
/// variables).
fn conditioned_root(
    a: &Arena,
    base: &[Vec<BigUint>],
    leaf: usize,
    value: bool,
    binomials: &mut BinomialTable,
) -> Vec<BigUint> {
    // Conditioned leaf: a constant over zero variables.
    let mut cur = if value {
        vec![BigUint::one()]
    } else {
        vec![BigUint::zero()]
    };
    let mut child = leaf;
    while let Some(p) = a.parent[child] {
        let kids = match &a.nodes[p] {
            RNode::And(kids) | RNode::Or(kids) => kids,
            _ => unreachable!("leaf parents are gates"),
        };
        let is_and = matches!(&a.nodes[p], RNode::And(_));
        let cond_len = a.nvars[p]; // one variable removed → array length nvars[p]
        if is_and {
            let mut arrays: Vec<&[BigUint]> = Vec::with_capacity(kids.len());
            for &k in kids {
                arrays.push(if k == child {
                    cur.as_slice()
                } else {
                    base[k].as_slice()
                });
            }
            cur = convolve(&arrays);
        } else {
            let mut unsats: Vec<Vec<BigUint>> = Vec::with_capacity(kids.len());
            for &k in kids {
                if k == child {
                    unsats.push(complement(&cur, a.nvars[k] - 1, binomials));
                } else {
                    unsats.push(complement(&base[k], a.nvars[k], binomials));
                }
            }
            let refs: Vec<&[BigUint]> = unsats.iter().map(Vec::as_slice).collect();
            cur = complement(&convolve(&refs), a.nvars[p] - 1, binomials);
        }
        debug_assert_eq!(cur.len(), cond_len);
        child = p;
    }
    cur
}

/// Exact Shapley value of every variable of a read-once lineage.
///
/// Returns `(fact, value)` pairs for the tree's variables, in variable
/// order. Facts of `D_n` outside the tree are null players (value 0) and are
/// omitted, exactly as in [`crate::exact::shapley_all_facts`]; `n_endo` is
/// accepted for interface symmetry and only validated.
pub fn shapley_read_once(
    tree: &ReadOnce,
    n_endo: usize,
    deadline: Option<Instant>,
) -> Result<Vec<(VarId, Rational)>, ShapleyTimeout> {
    power_read_once(tree, n_endo, deadline, Measure::Shapley)
}

/// Exact power index (Shapley or Banzhaf) of every variable of a read-once
/// lineage: the same conditioned path passes, folded with the measure's
/// `(weights, denominator)` pair from `weights::power_weights`.
///
/// # Panics
///
/// If `measure` is not a power index.
pub fn power_read_once(
    tree: &ReadOnce,
    n_endo: usize,
    deadline: Option<Instant>,
    measure: Measure,
) -> Result<Vec<(VarId, Rational)>, ShapleyTimeout> {
    assert!(
        measure.is_power_index(),
        "{measure} is not a Γ/Δ power index"
    );
    let vars = tree.vars();
    assert!(
        n_endo >= vars.len(),
        "|D_n| = {n_endo} smaller than the {} tree variables",
        vars.len()
    );
    if vars.is_empty() {
        return Ok(Vec::new());
    }
    let a = Arena::build(tree);
    let m = a.nvars[a.root];
    let mut binomials = BinomialTable::new();
    let base = base_counts(&a, &mut binomials);

    let mut facts_table = FactorialTable::new();
    let (weights, denom) = power_weights(measure, m, &mut facts_table);

    let mut out = Vec::with_capacity(vars.len());
    for v in vars {
        if let Some(d) = deadline {
            if Instant::now() > d {
                return Err(ShapleyTimeout);
            }
        }
        let leaf = a.leaf_of[&v];
        let gamma = conditioned_root(&a, &base, leaf, true, &mut binomials);
        let delta = conditioned_root(&a, &base, leaf, false, &mut binomials);
        out.push((v, weighted_difference(&gamma, &delta, &weights, &denom)));
    }
    Ok(out)
}

/// One-shot fast path: factor a monotone DNF lineage and, if it is
/// read-once, compute all Shapley values from the factorization.
///
/// Returns `None` when the lineage is not read-once (callers fall back to
/// the knowledge-compilation pipeline).
pub fn try_shapley_read_once(
    lineage: &Dnf,
    n_endo: usize,
    deadline: Option<Instant>,
) -> Option<Result<Vec<(VarId, Rational)>, ShapleyTimeout>> {
    let tree = factor(lineage)?;
    Some(shapley_read_once(&tree, n_endo, deadline))
}

/// `#SAT_ℓ` array of a read-once tree over its own variables (test oracle
/// and building block for probability computation on factorized lineages).
pub fn sat_k_read_once(tree: &ReadOnce) -> Vec<BigUint> {
    let a = Arena::build(tree);
    let mut binomials = BinomialTable::new();
    let base = base_counts(&a, &mut binomials);
    base[a.root].clone()
}

// ---------------------------------------------------------------------------
// SHAP-scores on read-once trees: the same leaf→root conditioned passes as
// the counting DP above, with probability-weighted rational entries
// `β_g[ℓ] = Σ_{S ⊆ Vars(g), |S| = ℓ} Pr[g | S fixed to 1]` (the read-once
// analogue of `crate::shap_score::ShapDp`). The complement trick survives
// the probabilistic lift: `Σ_{|S|=ℓ} Pr[g | S] + Σ_{|S|=ℓ} Pr[¬g | S] =
// C(n, ℓ)`, so an `∨` gate is still complement → convolve → complement.
// ---------------------------------------------------------------------------

/// `β̄_g[ℓ] = C(n, ℓ) − β_g[ℓ]`: the probabilistic complement (involution).
fn shap_complement(
    betas: &[Rational],
    nvars: usize,
    binomials: &mut BinomialTable,
) -> Vec<Rational> {
    let row = binomials.row(nvars).to_vec();
    betas
        .iter()
        .zip(row)
        .map(|(b, total)| &Rational::from_biguint(total) - b)
        .collect()
}

/// Level-wise product of variable-disjoint events (rational convolution).
fn shap_convolve(arrays: &[&[Rational]]) -> Vec<Rational> {
    let mut acc = vec![Rational::one()];
    for arr in arrays {
        let mut next = vec![Rational::zero(); acc.len() + arr.len() - 1];
        for (i, ai) in acc.iter().enumerate() {
            if ai.is_zero() {
                continue;
            }
            for (j, bj) in arr.iter().enumerate() {
                if bj.is_zero() {
                    continue;
                }
                next[i + j] += &(ai * bj);
            }
        }
        acc = next;
    }
    acc
}

/// `β` arrays for every node, bottom-up, under uniform marginal `p`.
fn shap_base_counts(a: &Arena, p: &Rational, binomials: &mut BinomialTable) -> Vec<Vec<Rational>> {
    let mut betas: Vec<Vec<Rational>> = Vec::with_capacity(a.nodes.len());
    for (i, n) in a.nodes.iter().enumerate() {
        let b = match n {
            RNode::True => vec![Rational::one()],
            RNode::False => vec![Rational::zero()],
            // ℓ=0: Pr[v=1] = p; ℓ=1 (v fixed to 1): satisfied.
            RNode::Var(_) => vec![p.clone(), Rational::one()],
            RNode::And(kids) => {
                let arrays: Vec<&[Rational]> = kids.iter().map(|&k| betas[k].as_slice()).collect();
                shap_convolve(&arrays)
            }
            RNode::Or(kids) => {
                let bars: Vec<Vec<Rational>> = kids
                    .iter()
                    .map(|&k| shap_complement(&betas[k], a.nvars[k], binomials))
                    .collect();
                let refs: Vec<&[Rational]> = bars.iter().map(Vec::as_slice).collect();
                shap_complement(&shap_convolve(&refs), a.nvars[i], binomials)
            }
        };
        debug_assert_eq!(b.len(), a.nvars[i] + 1);
        betas.push(b);
    }
    betas
}

/// Recomputes `β` along the path from `leaf` to the root with the leaf's
/// variable conditioned to `value` (a constant over zero variables), reusing
/// the base arrays for every off-path child.
fn shap_conditioned_root(
    a: &Arena,
    base: &[Vec<Rational>],
    leaf: usize,
    value: bool,
    binomials: &mut BinomialTable,
) -> Vec<Rational> {
    let mut cur = if value {
        vec![Rational::one()]
    } else {
        vec![Rational::zero()]
    };
    let mut child = leaf;
    while let Some(p) = a.parent[child] {
        let kids = match &a.nodes[p] {
            RNode::And(kids) | RNode::Or(kids) => kids,
            _ => unreachable!("leaf parents are gates"),
        };
        let is_and = matches!(&a.nodes[p], RNode::And(_));
        if is_and {
            let mut arrays: Vec<&[Rational]> = Vec::with_capacity(kids.len());
            for &k in kids {
                arrays.push(if k == child {
                    cur.as_slice()
                } else {
                    base[k].as_slice()
                });
            }
            cur = shap_convolve(&arrays);
        } else {
            let mut bars: Vec<Vec<Rational>> = Vec::with_capacity(kids.len());
            for &k in kids {
                if k == child {
                    bars.push(shap_complement(&cur, a.nvars[k] - 1, binomials));
                } else {
                    bars.push(shap_complement(&base[k], a.nvars[k], binomials));
                }
            }
            let refs: Vec<&[Rational]> = bars.iter().map(Vec::as_slice).collect();
            cur = shap_complement(&shap_convolve(&refs), a.nvars[p] - 1, binomials);
        }
        debug_assert_eq!(cur.len(), a.nvars[p]);
        child = p;
    }
    cur
}

/// Exact SHAP-score of every variable of a read-once lineage under the
/// product distribution with uniform marginal `p` per feature — no
/// knowledge compilation, the read-once counterpart of
/// [`crate::shap_score::shap_scores`].
///
/// With `p = 0` the result equals the Shapley values (the paper's §6.2
/// background-`0⃗` adaptation); the engine's `shap-score` measure uses
/// `p = ½`. Facts outside the tree are dummies (score 0) and are omitted;
/// this is sound for any ambient `n_endo` because dummy features are null
/// players of the SHAP game.
pub fn shap_read_once(
    tree: &ReadOnce,
    n_endo: usize,
    deadline: Option<Instant>,
    p: &Rational,
) -> Result<Vec<(VarId, Rational)>, ShapleyTimeout> {
    let vars = tree.vars();
    assert!(
        n_endo >= vars.len(),
        "|D_n| = {n_endo} smaller than the {} tree variables",
        vars.len()
    );
    if vars.is_empty() {
        return Ok(Vec::new());
    }
    let a = Arena::build(tree);
    let m = a.nvars[a.root];
    let mut binomials = BinomialTable::new();
    let base = shap_base_counts(&a, p, &mut binomials);

    let mut facts_table = FactorialTable::new();
    let weights = completion_weights(m, &mut facts_table);
    let denom = Rational::from_biguint(facts_table.get(m).clone());
    let one_minus_p = &Rational::one() - p;

    let mut out = Vec::with_capacity(vars.len());
    for v in vars {
        if let Some(d) = deadline {
            if Instant::now() > d {
                return Err(ShapleyTimeout);
            }
        }
        let leaf = a.leaf_of[&v];
        let beta1 = shap_conditioned_root(&a, &base, leaf, true, &mut binomials);
        let beta0 = shap_conditioned_root(&a, &base, leaf, false, &mut binomials);
        debug_assert_eq!(beta1.len(), m);
        debug_assert_eq!(beta0.len(), m);
        // Γ − Δ = (1 − p) · (β¹ − β⁰), folded into the weighted sum.
        let mut numer = Rational::zero();
        for ((b1, b0), w) in beta1.iter().zip(&beta0).zip(&weights) {
            let diff = b1 - b0;
            if diff.is_zero() {
                continue;
            }
            numer += &(&diff * &Rational::from_biguint(w.clone()));
        }
        out.push((v, &(&numer * &one_minus_p) / &denom));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{sat_k_bruteforce, shapley_naive};
    use proptest::prelude::*;
    use shapdb_num::Bitset;

    fn dnf(conjs: &[&[u32]]) -> Dnf {
        let mut d = Dnf::new();
        for c in conjs {
            d.add_conjunct(c.iter().map(|&v| VarId(v)).collect());
        }
        d
    }

    #[test]
    fn running_example_values_match_example_2_1() {
        let d = dnf(&[&[0], &[1, 3], &[1, 4], &[2, 3], &[2, 4], &[5, 6]]);
        let got = try_shapley_read_once(&d, 8, None)
            .expect("read-once")
            .unwrap();
        let by_var: HashMap<u32, Rational> = got.into_iter().map(|(v, r)| (v.0, r)).collect();
        assert_eq!(by_var[&0], Rational::from_ratio(43, 105));
        for v in [1, 2, 3, 4] {
            assert_eq!(by_var[&v], Rational::from_ratio(23, 210), "a{}", v + 1);
        }
        for v in [5, 6] {
            assert_eq!(by_var[&v], Rational::from_ratio(8, 105), "a{}", v + 1);
        }
    }

    #[test]
    fn q2_values_match_example_5_3() {
        // (a2∧a4)∨(a2∧a5)∨(a3∧a4)∨(a3∧a5)∨(a6∧a7): 11/60 ×4, 2/15 ×2.
        let d = dnf(&[&[0, 2], &[0, 3], &[1, 2], &[1, 3], &[4, 5]]);
        let got = try_shapley_read_once(&d, 6, None).unwrap().unwrap();
        let by_var: HashMap<u32, Rational> = got.into_iter().map(|(v, r)| (v.0, r)).collect();
        for v in 0..4 {
            assert_eq!(by_var[&v], Rational::from_ratio(11, 60));
        }
        assert_eq!(by_var[&4], Rational::from_ratio(2, 15));
        assert_eq!(by_var[&5], Rational::from_ratio(2, 15));
    }

    #[test]
    fn non_read_once_returns_none() {
        let d = dnf(&[&[0, 1], &[1, 2], &[0, 2]]);
        assert!(try_shapley_read_once(&d, 3, None).is_none());
    }

    #[test]
    fn sat_k_matches_bruteforce() {
        let d = dnf(&[&[0], &[1, 3], &[1, 4], &[2, 3], &[2, 4], &[5, 6]]);
        let tree = factor(&d).unwrap();
        let f = |s: &Bitset| d.eval_set(s);
        assert_eq!(sat_k_read_once(&tree), sat_k_bruteforce(&f, 7));
    }

    #[test]
    fn banzhaf_matches_naive_on_running_example() {
        let d = dnf(&[&[0], &[1, 3], &[1, 4], &[2, 3], &[2, 4], &[5, 6]]);
        let tree = factor(&d).unwrap();
        let expect = crate::banzhaf::banzhaf_naive(&|s: &Bitset| d.eval_set(s), 7);
        // n_endo > m exercises the null-player invariance of the uniform
        // weights: the values over 9 endogenous facts equal those over 7.
        for n_endo in [7, 9] {
            let got = power_read_once(&tree, n_endo, None, Measure::Banzhaf).unwrap();
            for (v, r) in got {
                assert_eq!(r, expect[v.index()], "var {} at n_endo {n_endo}", v.0);
            }
        }
    }

    #[test]
    fn shap_read_once_matches_bruteforce_at_half() {
        let d = dnf(&[&[0], &[1, 3], &[1, 4], &[2, 3], &[2, 4], &[5, 6]]);
        let tree = factor(&d).unwrap();
        let half = Rational::from_ratio(1, 2);
        let expect =
            crate::shap_score::shap_naive(&|s: &Bitset| d.eval_set(s), &vec![half.clone(); 7]);
        let got = shap_read_once(&tree, 7, None, &half).unwrap();
        for (v, r) in got {
            assert_eq!(r, expect[v.index()], "var {}", v.0);
        }
    }

    #[test]
    fn shap_read_once_with_zero_background_is_shapley() {
        // p ≡ 0 is the §6.2 adaptation: SHAP-score = Shapley value.
        let d = dnf(&[&[0], &[1, 3], &[1, 4], &[2, 3], &[2, 4], &[5, 6]]);
        let tree = factor(&d).unwrap();
        let got = shap_read_once(&tree, 7, None, &Rational::zero()).unwrap();
        let shapley = shapley_read_once(&tree, 7, None).unwrap();
        assert_eq!(got, shapley);
    }

    #[test]
    fn grid_is_fast_and_exact() {
        // grid(12,12): 144 conjuncts, intractable via Tseytin+compile, but
        // symmetric — each xᵢ gets the same value, checked via efficiency.
        let mut d = Dnf::new();
        for i in 0..12u32 {
            for j in 0..12u32 {
                d.add_conjunct(vec![VarId(i), VarId(12 + j)]);
            }
        }
        let got = try_shapley_read_once(&d, 24, None).unwrap().unwrap();
        assert_eq!(got.len(), 24);
        let first = got[0].1.clone();
        let mut total = Rational::zero();
        for (_, v) in &got {
            assert_eq!(*v, first, "symmetric facts share the value");
            total += v;
        }
        // Efficiency: the grand coalition satisfies the query, ∅ does not.
        assert_eq!(total, Rational::one());
    }

    #[test]
    fn deadline_is_respected() {
        let d = dnf(&[&[0], &[1, 2]]);
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let r = try_shapley_read_once(&d, 3, Some(past)).unwrap();
        assert_eq!(r, Err(ShapleyTimeout));
    }

    #[test]
    fn constant_trees_have_no_players() {
        assert_eq!(shapley_read_once(&ReadOnce::True, 5, None).unwrap(), vec![]);
        assert_eq!(
            shapley_read_once(&ReadOnce::False, 5, None).unwrap(),
            vec![]
        );
    }

    /// Strategy: a random read-once tree over a permutation of `0..n` vars.
    fn arb_read_once(vars: Vec<u32>) -> ReadOnce {
        fn build(vars: &[u32], or_level: bool, salt: u64) -> ReadOnce {
            match vars {
                [] => ReadOnce::True,
                [v] => ReadOnce::Var(VarId(*v)),
                _ => {
                    // Deterministic pseudo-random split driven by `salt`.
                    let cut = 1 + (salt as usize % (vars.len() - 1));
                    let (l, r) = vars.split_at(cut);
                    let kids = vec![
                        build(
                            l,
                            !or_level,
                            salt.wrapping_mul(6364136223846793005).wrapping_add(1),
                        ),
                        build(
                            r,
                            !or_level,
                            salt.wrapping_mul(1442695040888963407).wrapping_add(3),
                        ),
                    ];
                    if or_level {
                        ReadOnce::Or(kids)
                    } else {
                        ReadOnce::And(kids)
                    }
                }
            }
        }
        build(
            &vars,
            true,
            vars.iter().map(|&v| v as u64 + 1).product::<u64>(),
        )
    }

    /// Expands a read-once tree to its prime-implicant DNF.
    fn expand(t: &ReadOnce) -> Dnf {
        fn rec(t: &ReadOnce) -> Vec<Vec<VarId>> {
            match t {
                ReadOnce::True => vec![vec![]],
                ReadOnce::False => vec![],
                ReadOnce::Var(v) => vec![vec![*v]],
                ReadOnce::Or(cs) => cs.iter().flat_map(rec).collect(),
                ReadOnce::And(cs) => {
                    let mut acc: Vec<Vec<VarId>> = vec![vec![]];
                    for c in cs {
                        let pis = rec(c);
                        let mut next = Vec::with_capacity(acc.len() * pis.len());
                        for a in &acc {
                            for p in &pis {
                                let mut merged = a.clone();
                                merged.extend_from_slice(p);
                                next.push(merged);
                            }
                        }
                        acc = next;
                    }
                    acc
                }
            }
        }
        let mut d = Dnf::new();
        for c in rec(t) {
            d.add_conjunct(c);
        }
        d
    }

    /// Deterministic pseudo-random permutation of `0..n` from a seed (LCG
    /// Fisher–Yates); keeps the proptest strategy free of extra crates.
    fn permutation(n: usize, seed: u64) -> Vec<u32> {
        let mut v: Vec<u32> = (0..n as u32).collect();
        let mut state = seed | 1;
        for i in (1..v.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_factor_then_evaluate_matches_naive(n in 1usize..8, seed in any::<u64>()) {
            let perm = permutation(n, seed);
            let tree = arb_read_once(perm);
            let d = expand(&tree);
            // Round-trip: factoring the expansion must succeed and stay
            // equivalent (the factorization may differ structurally).
            let refactored = factor(&d).expect("expansion of read-once is read-once");
            let f = |s: &Bitset| d.eval_set(s);
            let expect = shapley_naive(&f, n);
            let got = shapley_read_once(&refactored, n, None).unwrap();
            for (v, r) in got {
                prop_assert_eq!(&r, &expect[v.index()], "var {}", v.0);
            }
        }

        #[test]
        fn prop_other_measures_match_naive(n in 1usize..7, seed in any::<u64>()) {
            let perm = permutation(n, seed);
            let tree = arb_read_once(perm);
            let d = expand(&tree);
            let refactored = factor(&d).expect("expansion of read-once is read-once");
            let f = |s: &Bitset| d.eval_set(s);
            let banzhaf = power_read_once(&refactored, n, None, Measure::Banzhaf).unwrap();
            let banzhaf_expect = crate::banzhaf::banzhaf_naive(&f, n);
            for (v, r) in banzhaf {
                prop_assert_eq!(&r, &banzhaf_expect[v.index()], "banzhaf var {}", v.0);
            }
            let half = Rational::from_ratio(1, 2);
            let shap = shap_read_once(&refactored, n, None, &half).unwrap();
            let shap_expect = crate::shap_score::shap_naive(&f, &vec![half.clone(); n]);
            for (v, r) in shap {
                prop_assert_eq!(&r, &shap_expect[v.index()], "shap var {}", v.0);
            }
        }
    }
}
