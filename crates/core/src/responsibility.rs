//! Causal responsibility of facts (Meliou, Gatterbauer, Moore & Suciu,
//! PVLDB 2010) — the measure the paper's related work positions Shapley
//! values against.
//!
//! A fact `f` is a *counterfactual cause* of an answer if removing `f` flips
//! the answer off. It is an *actual cause with contingency `Γ`* if, after
//! removing the contingency set `Γ`, it becomes counterfactual. Its
//! responsibility is
//!
//! ```text
//! ρ(f) = 1 / (1 + min { |Γ| : f counterfactual in D ∖ Γ })
//! ```
//!
//! (0 when no contingency works). On a monotone DNF lineage the inner
//! minimization is a constrained minimum hitting set: writing `F` for the
//! conjuncts containing `f` and `G` for those not containing `f`,
//!
//! * `Γ` must hit every conjunct of `G` (so the answer is off without `f`),
//! * some conjunct `C ∈ F` must survive untouched (so adding `f` back turns
//!   the answer on): `Γ ∩ C = ∅`.
//!
//! We solve exactly by iterating over the witness conjunct `C` and running a
//! branch-and-bound minimum hitting set on `G` with the variables of `C`
//! forbidden — exponential in the worst case (the problem is NP-hard) but
//! fast on per-tuple lineages, whose conjuncts are few and short. Computing
//! responsibility is harder to approximate than to rank by, which is exactly
//! the comparison the experiments draw against Shapley values.
//!
//! When the lineage is **read-once** the hitting set untangles:
//! [`responsibility_read_once`] computes every fact's responsibility in one
//! linear pass over the factorization tree — the same compiled structure
//! the other measures' DPs run on — so the engine layer only pays the
//! branch-and-bound on lineages that do not factor.

use shapdb_circuit::{Dnf, ReadOnce, VarId};
use shapdb_num::{Bitset, Rational};

/// Exact responsibility `ρ(f) = 1/(1 + min |Γ|)` of one fact of a monotone
/// DNF lineage, or 0 if `f` is never an actual cause.
pub fn responsibility(lineage: &Dnf, fact: VarId) -> Rational {
    match min_contingency(lineage, fact) {
        Some(k) => Rational::from_ratio(1, 1 + k as u64),
        None => Rational::zero(),
    }
}

/// Exact responsibility of every fact of the lineage, sorted by decreasing
/// value (ties by fact id). Null players get 0 and are omitted.
pub fn responsibility_all(lineage: &Dnf) -> Vec<(VarId, Rational)> {
    let mut out: Vec<(VarId, Rational)> = lineage
        .vars()
        .into_iter()
        .map(|v| (v, responsibility(lineage, v)))
        .filter(|(_, r)| !r.is_zero())
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Sentinel for "no contingency set works" in the read-once DP.
const NO_CONTINGENCY: u64 = u64::MAX;

/// Exact responsibility of every fact from a read-once factorization of the
/// (minimized) lineage, in one linear pass over the tree — the same
/// compiled structure the Shapley / Banzhaf / SHAP-score DPs run on.
///
/// On a read-once tree the constrained hitting set collapses: a contingency
/// set only removes facts, and removed facts live in subtrees disjoint from
/// the fact's own leaf, so the minimum contingency for leaf `f` is the sum,
/// over `f`'s `∨`-ancestors, of the cheapest way to falsify every sibling
/// subtree (`∧`-siblings stay true for free — every present fact is true).
/// `falsify_cost` is the bottom-up half; the top-down descent accumulates
/// the per-ancestor sibling sums into each leaf's minimum contingency.
///
/// Output matches [`responsibility_all`] on the factored DNF: sorted by
/// decreasing value (ties by fact id), null players omitted.
pub fn responsibility_read_once(tree: &ReadOnce) -> Vec<(VarId, Rational)> {
    let mut costs: Vec<(VarId, u64)> = Vec::new();
    descend(tree, 0, &mut costs);
    let mut out: Vec<(VarId, Rational)> = costs
        .into_iter()
        .filter(|&(_, k)| k != NO_CONTINGENCY)
        .map(|(v, k)| (v, Rational::from_ratio(1, 1 + k)))
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Minimum number of fact removals that falsify `t` when every fact is
/// present, or [`NO_CONTINGENCY`] if none do (a certain subformula).
fn falsify_cost(t: &ReadOnce) -> u64 {
    match t {
        ReadOnce::True => NO_CONTINGENCY,
        ReadOnce::False => 0,
        ReadOnce::Var(_) => 1,
        // Falsifying any one conjunct falsifies the conjunction; an empty
        // conjunction is `true`.
        ReadOnce::And(cs) => cs.iter().map(falsify_cost).min().unwrap_or(NO_CONTINGENCY),
        // A disjunction needs every disjunct falsified; an empty one is
        // `false` already.
        ReadOnce::Or(cs) => cs
            .iter()
            .map(falsify_cost)
            .fold(0u64, |a, b| a.saturating_add(b)),
    }
}

/// Whether `t` evaluates true with every fact present (monotone, so this is
/// the starting point every contingency set removes from).
fn holds_outright(t: &ReadOnce) -> bool {
    match t {
        ReadOnce::True | ReadOnce::Var(_) => true,
        ReadOnce::False => false,
        ReadOnce::And(cs) => cs.iter().all(holds_outright),
        ReadOnce::Or(cs) => cs.iter().any(holds_outright),
    }
}

/// Top-down accumulation: `acc` is the minimum number of removals outside
/// `t` that make the rest of the formula equivalent to `t`'s value.
fn descend(t: &ReadOnce, acc: u64, costs: &mut Vec<(VarId, u64)>) {
    match t {
        ReadOnce::True | ReadOnce::False => {}
        ReadOnce::Var(v) => costs.push((*v, acc)),
        ReadOnce::And(cs) => {
            // An `∧`-sibling that never holds pins the conjunction false, so
            // no fact below is ever counterfactual; otherwise siblings are
            // true for free and the accumulator passes through.
            let acc = if cs.iter().all(holds_outright) {
                acc
            } else {
                NO_CONTINGENCY
            };
            for c in cs {
                descend(c, acc, costs);
            }
        }
        ReadOnce::Or(cs) => {
            // Each child's siblings must all be falsified for the child to
            // decide the disjunction.
            let sibling_costs: Vec<u64> = cs.iter().map(falsify_cost).collect();
            let unfalsifiable = sibling_costs
                .iter()
                .filter(|&&c| c == NO_CONTINGENCY)
                .count();
            let finite_total: u64 = sibling_costs
                .iter()
                .filter(|&&c| c != NO_CONTINGENCY)
                .fold(0u64, |a, &b| a.saturating_add(b));
            for (c, &own) in cs.iter().zip(&sibling_costs) {
                let blocked = unfalsifiable - usize::from(own == NO_CONTINGENCY) > 0;
                let acc = if blocked || acc == NO_CONTINGENCY {
                    NO_CONTINGENCY
                } else {
                    let siblings = if own == NO_CONTINGENCY {
                        finite_total
                    } else {
                        finite_total - own
                    };
                    acc.saturating_add(siblings)
                };
                descend(c, acc, costs);
            }
        }
    }
}

/// Size of the smallest contingency set making `fact` counterfactual, or
/// `None` if none exists.
pub fn min_contingency(lineage: &Dnf, fact: VarId) -> Option<usize> {
    let mut d = lineage.clone();
    d.minimize();
    if d.conjuncts().iter().any(|c| c.is_empty()) {
        return None; // certain answer: no fact is ever counterfactual
    }
    let (witnesses, others): (Vec<&Vec<VarId>>, Vec<&Vec<VarId>>) =
        d.conjuncts().iter().partition(|c| c.contains(&fact));
    if witnesses.is_empty() {
        return None; // fact not in the lineage
    }

    let mut best: Option<usize> = None;
    for witness in &witnesses {
        let forbidden: Vec<VarId> = witness.iter().copied().filter(|&v| v != fact).collect();
        // Conjuncts of `G` still to hit, minus variables we may never pick.
        let mut to_hit: Vec<Vec<VarId>> = Vec::with_capacity(others.len());
        let mut feasible = true;
        for g in &others {
            let allowed: Vec<VarId> = g
                .iter()
                .copied()
                .filter(|v| !forbidden.contains(v))
                .collect();
            if allowed.is_empty() {
                feasible = false; // this G-conjunct survives whatever we do
                break;
            }
            // A conjunct that is a superset of another (after filtering) is
            // handled by the hitting-set search itself.
            to_hit.push(allowed);
        }
        if !feasible {
            continue;
        }
        let bound = best.map(|b| b.saturating_sub(1));
        if let Some(k) = min_hitting_set(&to_hit, bound) {
            best = Some(best.map_or(k, |b| b.min(k)));
            if best == Some(0) {
                break; // counterfactual outright; cannot improve
            }
        }
    }
    best
}

/// Exact minimum hitting set via branch and bound. `ub` is an exclusive-ish
/// upper bound: solutions of size > `ub` (when given) are not explored.
/// Returns the minimum size, or `None` if every solution exceeds the bound.
fn min_hitting_set(conjuncts: &[Vec<VarId>], ub: Option<usize>) -> Option<usize> {
    // Drop conjuncts that are supersets of others: hitting the subset hits
    // the superset.
    let mut sorted: Vec<&Vec<VarId>> = conjuncts.iter().collect();
    sorted.sort_by_key(|c| c.len());
    let mut kept: Vec<&Vec<VarId>> = Vec::new();
    'outer: for c in sorted {
        for k in &kept {
            if k.iter().all(|v| c.contains(v)) {
                continue 'outer;
            }
        }
        kept.push(c);
    }
    let limit = ub.unwrap_or(usize::MAX);
    let mut best: Option<usize> = None;
    let mut chosen = Bitset::new(
        kept.iter()
            .flat_map(|c| c.iter())
            .map(|v| v.index() + 1)
            .max()
            .unwrap_or(1),
    );
    branch(&kept, &mut chosen, 0, limit, &mut best);
    best
}

fn branch(
    conjuncts: &[&Vec<VarId>],
    chosen: &mut Bitset,
    size: usize,
    limit: usize,
    best: &mut Option<usize>,
) {
    if let Some(b) = *best {
        if size >= b {
            return; // cannot improve
        }
    }
    // First unhit conjunct; if none, we have a hitting set.
    let Some(unhit) = conjuncts
        .iter()
        .find(|c| !c.iter().any(|v| chosen.contains(v.index())))
    else {
        *best = Some(size);
        return;
    };
    if size >= limit {
        return; // bound exhausted and still unhit conjuncts
    }
    for &v in unhit.iter() {
        chosen.insert(v.index());
        branch(conjuncts, chosen, size + 1, limit, best);
        chosen.remove(v.index());
    }
}

/// `O(2ⁿ)` responsibility oracle straight from the definition, for tests:
/// tries every contingency set by increasing size.
pub fn responsibility_naive(lineage: &Dnf, fact: VarId, n: usize) -> Rational {
    assert!(n <= 15, "naive responsibility limited to 15 facts");
    let full: Vec<VarId> = lineage.vars();
    let eval = |present: &Bitset| lineage.eval_set(present);
    let mut best: Option<usize> = None;
    for mask in 0u64..(1 << n) {
        if mask >> fact.index() & 1 == 1 {
            continue; // Γ may not contain f itself
        }
        // E = all facts minus Γ.
        let mut with_f = Bitset::new(n.max(1));
        for v in 0..n {
            if mask >> v & 1 == 0 {
                with_f.insert(v);
            }
        }
        if !with_f.contains(fact.index()) {
            continue;
        }
        let mut without_f = with_f.clone();
        without_f.remove(fact.index());
        if eval(&with_f) && !eval(&without_f) {
            let k = mask.count_ones() as usize;
            best = Some(best.map_or(k, |b| b.min(k)));
        }
    }
    let _ = full;
    match best {
        Some(k) => Rational::from_ratio(1, 1 + k as u64),
        None => Rational::zero(),
    }
}

/// Causal effect (Salimi et al., TaPP 2016): the expected difference
/// `E[q | f present] − E[q | f absent]` under independent fact probability
/// ½. For Boolean games this *equals* the Banzhaf value, so the exact
/// computation lives in [`crate::banzhaf`]; this alias documents the
/// identity at the API level.
pub use crate::banzhaf::banzhaf_all_facts as causal_effect_all_facts;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dnf(conjs: &[&[u32]]) -> Dnf {
        let mut d = Dnf::new();
        for c in conjs {
            d.add_conjunct(c.iter().map(|&v| VarId(v)).collect());
        }
        d
    }

    fn running_example() -> Dnf {
        dnf(&[&[0], &[1, 3], &[1, 4], &[2, 3], &[2, 4], &[5, 6]])
    }

    #[test]
    fn running_example_responsibilities() {
        let d = running_example();
        // a1: hit {a2,a3}×{a4,a5} (needs 2: one side) + (a6,a7) (1) → Γ=3.
        assert_eq!(responsibility(&d, VarId(0)), Rational::from_ratio(1, 4));
        // a2: witness (a2,a4) forbids a4: hit a1(1), (a3,a4)→a3, (a3,a5)✓, (a6,a7)(1) → 3.
        assert_eq!(responsibility(&d, VarId(1)), Rational::from_ratio(1, 4));
        // a8 (id 7) is not in the lineage.
        assert_eq!(responsibility(&d, VarId(7)), Rational::zero());
    }

    #[test]
    fn read_once_dp_matches_the_hitting_set_on_the_running_example() {
        let mut d = running_example();
        d.minimize();
        let tree = shapdb_circuit::factor_minimized(&d).expect("running example is read-once");
        assert_eq!(responsibility_read_once(&tree), responsibility_all(&d));
    }

    #[test]
    fn read_once_dp_handles_certain_and_blocked_subtrees() {
        // `true ∨ a`: certain answer — removing `a` never flips it.
        let certain = ReadOnce::Or(vec![ReadOnce::True, ReadOnce::Var(VarId(0))]);
        assert!(responsibility_read_once(&certain).is_empty());
        // `a ∧ false`: never holds — `a` is never a cause.
        let blocked = ReadOnce::And(vec![ReadOnce::Var(VarId(0)), ReadOnce::False]);
        assert!(responsibility_read_once(&blocked).is_empty());
        // `a ∨ (b ∧ c)`: every fact needs a one-fact contingency.
        let tree = ReadOnce::Or(vec![
            ReadOnce::Var(VarId(0)),
            ReadOnce::And(vec![ReadOnce::Var(VarId(1)), ReadOnce::Var(VarId(2))]),
        ]);
        let half = Rational::from_ratio(1, 2);
        assert_eq!(
            responsibility_read_once(&tree),
            vec![
                (VarId(0), half.clone()),
                (VarId(1), half.clone()),
                (VarId(2), half)
            ]
        );
    }

    #[test]
    fn counterfactual_fact_has_responsibility_one() {
        // Single witness: f alone derives the answer and nothing else does.
        let d = dnf(&[&[0]]);
        assert_eq!(responsibility(&d, VarId(0)), Rational::one());
    }

    #[test]
    fn certain_answer_has_no_causes() {
        let mut d = Dnf::new();
        d.add_conjunct(vec![]);
        d.add_conjunct(vec![VarId(0)]);
        assert_eq!(responsibility(&d, VarId(0)), Rational::zero());
    }

    #[test]
    fn matches_naive_on_running_example() {
        let d = running_example();
        for v in 0..7u32 {
            assert_eq!(
                responsibility(&d, VarId(v)),
                responsibility_naive(&d, VarId(v), 7),
                "fact a{}",
                v + 1
            );
        }
    }

    #[test]
    fn all_variant_sorts_and_omits_nulls() {
        let d = dnf(&[&[0], &[1, 2]]);
        let all = responsibility_all(&d);
        // x0 is counterfactual after removing one of {x1,x2}? No: removing
        // x1 (or x2) makes (x1∧x2) false, so x0 is counterfactual with
        // Γ = {x1} → ρ = 1/2. x1: witness (x1,x2), hit {x0} → ρ = 1/2.
        assert_eq!(all.len(), 3);
        for (_, r) in &all {
            assert_eq!(*r, Rational::from_ratio(1, 2));
        }
    }

    #[test]
    fn causal_effect_is_banzhaf() {
        // The alias points at the Banzhaf computation; spot-check the
        // running example's a1 via the naive Banzhaf oracle.
        let d = running_example();
        let values = crate::banzhaf::banzhaf_naive(&|s: &Bitset| d.eval_set(s), 7);
        // CE(a1) = Pr[q | a1] − Pr[q | ¬a1] = 1 − Pr[rest fires]. The rest
        // is ((a2∨a3)∧(a4∨a5)) ∨ (a6∧a7) at p = ½:
        // 1 − (1 − 9/16)(1 − 1/4) = 43/64, so CE(a1) = 21/64.
        assert_eq!(values[0], Rational::from_ratio(21, 64));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn prop_matches_naive(
            conjuncts in proptest::collection::vec(
                proptest::collection::vec(0u32..6, 1..4), 1..6),
            fact in 0u32..6,
        ) {
            let mut d = Dnf::new();
            for c in &conjuncts {
                d.add_conjunct(c.iter().map(|&v| VarId(v)).collect());
            }
            prop_assert_eq!(
                responsibility(&d, VarId(fact)),
                responsibility_naive(&d, VarId(fact), 6)
            );
        }

        #[test]
        fn prop_read_once_dp_matches_hitting_set(
            conjuncts in proptest::collection::vec(
                proptest::collection::vec(0u32..8, 1..4), 1..7),
        ) {
            let mut d = Dnf::new();
            for c in &conjuncts {
                d.add_conjunct(c.iter().map(|&v| VarId(v)).collect());
            }
            d.minimize();
            if let Some(tree) = shapdb_circuit::factor_minimized(&d) {
                prop_assert_eq!(responsibility_read_once(&tree), responsibility_all(&d));
            }
        }

        #[test]
        fn prop_counterfactual_iff_responsibility_one(
            conjuncts in proptest::collection::vec(
                proptest::collection::vec(0u32..5, 1..3), 1..5),
            fact in 0u32..5,
        ) {
            let mut d = Dnf::new();
            for c in &conjuncts {
                d.add_conjunct(c.iter().map(|&v| VarId(v)).collect());
            }
            let n = 5usize;
            let mut all = Bitset::new(n);
            for i in 0..n { all.insert(i); }
            let mut without = all.clone();
            without.remove(fact as usize);
            let counterfactual = d.eval_set(&all) && !d.eval_set(&without);
            prop_assert_eq!(
                responsibility(&d, VarId(fact)) == Rational::one(),
                counterfactual
            );
        }
    }
}
