//! Causal responsibility of facts (Meliou, Gatterbauer, Moore & Suciu,
//! PVLDB 2010) — the measure the paper's related work positions Shapley
//! values against.
//!
//! A fact `f` is a *counterfactual cause* of an answer if removing `f` flips
//! the answer off. It is an *actual cause with contingency `Γ`* if, after
//! removing the contingency set `Γ`, it becomes counterfactual. Its
//! responsibility is
//!
//! ```text
//! ρ(f) = 1 / (1 + min { |Γ| : f counterfactual in D ∖ Γ })
//! ```
//!
//! (0 when no contingency works). On a monotone DNF lineage the inner
//! minimization is a constrained minimum hitting set: writing `F` for the
//! conjuncts containing `f` and `G` for those not containing `f`,
//!
//! * `Γ` must hit every conjunct of `G` (so the answer is off without `f`),
//! * some conjunct `C ∈ F` must survive untouched (so adding `f` back turns
//!   the answer on): `Γ ∩ C = ∅`.
//!
//! We solve exactly by iterating over the witness conjunct `C` and running a
//! branch-and-bound minimum hitting set on `G` with the variables of `C`
//! forbidden — exponential in the worst case (the problem is NP-hard) but
//! fast on per-tuple lineages, whose conjuncts are few and short. Computing
//! responsibility is harder to approximate than to rank by, which is exactly
//! the comparison the experiments draw against Shapley values.

use shapdb_circuit::{Dnf, VarId};
use shapdb_num::{Bitset, Rational};

/// Exact responsibility `ρ(f) = 1/(1 + min |Γ|)` of one fact of a monotone
/// DNF lineage, or 0 if `f` is never an actual cause.
pub fn responsibility(lineage: &Dnf, fact: VarId) -> Rational {
    match min_contingency(lineage, fact) {
        Some(k) => Rational::from_ratio(1, 1 + k as u64),
        None => Rational::zero(),
    }
}

/// Exact responsibility of every fact of the lineage, sorted by decreasing
/// value (ties by fact id). Null players get 0 and are omitted.
pub fn responsibility_all(lineage: &Dnf) -> Vec<(VarId, Rational)> {
    let mut out: Vec<(VarId, Rational)> = lineage
        .vars()
        .into_iter()
        .map(|v| (v, responsibility(lineage, v)))
        .filter(|(_, r)| !r.is_zero())
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Size of the smallest contingency set making `fact` counterfactual, or
/// `None` if none exists.
pub fn min_contingency(lineage: &Dnf, fact: VarId) -> Option<usize> {
    let mut d = lineage.clone();
    d.minimize();
    if d.conjuncts().iter().any(|c| c.is_empty()) {
        return None; // certain answer: no fact is ever counterfactual
    }
    let (witnesses, others): (Vec<&Vec<VarId>>, Vec<&Vec<VarId>>) =
        d.conjuncts().iter().partition(|c| c.contains(&fact));
    if witnesses.is_empty() {
        return None; // fact not in the lineage
    }

    let mut best: Option<usize> = None;
    for witness in &witnesses {
        let forbidden: Vec<VarId> = witness.iter().copied().filter(|&v| v != fact).collect();
        // Conjuncts of `G` still to hit, minus variables we may never pick.
        let mut to_hit: Vec<Vec<VarId>> = Vec::with_capacity(others.len());
        let mut feasible = true;
        for g in &others {
            let allowed: Vec<VarId> = g
                .iter()
                .copied()
                .filter(|v| !forbidden.contains(v))
                .collect();
            if allowed.is_empty() {
                feasible = false; // this G-conjunct survives whatever we do
                break;
            }
            // A conjunct that is a superset of another (after filtering) is
            // handled by the hitting-set search itself.
            to_hit.push(allowed);
        }
        if !feasible {
            continue;
        }
        let bound = best.map(|b| b.saturating_sub(1));
        if let Some(k) = min_hitting_set(&to_hit, bound) {
            best = Some(best.map_or(k, |b| b.min(k)));
            if best == Some(0) {
                break; // counterfactual outright; cannot improve
            }
        }
    }
    best
}

/// Exact minimum hitting set via branch and bound. `ub` is an exclusive-ish
/// upper bound: solutions of size > `ub` (when given) are not explored.
/// Returns the minimum size, or `None` if every solution exceeds the bound.
fn min_hitting_set(conjuncts: &[Vec<VarId>], ub: Option<usize>) -> Option<usize> {
    // Drop conjuncts that are supersets of others: hitting the subset hits
    // the superset.
    let mut sorted: Vec<&Vec<VarId>> = conjuncts.iter().collect();
    sorted.sort_by_key(|c| c.len());
    let mut kept: Vec<&Vec<VarId>> = Vec::new();
    'outer: for c in sorted {
        for k in &kept {
            if k.iter().all(|v| c.contains(v)) {
                continue 'outer;
            }
        }
        kept.push(c);
    }
    let limit = ub.unwrap_or(usize::MAX);
    let mut best: Option<usize> = None;
    let mut chosen = Bitset::new(
        kept.iter()
            .flat_map(|c| c.iter())
            .map(|v| v.index() + 1)
            .max()
            .unwrap_or(1),
    );
    branch(&kept, &mut chosen, 0, limit, &mut best);
    best
}

fn branch(
    conjuncts: &[&Vec<VarId>],
    chosen: &mut Bitset,
    size: usize,
    limit: usize,
    best: &mut Option<usize>,
) {
    if let Some(b) = *best {
        if size >= b {
            return; // cannot improve
        }
    }
    // First unhit conjunct; if none, we have a hitting set.
    let Some(unhit) = conjuncts
        .iter()
        .find(|c| !c.iter().any(|v| chosen.contains(v.index())))
    else {
        *best = Some(size);
        return;
    };
    if size >= limit {
        return; // bound exhausted and still unhit conjuncts
    }
    for &v in unhit.iter() {
        chosen.insert(v.index());
        branch(conjuncts, chosen, size + 1, limit, best);
        chosen.remove(v.index());
    }
}

/// `O(2ⁿ)` responsibility oracle straight from the definition, for tests:
/// tries every contingency set by increasing size.
pub fn responsibility_naive(lineage: &Dnf, fact: VarId, n: usize) -> Rational {
    assert!(n <= 15, "naive responsibility limited to 15 facts");
    let full: Vec<VarId> = lineage.vars();
    let eval = |present: &Bitset| lineage.eval_set(present);
    let mut best: Option<usize> = None;
    for mask in 0u64..(1 << n) {
        if mask >> fact.index() & 1 == 1 {
            continue; // Γ may not contain f itself
        }
        // E = all facts minus Γ.
        let mut with_f = Bitset::new(n.max(1));
        for v in 0..n {
            if mask >> v & 1 == 0 {
                with_f.insert(v);
            }
        }
        if !with_f.contains(fact.index()) {
            continue;
        }
        let mut without_f = with_f.clone();
        without_f.remove(fact.index());
        if eval(&with_f) && !eval(&without_f) {
            let k = mask.count_ones() as usize;
            best = Some(best.map_or(k, |b| b.min(k)));
        }
    }
    let _ = full;
    match best {
        Some(k) => Rational::from_ratio(1, 1 + k as u64),
        None => Rational::zero(),
    }
}

/// Causal effect (Salimi et al., TaPP 2016): the expected difference
/// `E[q | f present] − E[q | f absent]` under independent fact probability
/// ½. For Boolean games this *equals* the Banzhaf value, so the exact
/// computation lives in [`crate::banzhaf`]; this alias documents the
/// identity at the API level.
pub use crate::banzhaf::banzhaf_all_facts as causal_effect_all_facts;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dnf(conjs: &[&[u32]]) -> Dnf {
        let mut d = Dnf::new();
        for c in conjs {
            d.add_conjunct(c.iter().map(|&v| VarId(v)).collect());
        }
        d
    }

    fn running_example() -> Dnf {
        dnf(&[&[0], &[1, 3], &[1, 4], &[2, 3], &[2, 4], &[5, 6]])
    }

    #[test]
    fn running_example_responsibilities() {
        let d = running_example();
        // a1: hit {a2,a3}×{a4,a5} (needs 2: one side) + (a6,a7) (1) → Γ=3.
        assert_eq!(responsibility(&d, VarId(0)), Rational::from_ratio(1, 4));
        // a2: witness (a2,a4) forbids a4: hit a1(1), (a3,a4)→a3, (a3,a5)✓, (a6,a7)(1) → 3.
        assert_eq!(responsibility(&d, VarId(1)), Rational::from_ratio(1, 4));
        // a8 (id 7) is not in the lineage.
        assert_eq!(responsibility(&d, VarId(7)), Rational::zero());
    }

    #[test]
    fn counterfactual_fact_has_responsibility_one() {
        // Single witness: f alone derives the answer and nothing else does.
        let d = dnf(&[&[0]]);
        assert_eq!(responsibility(&d, VarId(0)), Rational::one());
    }

    #[test]
    fn certain_answer_has_no_causes() {
        let mut d = Dnf::new();
        d.add_conjunct(vec![]);
        d.add_conjunct(vec![VarId(0)]);
        assert_eq!(responsibility(&d, VarId(0)), Rational::zero());
    }

    #[test]
    fn matches_naive_on_running_example() {
        let d = running_example();
        for v in 0..7u32 {
            assert_eq!(
                responsibility(&d, VarId(v)),
                responsibility_naive(&d, VarId(v), 7),
                "fact a{}",
                v + 1
            );
        }
    }

    #[test]
    fn all_variant_sorts_and_omits_nulls() {
        let d = dnf(&[&[0], &[1, 2]]);
        let all = responsibility_all(&d);
        // x0 is counterfactual after removing one of {x1,x2}? No: removing
        // x1 (or x2) makes (x1∧x2) false, so x0 is counterfactual with
        // Γ = {x1} → ρ = 1/2. x1: witness (x1,x2), hit {x0} → ρ = 1/2.
        assert_eq!(all.len(), 3);
        for (_, r) in &all {
            assert_eq!(*r, Rational::from_ratio(1, 2));
        }
    }

    #[test]
    fn causal_effect_is_banzhaf() {
        // The alias points at the Banzhaf computation; spot-check the
        // running example's a1 via the naive Banzhaf oracle.
        let d = running_example();
        let values = crate::banzhaf::banzhaf_naive(&|s: &Bitset| d.eval_set(s), 7);
        // CE(a1) = Pr[q | a1] − Pr[q | ¬a1] = 1 − Pr[rest fires]. The rest
        // is ((a2∨a3)∧(a4∨a5)) ∨ (a6∧a7) at p = ½:
        // 1 − (1 − 9/16)(1 − 1/4) = 43/64, so CE(a1) = 21/64.
        assert_eq!(values[0], Rational::from_ratio(21, 64));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn prop_matches_naive(
            conjuncts in proptest::collection::vec(
                proptest::collection::vec(0u32..6, 1..4), 1..6),
            fact in 0u32..6,
        ) {
            let mut d = Dnf::new();
            for c in &conjuncts {
                d.add_conjunct(c.iter().map(|&v| VarId(v)).collect());
            }
            prop_assert_eq!(
                responsibility(&d, VarId(fact)),
                responsibility_naive(&d, VarId(fact), 6)
            );
        }

        #[test]
        fn prop_counterfactual_iff_responsibility_one(
            conjuncts in proptest::collection::vec(
                proptest::collection::vec(0u32..5, 1..3), 1..5),
            fact in 0u32..5,
        ) {
            let mut d = Dnf::new();
            for c in &conjuncts {
                d.add_conjunct(c.iter().map(|&v| VarId(v)).collect());
            }
            let n = 5usize;
            let mut all = Bitset::new(n);
            for i in 0..n { all.insert(i); }
            let mut without = all.clone();
            without.remove(fact as usize);
            let counterfactual = d.eval_set(&all) && !d.eval_set(&without);
            prop_assert_eq!(
                responsibility(&d, VarId(fact)) == Rational::one(),
                counterfactual
            );
        }
    }
}
