//! Classic entry points for the exact pipeline (the middle row of
//! Figure 3), now thin delegations into the [`crate::engine`] layer.
//!
//! `ELin` circuit → Tseytin CNF → d-DNNF (compile) → project (Lemma 4.6) →
//! Algorithm 1, with per-stage wall-clock timings — the quantities Table 1
//! and Figure 4 of the paper report. The implementation lives in
//! [`KcEngine::analyze_circuit`] and the engine trait impls; these free
//! functions remain as the stable names the rest of the workspace calls.

use crate::engine::{
    EngineError, EngineKind, EngineResult, EngineValues, KcEngine, LineageTask, Measure, Planner,
    PlannerConfig,
};
use crate::exact::{ExactConfig, ShapleyTimeout};
use shapdb_circuit::{Circuit, Dnf, NodeId, VarId};
use shapdb_kc::{Budget, CompileError, CompileStats};
use shapdb_num::Rational;
use std::time::Duration;

/// How the exact values of an analysis were obtained.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnalysisMethod {
    /// The lineage factorized; values came from the read-once fast path.
    ReadOnce,
    /// The full Figure-3 pipeline: Tseytin → compile → project → Algorithm 1.
    KnowledgeCompilation,
    /// Tiny non-read-once lineage: `O(2ⁿ)` enumeration of the definition
    /// (the planner's cheapest exact route below ~10 variables).
    Naive,
}

/// Exact Shapley value of one fact of a lineage.
#[derive(Clone, Debug)]
pub struct FactAttribution {
    /// The fact (provenance circuit variable = database fact id).
    pub fact: VarId,
    /// Its exact Shapley value.
    pub shapley: Rational,
}

/// Result of the exact pipeline on one output tuple's lineage.
#[derive(Clone, Debug)]
pub struct LineageAnalysis {
    /// Per-fact exact Shapley values, sorted by decreasing value (ties by
    /// ascending fact id). Facts of `D_n` that do not occur in the lineage
    /// are null players (value 0) and are omitted.
    pub attributions: Vec<FactAttribution>,
    /// Knowledge-compilation wall time (Tseytin + compile + project), or
    /// factorization time on the read-once path.
    pub kc_time: Duration,
    /// Algorithm 1 wall time.
    pub alg1_time: Duration,
    /// Distinct facts in the lineage.
    pub num_facts: usize,
    /// Clauses in the Tseytin CNF.
    pub cnf_clauses: usize,
    /// Size of the projected d-DNNF (tree size for the read-once path).
    pub ddnnf_size: usize,
    /// Compiler counters (all zero for the read-once path).
    pub compile_stats: CompileStats,
    /// Which path produced the values.
    pub method: AnalysisMethod,
}

impl LineageAnalysis {
    /// The engine-layer view of this analysis.
    pub fn into_engine_result(self) -> EngineResult {
        EngineResult {
            engine: match self.method {
                AnalysisMethod::ReadOnce => EngineKind::ReadOnce,
                AnalysisMethod::KnowledgeCompilation => EngineKind::Kc,
                AnalysisMethod::Naive => EngineKind::Naive,
            },
            measure: Measure::Shapley,
            values: EngineValues::Exact(
                self.attributions
                    .into_iter()
                    .map(|a| (a.fact, a.shapley))
                    .collect(),
            ),
            prep_time: self.kc_time,
            solve_time: self.alg1_time,
            num_facts: self.num_facts,
            cnf_clauses: self.cnf_clauses,
            ddnnf_size: self.ddnnf_size,
            compile_stats: self.compile_stats,
        }
    }
}

/// Why the exact pipeline failed (the hybrid engine catches these).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnalysisError {
    Compile(CompileError),
    Shapley(ShapleyTimeout),
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Compile(e) => write!(f, "{e}"),
            AnalysisError::Shapley(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Runs the full exact pipeline on an endogenous-lineage circuit.
///
/// `n_endo` is `|D_n|`; `budget` bounds knowledge compilation; the
/// [`ExactConfig`] deadline (if any) also bounds Algorithm 1. Delegates to
/// [`KcEngine::analyze_circuit`].
pub fn analyze_lineage(
    circuit: &Circuit,
    root: NodeId,
    n_endo: usize,
    budget: &Budget,
    cfg: &ExactConfig,
) -> Result<LineageAnalysis, AnalysisError> {
    KcEngine::analyze_circuit(circuit, root, n_endo, budget, cfg)
}

/// Exact pipeline with the read-once fast path.
///
/// Delegates to the engine layer's [`Planner`] in exact mode: lineages that
/// factor take the read-once engine (no Tseytin, no compilation — the
/// polynomial algorithm of Livshits et al. for hierarchical self-join-free
/// queries); the rest run the full [`analyze_lineage`] pipeline.
pub fn analyze_lineage_auto(
    lineage: &Dnf,
    n_endo: usize,
    budget: &Budget,
    cfg: &ExactConfig,
) -> Result<LineageAnalysis, AnalysisError> {
    let planner = Planner::new(PlannerConfig::default());
    let task = LineageTask::new(lineage, n_endo)
        .with_budget(*budget)
        .with_exact(*cfg);
    match planner.solve(&task) {
        Ok(result) => Ok(result
            .into_analysis()
            .expect("exact-mode planner yields exact engines")),
        Err(EngineError::Analysis(e)) => Err(e),
        Err(EngineError::Unsupported(why)) => {
            unreachable!("exact-mode planner only plans supported engines: {why}")
        }
        Err(EngineError::UnsupportedMeasure { engine, measure }) => {
            unreachable!("classic pipeline only issues Shapley tasks: {engine} / {measure}")
        }
        Err(EngineError::Panicked(msg)) => {
            unreachable!("one-shot solves run outside the service's catch_unwind: {msg}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapdb_circuit::Dnf;

    fn running_example_circuit() -> (Circuit, NodeId) {
        let mut d = Dnf::new();
        d.add_conjunct(vec![VarId(0)]);
        for pair in [[1u32, 3], [1, 4], [2, 3], [2, 4], [5, 6]] {
            d.add_conjunct(pair.iter().map(|&v| VarId(v)).collect());
        }
        let mut c = Circuit::new();
        let root = d.to_circuit(&mut c);
        (c, root)
    }

    #[test]
    fn running_example_end_to_end() {
        let (c, root) = running_example_circuit();
        let analysis =
            analyze_lineage(&c, root, 8, &Budget::unlimited(), &ExactConfig::default()).unwrap();
        assert_eq!(analysis.num_facts, 7);
        // Top fact is a1 with 43/105.
        assert_eq!(analysis.attributions[0].fact, VarId(0));
        assert_eq!(
            analysis.attributions[0].shapley,
            Rational::from_ratio(43, 105)
        );
        // Sorted non-increasing.
        for w in analysis.attributions.windows(2) {
            assert!(w[0].shapley >= w[1].shapley);
        }
        assert!(analysis.ddnnf_size > 0);
        assert!(analysis.cnf_clauses > 0);
    }

    #[test]
    fn auto_takes_read_once_path_on_running_example() {
        let mut d = Dnf::new();
        d.add_conjunct(vec![VarId(0)]);
        for pair in [[1u32, 3], [1, 4], [2, 3], [2, 4], [5, 6]] {
            d.add_conjunct(pair.iter().map(|&v| VarId(v)).collect());
        }
        let auto =
            analyze_lineage_auto(&d, 8, &Budget::unlimited(), &ExactConfig::default()).unwrap();
        assert_eq!(auto.method, AnalysisMethod::ReadOnce);
        assert_eq!(auto.cnf_clauses, 0);
        let (c, root) = running_example_circuit();
        let kc =
            analyze_lineage(&c, root, 8, &Budget::unlimited(), &ExactConfig::default()).unwrap();
        let a: Vec<(VarId, Rational)> = auto
            .attributions
            .iter()
            .map(|f| (f.fact, f.shapley.clone()))
            .collect();
        let b: Vec<(VarId, Rational)> = kc
            .attributions
            .iter()
            .map(|f| (f.fact, f.shapley.clone()))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn auto_routes_tiny_majority_to_naive_enumeration() {
        // Non-read-once but only 3 variables: the planner's tiny-naive
        // route answers it without ever building a CNF.
        let mut d = Dnf::new();
        for pair in [[0u32, 1], [1, 2], [0, 2]] {
            d.add_conjunct(pair.iter().map(|&v| VarId(v)).collect());
        }
        let auto =
            analyze_lineage_auto(&d, 3, &Budget::unlimited(), &ExactConfig::default()).unwrap();
        assert_eq!(auto.method, AnalysisMethod::Naive);
        assert_eq!(auto.cnf_clauses, 0);
        // Majority of three: every fact gets 1/3 by symmetry + efficiency.
        for f in &auto.attributions {
            assert_eq!(f.shapley, Rational::from_ratio(1, 3));
        }
    }

    #[test]
    fn auto_falls_back_to_kc_beyond_the_naive_cutoff() {
        // Four disjoint majorities (12 vars > max_naive_vars): still not
        // read-once, so the compiler pipeline runs.
        let mut d = Dnf::new();
        for base in [0u32, 3, 6, 9] {
            for pair in [[base, base + 1], [base + 1, base + 2], [base, base + 2]] {
                d.add_conjunct(pair.iter().map(|&v| VarId(v)).collect());
            }
        }
        let auto =
            analyze_lineage_auto(&d, 12, &Budget::unlimited(), &ExactConfig::default()).unwrap();
        assert_eq!(auto.method, AnalysisMethod::KnowledgeCompilation);
        for f in &auto.attributions {
            assert_eq!(f.shapley, Rational::from_ratio(1, 12));
        }
    }

    #[test]
    fn compile_budget_respected() {
        let (c, root) = running_example_circuit();
        let err = analyze_lineage(
            &c,
            root,
            8,
            &Budget::with_max_nodes(1),
            &ExactConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, AnalysisError::Compile(CompileError::NodeLimit));
    }

    #[test]
    fn analysis_round_trips_to_engine_result() {
        let (c, root) = running_example_circuit();
        let analysis =
            analyze_lineage(&c, root, 8, &Budget::unlimited(), &ExactConfig::default()).unwrap();
        let result = analysis.into_engine_result();
        assert_eq!(result.engine, EngineKind::Kc);
        assert_eq!(result.values.len(), 7);
        assert!(result.values.is_exact());
    }
}
