//! End-to-end exact pipeline for one lineage (the middle row of Figure 3).
//!
//! `ELin` circuit → Tseytin CNF → d-DNNF (compile) → project (Lemma 4.6) →
//! Algorithm 1, with per-stage wall-clock timings — the quantities Table 1
//! and Figure 4 of the paper report.

use crate::exact::{shapley_all_facts, ExactConfig, ShapleyTimeout};
use crate::readonce::shapley_read_once;
use shapdb_circuit::{factor, tseytin, Circuit, Dnf, NodeId, VarId};
use shapdb_kc::{compile, project, Budget, CompileError, CompileStats};
use shapdb_num::Rational;
use std::time::{Duration, Instant};

/// How the exact values of an analysis were obtained.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnalysisMethod {
    /// The lineage factorized; values came from the read-once fast path.
    ReadOnce,
    /// The full Figure-3 pipeline: Tseytin → compile → project → Algorithm 1.
    KnowledgeCompilation,
}

/// Exact Shapley value of one fact of a lineage.
#[derive(Clone, Debug)]
pub struct FactAttribution {
    /// The fact (provenance circuit variable = database fact id).
    pub fact: VarId,
    /// Its exact Shapley value.
    pub shapley: Rational,
}

/// Result of the exact pipeline on one output tuple's lineage.
#[derive(Clone, Debug)]
pub struct LineageAnalysis {
    /// Per-fact exact Shapley values, sorted by decreasing value. Facts of
    /// `D_n` that do not occur in the lineage are null players (value 0) and
    /// are omitted.
    pub attributions: Vec<FactAttribution>,
    /// Knowledge-compilation wall time (Tseytin + compile + project).
    pub kc_time: Duration,
    /// Algorithm 1 wall time.
    pub alg1_time: Duration,
    /// Distinct facts in the lineage.
    pub num_facts: usize,
    /// Clauses in the Tseytin CNF.
    pub cnf_clauses: usize,
    /// Size of the projected d-DNNF (tree size for the read-once path).
    pub ddnnf_size: usize,
    /// Compiler counters (all zero for the read-once path).
    pub compile_stats: CompileStats,
    /// Which path produced the values.
    pub method: AnalysisMethod,
}

/// Why the exact pipeline failed (the hybrid engine catches these).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnalysisError {
    Compile(CompileError),
    Shapley(ShapleyTimeout),
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Compile(e) => write!(f, "{e}"),
            AnalysisError::Shapley(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Runs the full exact pipeline on an endogenous-lineage circuit.
///
/// `n_endo` is `|D_n|`; `budget` bounds knowledge compilation; the
/// [`ExactConfig`] deadline (if any) also bounds Algorithm 1.
pub fn analyze_lineage(
    circuit: &Circuit,
    root: NodeId,
    n_endo: usize,
    budget: &Budget,
    cfg: &ExactConfig,
) -> Result<LineageAnalysis, AnalysisError> {
    let kc_start = Instant::now();
    let t = tseytin(circuit, root);
    let (full, compile_stats) = compile(&t.cnf, budget).map_err(AnalysisError::Compile)?;
    let ddnnf = project(&full, t.num_inputs());
    let kc_time = kc_start.elapsed();

    let alg1_start = Instant::now();
    let values = shapley_all_facts(&ddnnf, n_endo, cfg).map_err(AnalysisError::Shapley)?;
    let alg1_time = alg1_start.elapsed();

    let mut attributions: Vec<FactAttribution> = values
        .into_iter()
        .enumerate()
        .map(|(i, shapley)| FactAttribution {
            fact: t.input_vars[i],
            shapley,
        })
        .collect();
    attributions.sort_by(|a, b| b.shapley.cmp(&a.shapley));
    Ok(LineageAnalysis {
        attributions,
        kc_time,
        alg1_time,
        num_facts: t.num_inputs(),
        cnf_clauses: t.cnf.len(),
        ddnnf_size: ddnnf.len(),
        compile_stats,
        method: AnalysisMethod::KnowledgeCompilation,
    })
}

/// Exact pipeline with the read-once fast path (§ "readonce" of DESIGN.md).
///
/// First tries to factorize the monotone DNF lineage; when it is read-once,
/// the values come straight from the factorization — no Tseytin, no
/// compilation. Otherwise falls back to [`analyze_lineage`]. Hierarchical
/// self-join-free queries always take the fast path, making this the
/// polynomial algorithm the paper's §3 attributes to Livshits et al.
pub fn analyze_lineage_auto(
    lineage: &Dnf,
    n_endo: usize,
    budget: &Budget,
    cfg: &ExactConfig,
) -> Result<LineageAnalysis, AnalysisError> {
    let factor_start = Instant::now();
    if let Some(tree) = factor(lineage) {
        let factor_time = factor_start.elapsed();
        let eval_start = Instant::now();
        let values =
            shapley_read_once(&tree, n_endo, cfg.deadline).map_err(AnalysisError::Shapley)?;
        let alg1_time = eval_start.elapsed();
        let num_facts = values.len();
        let mut attributions: Vec<FactAttribution> = values
            .into_iter()
            .map(|(fact, shapley)| FactAttribution { fact, shapley })
            .collect();
        attributions.sort_by(|a, b| b.shapley.cmp(&a.shapley));
        return Ok(LineageAnalysis {
            attributions,
            kc_time: factor_time,
            alg1_time,
            num_facts,
            cnf_clauses: 0,
            ddnnf_size: tree.len(),
            compile_stats: CompileStats::default(),
            method: AnalysisMethod::ReadOnce,
        });
    }
    let mut circuit = Circuit::new();
    let root = lineage.to_circuit(&mut circuit);
    analyze_lineage(&circuit, root, n_endo, budget, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapdb_circuit::Dnf;

    fn running_example_circuit() -> (Circuit, NodeId) {
        let mut d = Dnf::new();
        d.add_conjunct(vec![VarId(0)]);
        for pair in [[1u32, 3], [1, 4], [2, 3], [2, 4], [5, 6]] {
            d.add_conjunct(pair.iter().map(|&v| VarId(v)).collect());
        }
        let mut c = Circuit::new();
        let root = d.to_circuit(&mut c);
        (c, root)
    }

    #[test]
    fn running_example_end_to_end() {
        let (c, root) = running_example_circuit();
        let analysis =
            analyze_lineage(&c, root, 8, &Budget::unlimited(), &ExactConfig::default()).unwrap();
        assert_eq!(analysis.num_facts, 7);
        // Top fact is a1 with 43/105.
        assert_eq!(analysis.attributions[0].fact, VarId(0));
        assert_eq!(
            analysis.attributions[0].shapley,
            Rational::from_ratio(43, 105)
        );
        // Sorted non-increasing.
        for w in analysis.attributions.windows(2) {
            assert!(w[0].shapley >= w[1].shapley);
        }
        assert!(analysis.ddnnf_size > 0);
        assert!(analysis.cnf_clauses > 0);
    }

    #[test]
    fn auto_takes_read_once_path_on_running_example() {
        let mut d = Dnf::new();
        d.add_conjunct(vec![VarId(0)]);
        for pair in [[1u32, 3], [1, 4], [2, 3], [2, 4], [5, 6]] {
            d.add_conjunct(pair.iter().map(|&v| VarId(v)).collect());
        }
        let auto =
            analyze_lineage_auto(&d, 8, &Budget::unlimited(), &ExactConfig::default()).unwrap();
        assert_eq!(auto.method, AnalysisMethod::ReadOnce);
        assert_eq!(auto.cnf_clauses, 0);
        let (c, root) = running_example_circuit();
        let kc =
            analyze_lineage(&c, root, 8, &Budget::unlimited(), &ExactConfig::default()).unwrap();
        let a: Vec<(VarId, Rational)> = auto
            .attributions
            .iter()
            .map(|f| (f.fact, f.shapley.clone()))
            .collect();
        let b: Vec<(VarId, Rational)> = kc
            .attributions
            .iter()
            .map(|f| (f.fact, f.shapley.clone()))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn auto_falls_back_to_kc_on_majority() {
        let mut d = Dnf::new();
        for pair in [[0u32, 1], [1, 2], [0, 2]] {
            d.add_conjunct(pair.iter().map(|&v| VarId(v)).collect());
        }
        let auto =
            analyze_lineage_auto(&d, 3, &Budget::unlimited(), &ExactConfig::default()).unwrap();
        assert_eq!(auto.method, AnalysisMethod::KnowledgeCompilation);
        // Majority of three: every fact gets 1/3 by symmetry + efficiency.
        for f in &auto.attributions {
            assert_eq!(f.shapley, Rational::from_ratio(1, 3));
        }
    }

    #[test]
    fn compile_budget_respected() {
        let (c, root) = running_example_circuit();
        let err = analyze_lineage(
            &c,
            root,
            8,
            &Budget::with_max_nodes(1),
            &ExactConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, AnalysisError::Compile(CompileError::NodeLimit));
    }
}
