//! The hybrid engine (§6.3 of the paper) — a thin policy over the
//! [`crate::engine`] trait.
//!
//! Run the exact pipeline (knowledge compilation + Algorithm 1) under a
//! configurable timeout `t`; if it completes, return exact Shapley values,
//! otherwise fall back to CNF Proxy and return a *ranking* of the facts. The
//! paper's experiments justify `t = 2.5 s` as the sweet spot (Figure 8); that
//! is the default here. The two arms are [`KcEngine`] and [`ProxyEngine`];
//! with [`HybridConfig::try_read_once`] the [`ReadOnceEngine`] runs first —
//! the general form of this policy is the engine layer's
//! [`PlannerConfig::hybrid`](crate::engine::PlannerConfig::hybrid).

use crate::engine::{
    EngineResult, EngineValues, KcEngine, LineageTask, ProxyEngine, ReadOnceEngine, ShapleyEngine,
};
use crate::exact::ExactConfig;
use shapdb_circuit::{Circuit, NodeId, VarId};
use shapdb_kc::Budget;
use shapdb_num::Rational;
use std::time::{Duration, Instant};

/// Configuration for the hybrid engine.
#[derive(Clone, Copy, Debug)]
pub struct HybridConfig {
    /// Timeout for the exact pipeline (paper default: 2.5 s).
    pub timeout: Duration,
    /// Exact-computation options (the deadline field is overwritten).
    pub exact: ExactConfig,
    /// Try the read-once fast path before compiling (extension; off by
    /// default so the engine measures exactly what the paper's §6.3 does).
    /// Only honored by [`hybrid_shapley_dnf`], which sees the DNF lineage.
    pub try_read_once: bool,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            timeout: Duration::from_millis(2500),
            exact: ExactConfig::default(),
            try_read_once: false,
        }
    }
}

/// What the hybrid engine produced.
#[derive(Clone, Debug)]
pub enum HybridOutcome {
    /// Exact Shapley values, sorted by decreasing value.
    Exact(Vec<(VarId, Rational)>),
    /// CNF-Proxy scores (a ranking, not Shapley values), sorted decreasing.
    Proxy(Vec<(VarId, f64)>),
}

impl HybridOutcome {
    /// The facts in ranked order (most influential first), either way.
    pub fn ranking(&self) -> Vec<VarId> {
        match self {
            HybridOutcome::Exact(v) => v.iter().map(|(f, _)| *f).collect(),
            HybridOutcome::Proxy(v) => v.iter().map(|(f, _)| *f).collect(),
        }
    }

    /// True iff the exact pipeline finished within the timeout.
    pub fn is_exact(&self) -> bool {
        matches!(self, HybridOutcome::Exact(_))
    }
}

impl From<EngineResult> for HybridOutcome {
    fn from(r: EngineResult) -> HybridOutcome {
        match r.values {
            EngineValues::Exact(pairs) => HybridOutcome::Exact(pairs),
            EngineValues::Approx(pairs) => HybridOutcome::Proxy(pairs),
        }
    }
}

/// Timings and outcome of one hybrid run.
#[derive(Clone, Debug)]
pub struct HybridReport {
    pub outcome: HybridOutcome,
    /// Wall time of the whole run (exact attempt + fallback if any).
    pub total_time: Duration,
    /// Time spent in the exact attempt.
    pub exact_time: Duration,
    /// Time spent in the proxy fallback (zero when exact succeeded).
    pub proxy_time: Duration,
}

/// Runs the hybrid strategy on a monotone DNF lineage.
///
/// With [`HybridConfig::try_read_once`] the [`ReadOnceEngine`] runs first
/// (microseconds, exact, no deadline needed); only lineages that do not
/// factor pay for Tseytin + compilation under the timeout. With the flag off
/// this is [`hybrid_shapley`] on the lineage's circuit — the paper's exact
/// §6.3 behaviour.
pub fn hybrid_shapley_dnf(
    lineage: &shapdb_circuit::Dnf,
    n_endo: usize,
    cfg: &HybridConfig,
) -> HybridReport {
    if cfg.try_read_once {
        let start = Instant::now();
        let task = LineageTask::new(lineage, n_endo).with_exact(ExactConfig {
            deadline: None,
            ..cfg.exact
        });
        if let Ok(result) = ReadOnceEngine.solve(&task) {
            let elapsed = start.elapsed();
            return HybridReport {
                outcome: result.into(),
                total_time: elapsed,
                exact_time: elapsed,
                proxy_time: Duration::ZERO,
            };
        }
    }
    let mut circuit = Circuit::new();
    let root = lineage.to_circuit(&mut circuit);
    hybrid_shapley(&circuit, root, n_endo, cfg)
}

/// Runs the hybrid strategy on an endogenous-lineage circuit: the
/// [`KcEngine`] under the deadline, the [`ProxyEngine`] on failure.
pub fn hybrid_shapley(
    circuit: &Circuit,
    root: NodeId,
    n_endo: usize,
    cfg: &HybridConfig,
) -> HybridReport {
    let start = Instant::now();
    let deadline = start + cfg.timeout;
    let budget = Budget {
        deadline: Some(deadline),
        max_nodes: usize::MAX,
    };
    let exact_cfg = ExactConfig {
        deadline: Some(deadline),
        ..cfg.exact
    };

    match KcEngine::analyze_circuit(circuit, root, n_endo, &budget, &exact_cfg) {
        Ok(analysis) => {
            let exact_time = start.elapsed();
            HybridReport {
                outcome: analysis.into_engine_result().into(),
                total_time: start.elapsed(),
                exact_time,
                proxy_time: Duration::ZERO,
            }
        }
        Err(_) => {
            let exact_time = start.elapsed();
            let proxy_start = Instant::now();
            // Re-runs Tseytin (analyze_circuit does not expose its CNF) —
            // linear work, negligible next to the timeout just burned.
            let pairs = ProxyEngine::score_circuit(circuit, root);
            HybridReport {
                outcome: HybridOutcome::Proxy(pairs),
                total_time: start.elapsed(),
                exact_time,
                proxy_time: proxy_start.elapsed(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapdb_circuit::Dnf;

    fn running_example_circuit() -> (Circuit, NodeId) {
        let mut d = Dnf::new();
        d.add_conjunct(vec![VarId(0)]);
        for pair in [[1u32, 3], [1, 4], [2, 3], [2, 4], [5, 6]] {
            d.add_conjunct(pair.iter().map(|&v| VarId(v)).collect());
        }
        let mut c = Circuit::new();
        let root = d.to_circuit(&mut c);
        (c, root)
    }

    #[test]
    fn exact_within_generous_timeout() {
        let (c, root) = running_example_circuit();
        let report = hybrid_shapley(&c, root, 8, &HybridConfig::default());
        assert!(report.outcome.is_exact());
        match &report.outcome {
            HybridOutcome::Exact(pairs) => {
                assert_eq!(pairs[0].0, VarId(0));
                assert_eq!(pairs[0].1, Rational::from_ratio(43, 105));
            }
            HybridOutcome::Proxy(_) => unreachable!(),
        }
    }

    #[test]
    fn falls_back_to_proxy_on_zero_timeout() {
        let (c, root) = running_example_circuit();
        let cfg = HybridConfig {
            timeout: Duration::ZERO,
            ..Default::default()
        };
        let report = hybrid_shapley(&c, root, 8, &cfg);
        assert!(!report.outcome.is_exact());
        // The proxy ranking still puts a1's pair facts above a6/a7... and
        // critically, the ranking is non-empty and covers all 7 facts.
        assert_eq!(report.outcome.ranking().len(), 7);
        assert!(report.proxy_time.max(Duration::from_nanos(1)).as_nanos() > 0);
    }

    #[test]
    fn fast_path_rescues_zero_timeout_when_enabled() {
        // With try_read_once, even a zero timeout yields exact values on a
        // factorizable lineage — the fast path runs before the clock
        // matters. With it off, the same call degrades to a proxy ranking.
        let mut d = Dnf::new();
        d.add_conjunct(vec![VarId(0)]);
        for pair in [[1u32, 3], [1, 4], [2, 3], [2, 4], [5, 6]] {
            d.add_conjunct(pair.iter().map(|&v| VarId(v)).collect());
        }
        let on = HybridConfig {
            timeout: Duration::ZERO,
            try_read_once: true,
            ..Default::default()
        };
        let report = hybrid_shapley_dnf(&d, 8, &on);
        assert!(report.outcome.is_exact());
        match &report.outcome {
            HybridOutcome::Exact(pairs) => {
                assert_eq!(pairs[0].0, VarId(0));
                assert_eq!(pairs[0].1, Rational::from_ratio(43, 105));
            }
            HybridOutcome::Proxy(_) => unreachable!(),
        }
        let off = HybridConfig {
            timeout: Duration::ZERO,
            ..Default::default()
        };
        assert!(!hybrid_shapley_dnf(&d, 8, &off).outcome.is_exact());
    }

    #[test]
    fn fast_path_falls_through_on_non_read_once() {
        // Majority is not read-once: the flag must not change the outcome
        // class (exact via KC under a generous timeout).
        let mut d = Dnf::new();
        for pair in [[0u32, 1], [1, 2], [0, 2]] {
            d.add_conjunct(pair.iter().map(|&v| VarId(v)).collect());
        }
        let cfg = HybridConfig {
            try_read_once: true,
            ..Default::default()
        };
        let report = hybrid_shapley_dnf(&d, 3, &cfg);
        assert!(report.outcome.is_exact());
        match &report.outcome {
            HybridOutcome::Exact(pairs) => {
                for (_, v) in pairs {
                    assert_eq!(*v, Rational::from_ratio(1, 3));
                }
            }
            HybridOutcome::Proxy(_) => unreachable!(),
        }
    }

    #[test]
    fn proxy_ranking_matches_exact_order_on_pairs() {
        // Drop a1 (whose raw-mode proxy pathology Example 5.4 discusses);
        // for the pure 2-way-pairs lineage the proxy order matches exact.
        let mut d = Dnf::new();
        for pair in [[1u32, 3], [1, 4], [2, 3], [2, 4], [5, 6]] {
            d.add_conjunct(pair.iter().map(|&v| VarId(v)).collect());
        }
        let mut c = Circuit::new();
        let root = d.to_circuit(&mut c);
        let exact = hybrid_shapley(&c, root, 6, &HybridConfig::default());
        let cfg = HybridConfig {
            timeout: Duration::ZERO,
            ..Default::default()
        };
        let proxy = hybrid_shapley(&c, root, 6, &cfg);
        // a2..a5 (ids 1..4) must rank above a6,a7 (ids 5,6) in both.
        let rank_exact = exact.outcome.ranking();
        let rank_proxy = proxy.outcome.ranking();
        for r in [&rank_exact, &rank_proxy] {
            let pos = |id: u32| r.iter().position(|v| v.0 == id).unwrap();
            assert!(pos(1) < pos(5) && pos(2) < pos(6));
        }
    }
}
