//! Kernel SHAP adapted to database provenance (§6.2 of the paper).
//!
//! Kernel SHAP (Lundberg & Lee 2017) estimates SHAP values by fitting a
//! weighted linear model over sampled feature coalitions. The paper adapts
//! it to facts: the features are the endogenous facts, the model `h` is the
//! endogenous lineage (a 0/1 function), the explained point is `ē = 1⃗`, and
//! the background is a single all-zeros example — so `ĥ(S)` is simply the
//! lineage evaluated on the coalition `S`.
//!
//! Implementation: coalition sizes are drawn from the Shapley kernel
//! `π(s) ∝ (n-1)/(s·(n-s))` (so sampled points carry equal weight), and the
//! efficiency constraint `Σφ = h(1⃗) − h(0⃗)` is enforced by eliminating the
//! last feature, as in the reference implementation. The resulting normal
//! equations are solved densely; a tiny ridge keeps rank-deficient samples
//! solvable.

use rand::prelude::*;
use shapdb_num::{linalg::solve_f64, Bitset};

/// Configuration for Kernel SHAP.
#[derive(Clone, Copy, Debug)]
pub struct KernelShapConfig {
    /// Number of sampled coalitions `m` (the paper uses `m = c·n` for
    /// `c ∈ {10, 20, 30, 40, 50}`).
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
    /// Ridge regularizer added to the normal matrix diagonal.
    pub ridge: f64,
}

impl Default for KernelShapConfig {
    fn default() -> Self {
        KernelShapConfig {
            samples: 1000,
            seed: 0x5A17,
            ridge: 1e-9,
        }
    }
}

/// Estimates Shapley values of the Boolean set function `f` over facts
/// `0..n` with Kernel SHAP.
pub fn kernel_shap(f: &impl Fn(&Bitset) -> bool, n: usize, cfg: &KernelShapConfig) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let empty = f(&Bitset::new(n)) as u8 as f64;
    let mut all = Bitset::new(n);
    for i in 0..n {
        all.insert(i);
    }
    let full = f(&all) as u8 as f64;
    let delta = full - empty;
    if n == 1 {
        return vec![delta];
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Shapley-kernel size distribution over 1..=n-1.
    let sizes: Vec<usize> = (1..n).collect();
    let kernel_weights: Vec<f64> = sizes
        .iter()
        .map(|&s| (n - 1) as f64 / (s as f64 * (n - s) as f64))
        .collect();

    // Regression with φ_{n-1} eliminated: unknowns φ_0..φ_{n-2}.
    let d = n - 1;
    let mut ata = vec![vec![0.0f64; d]; d];
    let mut atb = vec![0.0f64; d];
    let mut set = Bitset::new(n);
    let mut row = vec![0.0f64; d];
    for _ in 0..cfg.samples.max(1) {
        let s = *sizes
            .choose_weighted(&mut rng, |&sz| kernel_weights[sz - 1])
            .expect("non-empty size table");
        // Random coalition of size s (Floyd's algorithm keeps it O(s)).
        set.clear();
        for j in (n - s)..n {
            let t = rng.random_range(0..=j);
            if set.contains(t) {
                set.insert(j);
            } else {
                set.insert(t);
            }
        }
        let y = f(&set) as u8 as f64;
        let z_last = set.contains(n - 1) as u8 as f64;
        let target = y - empty - z_last * delta;
        for (i, r) in row.iter_mut().enumerate() {
            *r = (set.contains(i) as u8 as f64) - z_last;
        }
        for i in 0..d {
            if row[i] == 0.0 {
                continue;
            }
            for j in 0..d {
                ata[i][j] += row[i] * row[j];
            }
            atb[i] += row[i] * target;
        }
    }
    for (i, r) in ata.iter_mut().enumerate() {
        r[i] += cfg.ridge;
    }
    let phi_head = solve_f64(ata, atb).unwrap_or_else(|| vec![0.0; d]);
    let mut phi = phi_head;
    let head_sum: f64 = phi.iter().sum();
    phi.push(delta - head_sum);
    phi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::shapley_naive;
    use shapdb_circuit::{Dnf, VarId};

    fn running_example_dnf() -> Dnf {
        let mut d = Dnf::new();
        d.add_conjunct(vec![VarId(0)]);
        for pair in [[1u32, 3], [1, 4], [2, 3], [2, 4], [5, 6]] {
            d.add_conjunct(pair.iter().map(|&v| VarId(v)).collect());
        }
        d
    }

    #[test]
    fn approximates_exact_values() {
        let d = running_example_dnf();
        let f = |s: &Bitset| d.eval_set(s);
        let exact: Vec<f64> = shapley_naive(&f, 8).iter().map(|r| r.to_f64()).collect();
        let cfg = KernelShapConfig {
            samples: 40_000,
            seed: 17,
            ..Default::default()
        };
        let est = kernel_shap(&f, 8, &cfg);
        for (i, (e, x)) in est.iter().zip(&exact).enumerate() {
            assert!((e - x).abs() < 0.05, "fact {i}: est {e} vs exact {x}");
        }
    }

    #[test]
    fn efficiency_constraint_holds_exactly() {
        let d = running_example_dnf();
        let f = |s: &Bitset| d.eval_set(s);
        let cfg = KernelShapConfig {
            samples: 500,
            seed: 3,
            ..Default::default()
        };
        let est = kernel_shap(&f, 8, &cfg);
        let total: f64 = est.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "Σφ must equal h(1⃗)−h(0⃗)");
    }

    #[test]
    fn single_fact_is_exact() {
        let f = |s: &Bitset| s.contains(0);
        let est = kernel_shap(&f, 1, &KernelShapConfig::default());
        assert_eq!(est, vec![1.0]);
    }

    #[test]
    fn two_symmetric_facts() {
        // f = x0 ∧ x1: exact values are 1/2 each. With only size-1 coalitions
        // available, the estimate is count({1})/count(total) — binomially
        // distributed around 1/2, so allow sampling noise.
        let f = |s: &Bitset| s.contains(0) && s.contains(1);
        let cfg = KernelShapConfig {
            samples: 4000,
            seed: 5,
            ..Default::default()
        };
        let est = kernel_shap(&f, 2, &cfg);
        assert!((est[0] - 0.5).abs() < 0.05, "got {}", est[0]);
        assert!((est[1] - 0.5).abs() < 0.05, "got {}", est[1]);
        assert!((est[0] + est[1] - 1.0).abs() < 1e-9, "efficiency is exact");
    }

    #[test]
    fn constant_game_gives_zeros() {
        let f = |_: &Bitset| true;
        let est = kernel_shap(&f, 4, &KernelShapConfig::default());
        assert!(est.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn empty_game() {
        let f = |_: &Bitset| false;
        assert!(kernel_shap(&f, 0, &KernelShapConfig::default()).is_empty());
    }
}
