//! Ground-truth Shapley computation by subset enumeration.
//!
//! Two independent `O(2ⁿ)` implementations of the definition:
//!
//! * [`shapley_naive`] evaluates Equation (1) literally — a weighted sum of
//!   marginal contributions over every coalition `E ⊆ D_n \ {f}`;
//! * [`shapley_naive_by_slices`] evaluates Equation (2) — grouping coalitions
//!   by size into `#Slices` counts first.
//!
//! Both take the endogenous lineage as a black-box set function, so they are
//! usable on any query (not only UCQs). They exist to validate Algorithm 1,
//! the Proposition 3.1 reduction, and the sampling baselines on small
//! instances; anything beyond ~20 facts should use the real algorithms.

use crate::exact::ShapleyTimeout;
use shapdb_num::{
    combinatorics::{binomial, shapley_coefficient, FactorialTable},
    BigInt, BigUint, Bitset, Rational,
};
use std::time::Instant;

/// How many enumeration steps run between cooperative deadline checks.
const DEADLINE_STRIDE: u64 = 4096;

fn mask_to_bitset(mask: u64, n: usize) -> Bitset {
    let mut b = Bitset::new(n.max(1));
    for i in 0..n {
        if mask >> i & 1 == 1 {
            b.insert(i);
        }
    }
    b
}

/// Exact Shapley value of every fact `0..n` of a Boolean set function, via
/// Equation (1). Panics if `n > 25` (2^25 evaluations is the sanity limit).
pub fn shapley_naive(f: &impl Fn(&Bitset) -> bool, n: usize) -> Vec<Rational> {
    shapley_naive_deadline(f, n, None).expect("no deadline to exceed")
}

/// [`shapley_naive`] under a cooperative wall-clock deadline, checked every
/// few thousand subsets — the `O(2ⁿ)` enumeration is exactly the kind of
/// engine a per-lineage timeout must be able to interrupt.
pub fn shapley_naive_deadline(
    f: &impl Fn(&Bitset) -> bool,
    n: usize,
    deadline: Option<Instant>,
) -> Result<Vec<Rational>, ShapleyTimeout> {
    assert!(n <= 25, "naive enumeration limited to 25 facts");
    if n == 0 {
        return Ok(Vec::new());
    }
    let expired = |mask: u64| -> bool {
        mask.is_multiple_of(DEADLINE_STRIDE) && deadline.is_some_and(|d| Instant::now() >= d)
    };
    let mut facts = FactorialTable::new();
    // Precompute f on all subsets once: 2^n evaluations.
    let mut evals: Vec<bool> = Vec::with_capacity(1usize << n);
    for mask in 0u64..(1 << n) {
        if expired(mask) {
            return Err(ShapleyTimeout);
        }
        evals.push(f(&mask_to_bitset(mask, n)));
    }
    let mut out = Vec::with_capacity(n);
    for target in 0..n {
        let mut value = Rational::zero();
        let bit = 1u64 << target;
        for mask in 0u64..(1 << n) {
            if expired(mask) {
                return Err(ShapleyTimeout);
            }
            if mask & bit != 0 {
                continue;
            }
            let with = evals[(mask | bit) as usize];
            let without = evals[mask as usize];
            if with == without {
                continue;
            }
            let k = mask.count_ones() as usize;
            let coeff = shapley_coefficient(n, k, &mut facts);
            if with {
                value += &coeff;
            } else {
                value += &(-coeff);
            }
        }
        out.push(value);
    }
    Ok(out)
}

/// Exact Shapley values via Equation (2): `#Slices` grouped by coalition
/// size. Must agree with [`shapley_naive`]; kept as an independent oracle.
pub fn shapley_naive_by_slices(f: &impl Fn(&Bitset) -> bool, n: usize) -> Vec<Rational> {
    assert!(n <= 25, "naive enumeration limited to 25 facts");
    if n == 0 {
        return Vec::new();
    }
    let mut facts = FactorialTable::new();
    let evals: Vec<bool> = (0u64..(1 << n))
        .map(|mask| f(&mask_to_bitset(mask, n)))
        .collect();
    let mut out = Vec::with_capacity(n);
    for target in 0..n {
        let bit = 1u64 << target;
        // #Slices(q, Dx ∪ {f}, Dn \ {f}, k) and #Slices(q, Dx, Dn \ {f}, k).
        let mut with = vec![BigUint::zero(); n];
        let mut without = vec![BigUint::zero(); n];
        for mask in 0u64..(1 << n) {
            if mask & bit != 0 {
                continue;
            }
            let k = mask.count_ones() as usize;
            if evals[(mask | bit) as usize] {
                with[k] += &BigUint::one();
            }
            if evals[mask as usize] {
                without[k] += &BigUint::one();
            }
        }
        let mut value = Rational::zero();
        for k in 0..n {
            let coeff = shapley_coefficient(n, k, &mut facts);
            let diff = Rational::from_bigint(
                BigInt::from_biguint(with[k].clone()) - BigInt::from_biguint(without[k].clone()),
            );
            value += &(&coeff * &diff);
        }
        out.push(value);
    }
    out
}

/// Exact Shapley value of every player `0..n` of a *real-valued* cooperative
/// game, via the definition. The generalization of [`shapley_naive`] used to
/// validate aggregate games (COUNT/SUM over query answers), where the wealth
/// is no longer 0/1.
pub fn shapley_naive_game(game: &impl Fn(&Bitset) -> Rational, n: usize) -> Vec<Rational> {
    assert!(n <= 25, "naive enumeration limited to 25 facts");
    if n == 0 {
        return Vec::new();
    }
    let mut facts = FactorialTable::new();
    let evals: Vec<Rational> = (0u64..(1 << n))
        .map(|mask| game(&mask_to_bitset(mask, n)))
        .collect();
    let mut out = Vec::with_capacity(n);
    for target in 0..n {
        let mut value = Rational::zero();
        let bit = 1u64 << target;
        for mask in 0u64..(1 << n) {
            if mask & bit != 0 {
                continue;
            }
            let marginal = &evals[(mask | bit) as usize] - &evals[mask as usize];
            if marginal.is_zero() {
                continue;
            }
            let k = mask.count_ones() as usize;
            value += &(&shapley_coefficient(n, k, &mut facts) * &marginal);
        }
        out.push(value);
    }
    out
}

/// Exact `#SAT_k` of a set function by enumeration (test oracle for the
/// Algorithm 1 dynamic program).
pub fn sat_k_bruteforce(f: &impl Fn(&Bitset) -> bool, n: usize) -> Vec<BigUint> {
    assert!(n <= 25);
    let mut out = vec![BigUint::zero(); n + 1];
    for mask in 0u64..(1 << n) {
        if f(&mask_to_bitset(mask, n)) {
            out[mask.count_ones() as usize] += &BigUint::one();
        }
    }
    out
}

/// The efficiency axiom's right-hand side: `q(D_n ∪ D_x) − q(D_x)` as a
/// rational (−1, 0, or 1 for Boolean queries).
pub fn efficiency_rhs(f: &impl Fn(&Bitset) -> bool, n: usize) -> Rational {
    let mut all = Bitset::new(n.max(1));
    for i in 0..n {
        all.insert(i);
    }
    let full = f(&all);
    let empty = f(&Bitset::new(n.max(1)));
    Rational::from_int(i64::from(full) - i64::from(empty))
}

/// Sanity helper used in tests: `C(n, k)` as `u64`.
pub fn small_binomial(n: usize, k: usize) -> u64 {
    binomial(n, k).to_u64().expect("binomial fits u64 in tests")
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // parallel-array comparisons read better indexed
mod tests {
    use super::*;
    use proptest::prelude::*;
    use shapdb_circuit::{Dnf, VarId};

    /// The running example's endogenous lineage (Example 4.2), with dense
    /// variables a1..a8 → 0..7 (a8 = 7 does not occur).
    fn running_example() -> (Dnf, usize) {
        let mut d = Dnf::new();
        d.add_conjunct(vec![VarId(0)]);
        for pair in [[1u32, 3], [1, 4], [2, 3], [2, 4], [5, 6]] {
            d.add_conjunct(pair.iter().map(|&v| VarId(v)).collect());
        }
        (d, 8)
    }

    #[test]
    fn example_2_1_values() {
        let (d, n) = running_example();
        let f = |s: &Bitset| d.eval_set(s);
        let values = shapley_naive(&f, n);
        assert_eq!(values[0], Rational::from_ratio(43, 105), "a1");
        for i in [1usize, 2, 3, 4] {
            assert_eq!(values[i], Rational::from_ratio(23, 210), "a{}", i + 1);
        }
        for i in [5usize, 6] {
            assert_eq!(values[i], Rational::from_ratio(8, 105), "a{}", i + 1);
        }
        assert_eq!(values[7], Rational::zero(), "a8 is a null player");
    }

    #[test]
    fn example_q2_values() {
        // Example 5.3: for q2 alone, Shapley = 11/60 for a2..a5, 2/15 for a6,a7.
        let mut d = Dnf::new();
        for pair in [[0u32, 2], [0, 3], [1, 2], [1, 3], [4, 5]] {
            d.add_conjunct(pair.iter().map(|&v| VarId(v)).collect());
        }
        let f = |s: &Bitset| d.eval_set(s);
        let values = shapley_naive(&f, 6);
        for i in 0..4 {
            assert_eq!(values[i], Rational::from_ratio(11, 60));
        }
        assert_eq!(values[4], Rational::from_ratio(2, 15));
        assert_eq!(values[5], Rational::from_ratio(2, 15));
    }

    #[test]
    fn slices_variant_agrees() {
        let (d, n) = running_example();
        let f = |s: &Bitset| d.eval_set(s);
        assert_eq!(shapley_naive(&f, n), shapley_naive_by_slices(&f, n));
    }

    #[test]
    fn efficiency_axiom_on_example() {
        let (d, n) = running_example();
        let f = |s: &Bitset| d.eval_set(s);
        let values = shapley_naive(&f, n);
        let mut total = Rational::zero();
        for v in &values {
            total += v;
        }
        assert_eq!(total, efficiency_rhs(&f, n));
        assert_eq!(total, Rational::one());
    }

    #[test]
    fn sat_k_of_or() {
        // x0 ∨ x1 over 2 vars: #SAT_0=0, #SAT_1=2, #SAT_2=1.
        let f = |s: &Bitset| s.contains(0) || s.contains(1);
        let k = sat_k_bruteforce(&f, 2);
        assert_eq!(
            k.iter().map(|c| c.to_u64().unwrap()).collect::<Vec<_>>(),
            vec![0, 2, 1]
        );
    }

    #[test]
    fn single_fact_game() {
        let f = |s: &Bitset| s.contains(0);
        let v = shapley_naive(&f, 1);
        assert_eq!(v, vec![Rational::one()]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_equations_1_and_2_agree(
            conjuncts in proptest::collection::vec(
                proptest::collection::vec(0u32..6, 1..4), 1..5)
        ) {
            let mut d = Dnf::new();
            for c in &conjuncts {
                d.add_conjunct(c.iter().map(|&v| VarId(v)).collect());
            }
            let f = |s: &Bitset| d.eval_set(s);
            let a = shapley_naive(&f, 6);
            let b = shapley_naive_by_slices(&f, 6);
            prop_assert_eq!(a.clone(), b);
            // Efficiency axiom.
            let mut total = Rational::zero();
            for v in &a { total += v; }
            prop_assert_eq!(total, efficiency_rhs(&f, 6));
        }
    }
}
