//! Exact SHAP-scores over d-DNNF lineages (Arenas, Barceló, Bertossi &
//! Monet, AAAI 2021).
//!
//! §6.2 of the paper compares its Shapley values against *Kernel SHAP*, the
//! sampling estimator of the SHAP-score. The SHAP-score itself — the
//! game-theoretic attribution used in machine learning — is a *different*
//! quantity from the Shapley value of facts: its game is the conditional
//! expectation `h_ē(S) = E[h(z) | z_S = ē_S]` under a product distribution,
//! not the query's value on a sub-database. Arenas et al. showed it is
//! computable in polynomial time over deterministic and decomposable
//! circuits; this module implements that algorithm, giving the repository
//! both attribution notions exactly:
//!
//! * `probs[i] = 0` for all `i` reproduces the paper's §6.2 adaptation
//!   (background = 0⃗): `h_ē(S) = h(1_S)`, so the SHAP-score *equals* the
//!   Shapley value of the lineage — a strong cross-check of Algorithm 1 and
//!   the yardstick Kernel SHAP is actually estimating;
//! * general `probs` connects to probabilistic databases: the features stay
//!   fixed where observed and are resampled from the TID marginals
//!   elsewhere.
//!
//! The dynamic program mirrors Algorithm 1's `#SAT_k` tables with
//! probability-weighted rational entries
//! `β_g[ℓ] = Σ_{S ⊆ Vars(g), |S| = ℓ} Pr[g | S fixed to 1]`:
//! literals seed `[p, 1]` / `[1−p, 0]`, decomposable `∧` convolves,
//! deterministic `∨` adds with binomial gap-expansion, and for each fact `x`
//! the score is `(1 − p_x) · Σ_j (β¹[j] − β⁰[j]) · j!(m−1−j)!/m!` — the
//! `Γ − Δ = (1−p_x)(β¹ − β⁰)` identity folding the "x unfixed" mixture.

use crate::readonce::shap_read_once;
use shapdb_circuit::{factor, Circuit, Dnf, VarId};
use shapdb_kc::{compile_circuit, Budget, DNode, Ddnnf};
use shapdb_num::{
    combinatorics::{BinomialTable, FactorialTable},
    Bitset, Rational,
};

/// Per-gate `β` arrays for one pass.
type Betas = Vec<Vec<Rational>>;

struct ShapDp<'a> {
    d: &'a Ddnnf,
    sets: Vec<Bitset>,
    probs: &'a [Rational],
    binomials: BinomialTable,
}

impl<'a> ShapDp<'a> {
    fn new(d: &'a Ddnnf, probs: &'a [Rational]) -> ShapDp<'a> {
        ShapDp {
            d,
            sets: d.var_sets(),
            probs,
            binomials: BinomialTable::new(),
        }
    }

    fn size(&self, g: usize, cond_var: Option<usize>) -> usize {
        let mut s = self.sets[g].len();
        if let Some(v) = cond_var {
            if self.sets[g].contains(v) {
                s -= 1;
            }
        }
        s
    }

    fn gate_beta(
        &mut self,
        g: usize,
        cond: Option<(usize, bool)>,
        child_beta: &impl Fn(usize) -> Vec<Rational>,
    ) -> Vec<Rational> {
        let cond_var = cond.map(|(v, _)| v);
        match &self.d.nodes()[g] {
            DNode::True => vec![Rational::one()],
            DNode::False => vec![Rational::zero()],
            DNode::Lit(l) => {
                if let Some((v, b)) = cond {
                    if l.var() == v {
                        return if l.satisfied_by(b) {
                            vec![Rational::one()]
                        } else {
                            vec![Rational::zero()]
                        };
                    }
                }
                let p = self.probs[l.var()].clone();
                if l.is_positive() {
                    // ℓ=0: Pr[y=1] = p; ℓ=1 (y fixed to 1): satisfied.
                    vec![p, Rational::one()]
                } else {
                    // ℓ=0: Pr[y=0] = 1−p; ℓ=1 (y fixed to 1): falsified.
                    vec![&Rational::one() - &p, Rational::zero()]
                }
            }
            DNode::And(cs) => {
                let mut acc = vec![Rational::one()];
                for c in cs.iter() {
                    let cb = child_beta(c.index());
                    let mut next = vec![Rational::zero(); acc.len() + cb.len() - 1];
                    for (i, ai) in acc.iter().enumerate() {
                        if ai.is_zero() {
                            continue;
                        }
                        for (j, cj) in cb.iter().enumerate() {
                            if cj.is_zero() {
                                continue;
                            }
                            next[i + j] += &(ai * cj);
                        }
                    }
                    acc = next;
                }
                acc
            }
            DNode::Or(cs, _) => {
                let sz = self.size(g, cond_var);
                let mut acc = vec![Rational::zero(); sz + 1];
                for c in cs.iter() {
                    let csz = self.size(c.index(), cond_var);
                    let gap = sz - csz;
                    let cb = child_beta(c.index());
                    debug_assert_eq!(cb.len(), csz + 1);
                    let row = self.binomials.row(gap).to_vec();
                    for (i, ci) in cb.iter().enumerate() {
                        if ci.is_zero() {
                            continue;
                        }
                        for (dgap, b) in row.iter().enumerate() {
                            acc[i + dgap] += &(ci * &Rational::from_biguint(b.clone()));
                        }
                    }
                }
                acc
            }
        }
    }

    fn base_pass(&mut self) -> Betas {
        let mut betas: Betas = Vec::with_capacity(self.d.len());
        for g in 0..self.d.len() {
            let b = {
                let prefix = &betas;
                let lookup = |c: usize| prefix[c].clone();
                self.gate_beta_detached(g, None, &lookup)
            };
            betas.push(b);
        }
        betas
    }

    fn gate_beta_detached(
        &mut self,
        g: usize,
        cond: Option<(usize, bool)>,
        child_beta: &impl Fn(usize) -> Vec<Rational>,
    ) -> Vec<Rational> {
        self.gate_beta(g, cond, child_beta)
    }

    /// Conditioned pass for `(f → b)`, recomputing only the gates whose
    /// variable set contains `f`.
    fn conditioned_root(&mut self, f: usize, b: bool, base: &Betas) -> Vec<Rational> {
        let root = self.d.root().index();
        let n_nodes = self.d.len();
        let mut cond: Vec<Option<Vec<Rational>>> = vec![None; n_nodes];
        for g in 0..n_nodes {
            if !self.sets[g].contains(f) {
                continue;
            }
            let a = {
                let cond_ref = &cond;
                let lookup = |c: usize| match &cond_ref[c] {
                    Some(v) => v.clone(),
                    None => base[c].clone(),
                };
                self.gate_beta_detached(g, Some((f, b)), &lookup)
            };
            cond[g] = Some(a);
        }
        match cond[root].take() {
            Some(v) => v,
            None => base[root].clone(),
        }
    }
}

/// Exact SHAP-score of every d-DNNF variable for the instance `ē = 1⃗` under
/// the product distribution with marginals `probs` (`probs[i] = Pr[zᵢ = 1]`).
///
/// Returns one value per variable `0..d.num_vars()`. Variables absent from
/// the circuit are dummies with score 0. With `probs ≡ 0`, the result equals
/// the Shapley values of the lineage (the §6.2 setting Kernel SHAP
/// estimates).
pub fn shap_scores(d: &Ddnnf, probs: &[Rational]) -> Vec<Rational> {
    let num_vars = d.num_vars();
    assert_eq!(probs.len(), num_vars, "one marginal per variable required");
    let mut out = vec![Rational::zero(); num_vars];
    if num_vars == 0 {
        return out;
    }
    let mut dp = ShapDp::new(d, probs);
    let root = d.root().index();
    let root_vars = dp.sets[root].clone();
    let m = root_vars.len();
    if m == 0 {
        return out; // constant lineage: every feature is a dummy
    }
    let mut facts_table = FactorialTable::new();
    let weights = crate::weights::completion_weights(m, &mut facts_table);
    let denom = facts_table.get(m).clone();
    let base = dp.base_pass();

    for f in root_vars.iter() {
        let beta1 = dp.conditioned_root(f, true, &base);
        let beta0 = dp.conditioned_root(f, false, &base);
        debug_assert_eq!(beta1.len(), m);
        debug_assert_eq!(beta0.len(), m);
        // Γ − Δ = (1 − p_f) · (β¹ − β⁰), folded into the weighted sum.
        let mut numer = Rational::zero();
        for j in 0..m {
            let diff = &beta1[j] - &beta0[j];
            if diff.is_zero() {
                continue;
            }
            numer += &(&diff * &Rational::from_biguint(weights[j].clone()));
        }
        let one_minus_p = &Rational::one() - &probs[f];
        out[f] = &(&numer * &one_minus_p) / &Rational::from_biguint(denom.clone());
    }
    out
}

/// Exact SHAP-score of every fact of a monotone DNF lineage under the
/// uniform product background with marginal `p` per feature.
///
/// Absorption-minimizes the lineage first — the uniform null-player
/// semantics every Shapley engine enforces (an absorbed conjunct can name a
/// dummy feature, and unminimized inputs defeat the syntactic read-once
/// factoring) — then evaluates through the read-once β-DP when the
/// minimized lineage factors, falling back to knowledge compilation plus
/// [`shap_scores`] otherwise. Returns `(fact, value)` pairs sorted by
/// decreasing value (ties by fact id), one per variable of the minimized
/// lineage.
pub fn shap_scores_from_lineage(lineage: &Dnf, p: &Rational) -> Vec<(VarId, Rational)> {
    let mut min = lineage.clone();
    min.minimize();
    let n_vars = min.vars().len();
    let mut out = if let Some(tree) = factor(&min) {
        shap_read_once(&tree, n_vars, None, p).expect("no deadline set")
    } else {
        let mut c = Circuit::new();
        let root = min.to_circuit(&mut c);
        let comp = compile_circuit(&c, root, &Budget::unlimited()).expect("unlimited budget");
        let probs = vec![p.clone(); comp.ddnnf.num_vars()];
        let values = shap_scores(&comp.ddnnf, &probs);
        comp.fact_vars
            .iter()
            .zip(values)
            .map(|(&v, r)| (v, r))
            .collect()
    };
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Brute-force SHAP-score oracle (`O(4ⁿ)`), for validation on small inputs.
pub fn shap_naive(f: &impl Fn(&Bitset) -> bool, probs: &[Rational]) -> Vec<Rational> {
    let n = probs.len();
    assert!(n <= 12, "naive SHAP limited to 12 features");
    if n == 0 {
        return Vec::new();
    }
    // h_ē(S) = Σ_{T ⊆ X∖S} Π_{t∈T} p_t Π_{t∉T,∉S} (1−p_t) · f(S ∪ T).
    let cond_exp = |s_mask: u64| -> Rational {
        let mut total = Rational::zero();
        let free: Vec<usize> = (0..n).filter(|i| s_mask >> i & 1 == 0).collect();
        for t_sel in 0u64..(1 << free.len()) {
            let mut weight = Rational::one();
            let mut world = s_mask;
            for (bit, &var) in free.iter().enumerate() {
                if t_sel >> bit & 1 == 1 {
                    weight = &weight * &probs[var];
                    world |= 1 << var;
                } else {
                    weight = &weight * &(&Rational::one() - &probs[var]);
                }
            }
            if weight.is_zero() {
                continue;
            }
            let mut set = Bitset::new(n);
            for i in 0..n {
                if world >> i & 1 == 1 {
                    set.insert(i);
                }
            }
            if f(&set) {
                total += &weight;
            }
        }
        total
    };
    let mut facts = FactorialTable::new();
    let mut out = Vec::with_capacity(n);
    for x in 0..n {
        let bit = 1u64 << x;
        let mut value = Rational::zero();
        for mask in 0u64..(1 << n) {
            if mask & bit != 0 {
                continue;
            }
            let k = mask.count_ones() as usize;
            let coeff = shapdb_num::combinatorics::shapley_coefficient(n, k, &mut facts);
            let marginal = &cond_exp(mask | bit) - &cond_exp(mask);
            if marginal.is_zero() {
                continue;
            }
            value += &(&coeff * &marginal);
        }
        out.push(value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{shapley_all_facts, ExactConfig};
    use proptest::prelude::*;
    use shapdb_circuit::{Circuit, Dnf, VarId};
    use shapdb_kc::{compile_circuit, Budget};

    /// Compiles a DNF over dense vars `0..n` into a d-DNNF in that space.
    fn compile_dnf(d: &Dnf, n: usize) -> Ddnnf {
        use shapdb_circuit::Lit;
        use shapdb_kc::DNode;
        let mut c = Circuit::new();
        let root = d.to_circuit(&mut c);
        let comp = compile_circuit(&c, root, &Budget::unlimited()).unwrap();
        let mapping: Vec<usize> = comp.fact_vars.iter().map(|v| v.index()).collect();
        let nodes = comp
            .ddnnf
            .nodes()
            .iter()
            .map(|nd| match nd {
                DNode::Lit(l) => {
                    let v = mapping[l.var()];
                    DNode::Lit(if l.is_positive() {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    })
                }
                other => other.clone(),
            })
            .collect();
        Ddnnf::new(nodes, comp.ddnnf.root(), n)
    }

    fn running_example_dnf() -> Dnf {
        let mut d = Dnf::new();
        d.add_conjunct(vec![VarId(0)]);
        for pair in [[1u32, 3], [1, 4], [2, 3], [2, 4], [5, 6]] {
            d.add_conjunct(pair.iter().map(|&v| VarId(v)).collect());
        }
        d
    }

    #[test]
    fn zero_background_equals_shapley() {
        // probs ≡ 0 is exactly the §6.2 adaptation: SHAP-score = Shapley.
        let dnf = running_example_dnf();
        let dd = compile_dnf(&dnf, 7);
        let probs = vec![Rational::zero(); 7];
        let shap = shap_scores(&dd, &probs);
        let shapley = shapley_all_facts(&dd, 7, &ExactConfig::default()).unwrap();
        assert_eq!(shap, shapley);
        assert_eq!(shap[0], Rational::from_ratio(43, 105));
    }

    #[test]
    fn matches_bruteforce_with_uniform_marginals() {
        let dnf = running_example_dnf();
        let dd = compile_dnf(&dnf, 7);
        let probs = vec![Rational::from_ratio(1, 2); 7];
        let shap = shap_scores(&dd, &probs);
        let expect = shap_naive(&|s| dnf.eval_set(s), &probs);
        assert_eq!(shap, expect);
    }

    #[test]
    fn matches_bruteforce_with_skewed_marginals() {
        let mut d = Dnf::new();
        d.add_conjunct(vec![VarId(0), VarId(1)]);
        d.add_conjunct(vec![VarId(2)]);
        let dd = compile_dnf(&d, 3);
        let probs = vec![
            Rational::from_ratio(1, 3),
            Rational::from_ratio(3, 4),
            Rational::from_ratio(1, 10),
        ];
        let shap = shap_scores(&dd, &probs);
        let expect = shap_naive(&|s| d.eval_set(s), &probs);
        assert_eq!(shap, expect);
    }

    #[test]
    fn from_lineage_minimizes_before_evaluating() {
        // Absorbed conjunct naming a dummy feature x3: unminimized input
        // must produce the same scores as the minimized lineage.
        let mut raw = Dnf::new();
        raw.add_conjunct(vec![VarId(0)]);
        raw.add_conjunct(vec![VarId(0), VarId(3)]);
        raw.add_conjunct(vec![VarId(1), VarId(2)]);
        let mut min = raw.clone();
        min.minimize();
        let half = Rational::from_ratio(1, 2);
        let got_raw = shap_scores_from_lineage(&raw, &half);
        let got_min = shap_scores_from_lineage(&min, &half);
        assert_eq!(got_raw, got_min);
        assert!(got_raw.iter().all(|(v, _)| *v != VarId(3)));
        let expect = shap_naive(&|s: &Bitset| raw.eval_set(s), &vec![half.clone(); 3]);
        for (v, r) in &got_raw {
            assert_eq!(r, &expect[v.index()], "var {}", v.0);
        }
    }

    #[test]
    fn from_lineage_falls_back_to_compilation() {
        // Non-read-once minimized lineage: (x0x1)∨(x1x2)∨(x0x2).
        let mut d = Dnf::new();
        d.add_conjunct(vec![VarId(0), VarId(1)]);
        d.add_conjunct(vec![VarId(1), VarId(2)]);
        d.add_conjunct(vec![VarId(0), VarId(2)]);
        let half = Rational::from_ratio(1, 2);
        let got = shap_scores_from_lineage(&d, &half);
        let expect = shap_naive(&|s: &Bitset| d.eval_set(s), &vec![half.clone(); 3]);
        assert_eq!(got.len(), 3);
        for (v, r) in &got {
            assert_eq!(r, &expect[v.index()], "var {}", v.0);
        }
    }

    #[test]
    fn efficiency_axiom_for_shap() {
        // Σ_x SHAP(x) = h(ē) − E[h] = 1 − WMC(probs) here.
        let dnf = running_example_dnf();
        let dd = compile_dnf(&dnf, 7);
        let probs: Vec<Rational> = (0..7)
            .map(|i| Rational::from_ratio(i as i64 + 1, 10))
            .collect();
        let shap = shap_scores(&dd, &probs);
        let total = shap.iter().fold(Rational::zero(), |acc, v| &acc + v);
        let expected_h = dd.probability_rational(&probs);
        assert_eq!(total, &Rational::one() - &expected_h);
    }

    #[test]
    fn all_ones_marginals_give_zero_scores() {
        // If every feature is already deterministically 1, fixing adds
        // nothing: every marginal contribution is 0.
        let dnf = running_example_dnf();
        let dd = compile_dnf(&dnf, 7);
        let probs = vec![Rational::one(); 7];
        let shap = shap_scores(&dd, &probs);
        assert!(shap.iter().all(|v| v.is_zero()));
    }

    #[test]
    fn dummy_variable_scores_zero() {
        let mut d = Dnf::new();
        d.add_conjunct(vec![VarId(0)]);
        let dd = compile_dnf(&d, 3); // vars 1, 2 are dummies
        let probs = vec![Rational::from_ratio(1, 4); 3];
        let shap = shap_scores(&dd, &probs);
        assert!(!shap[0].is_zero());
        assert!(shap[1].is_zero());
        assert!(shap[2].is_zero());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_dp_matches_bruteforce(
            conjuncts in proptest::collection::vec(
                proptest::collection::vec(0u32..5, 1..3), 1..4),
            nums in proptest::collection::vec(0i64..=4, 5),
        ) {
            let mut d = Dnf::new();
            for c in &conjuncts {
                d.add_conjunct(c.iter().map(|&v| VarId(v)).collect());
            }
            let n = 5usize;
            let probs: Vec<Rational> =
                nums.iter().map(|&p| Rational::from_ratio(p, 4)).collect();
            let dd = compile_dnf(&d, n);
            let got = shap_scores(&dd, &probs);
            let expect = shap_naive(&|s| d.eval_set(s), &probs);
            prop_assert_eq!(got, expect);
        }
    }
}
