//! The attribution measure a request asks for.
//!
//! The paper computes the *Shapley value* of facts (Equation (1)); its
//! related-work section situates it among the other responsibility measures
//! the literature applies to query answers — the Banzhaf value / causal
//! effect [24, 30], causal responsibility (Meliou et al.), and the ML-side
//! SHAP-score (Arenas et al.). All four are computable from the same
//! compiled structure (a read-once factorization or a d-DNNF), so the engine
//! treats the measure as a *request dimension*: one fingerprint, one
//! compile, four answers.
//!
//! | measure        | weighting over the conditioned `Γ/Δ` arrays          |
//! |----------------|------------------------------------------------------|
//! | Shapley        | `j!(m−1−j)! / m!` (permutation weights)              |
//! | Banzhaf        | `1 / 2^(m−1)` (uniform weights)                      |
//! | Responsibility | none — `1/(1 + min contingency)` on the minimized DNF|
//! | SHAP-score     | Shapley weights over probability-weighted `β` arrays |
//!
//! The engine's SHAP-score fixes the background product distribution at the
//! uniform `p = ½` per feature (the tuple-independent probabilistic-database
//! view). The paper's §6.2 ML adaptation uses background `0⃗`, under which
//! the SHAP-score *equals* the Shapley value — that setting is the
//! `Shapley` measure itself (and [`crate::shap_score::shap_scores`] with
//! `probs ≡ 0` for arbitrary backgrounds).

use std::fmt;

/// Which attribution a task computes. Defaults to [`Measure::Shapley`], the
/// paper's primary notion; every pre-measure API is unchanged under the
/// default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Measure {
    /// The Shapley value of facts (Equation (1) of the paper).
    #[default]
    Shapley,
    /// The Banzhaf value (uniform coalition weights; equals the causal
    /// effect of Salimi et al. for Boolean games).
    Banzhaf,
    /// Causal responsibility `ρ(f) = 1/(1 + min |Γ|)` (Meliou et al.).
    Responsibility,
    /// The SHAP-score of Arenas et al. under the uniform `p = ½` product
    /// background distribution.
    ShapScore,
}

impl Measure {
    /// Every supported measure, in protocol-tag order.
    pub const ALL: [Measure; 4] = [
        Measure::Shapley,
        Measure::Banzhaf,
        Measure::Responsibility,
        Measure::ShapScore,
    ];

    /// Stable protocol name (used by `--measure`, the JSONL `"measure"`
    /// field, and the persist log).
    pub fn name(self) -> &'static str {
        match self {
            Measure::Shapley => "shapley",
            Measure::Banzhaf => "banzhaf",
            Measure::Responsibility => "responsibility",
            Measure::ShapScore => "shap-score",
        }
    }

    /// Parses a protocol name (accepts `_` for `-`). `None` for unknown
    /// strings — boundaries turn that into their own error shape.
    pub fn parse(s: &str) -> Option<Measure> {
        match s {
            "shapley" => Some(Measure::Shapley),
            "banzhaf" => Some(Measure::Banzhaf),
            "responsibility" => Some(Measure::Responsibility),
            "shap-score" | "shap_score" => Some(Measure::ShapScore),
            _ => None,
        }
    }

    /// True for the two power indices computed by the Algorithm-1 DP with a
    /// swapped weight vector (Shapley and Banzhaf).
    pub fn is_power_index(self) -> bool {
        matches!(self, Measure::Shapley | Measure::Banzhaf)
    }
}

impl fmt::Display for Measure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for m in Measure::ALL {
            assert_eq!(Measure::parse(m.name()), Some(m));
            assert_eq!(m.to_string(), m.name());
        }
        assert_eq!(Measure::parse("shap_score"), Some(Measure::ShapScore));
        assert_eq!(Measure::parse("SHAPLEY"), None);
        assert_eq!(Measure::parse(""), None);
    }

    #[test]
    fn default_is_shapley() {
        assert_eq!(Measure::default(), Measure::Shapley);
        assert!(Measure::Shapley.is_power_index());
        assert!(Measure::Banzhaf.is_power_index());
        assert!(!Measure::Responsibility.is_power_index());
        assert!(!Measure::ShapScore.is_power_index());
    }
}
