//! Monte Carlo permutation sampling for Shapley values.
//!
//! The classical estimator of Mann & Shapley (1960), used by the paper as
//! the first inexact baseline (§6.2): sample `r` permutations of the facts
//! and average each fact's marginal contribution at its position, giving a
//! budget of `r·n` evaluations of the lineage.
//!
//! [`monte_carlo_shapley_monotone`] is an extension the paper does not
//! evaluate: for *monotone* lineages (all UCQ lineages are), the marginal
//! contribution along a permutation is 1 at exactly one position, found by
//! binary search in `O(log n)` evaluations — an ablation bench compares the
//! two.

use rand::prelude::*;
use shapdb_num::Bitset;

/// Configuration for the Monte Carlo estimator.
#[derive(Clone, Copy, Debug)]
pub struct MonteCarloConfig {
    /// Number of sampled permutations `r` (total budget `r·n` evaluations).
    pub permutations: usize,
    /// RNG seed (the experiments are reproducible).
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            permutations: 50,
            seed: 0x5AD0,
        }
    }
}

/// Estimates the Shapley value of every fact `0..n` of the Boolean set
/// function `f` by permutation sampling.
pub fn monte_carlo_shapley(
    f: &impl Fn(&Bitset) -> bool,
    n: usize,
    cfg: &MonteCarloConfig,
) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut totals = vec![0.0f64; n];
    let mut perm: Vec<usize> = (0..n).collect();
    let mut set = Bitset::new(n);
    for _ in 0..cfg.permutations.max(1) {
        perm.shuffle(&mut rng);
        set.clear();
        let mut prev = f(&set);
        for &fact in &perm {
            set.insert(fact);
            let cur = f(&set);
            if cur != prev {
                totals[fact] += if cur { 1.0 } else { -1.0 };
            }
            prev = cur;
        }
    }
    let r = cfg.permutations.max(1) as f64;
    totals.iter_mut().for_each(|t| *t /= r);
    totals
}

/// Monte Carlo for **monotone** `f`: along each permutation the value flips
/// 0→1 at most once, at a prefix length found by binary search.
///
/// The caller asserts monotonicity (UCQ lineages always are); on a
/// non-monotone function the estimate is silently biased. Produces the same
/// estimator as [`monte_carlo_shapley`] run with the same permutations, at
/// `O(log n)` instead of `O(n)` evaluations per permutation.
pub fn monte_carlo_shapley_monotone(
    f: &impl Fn(&Bitset) -> bool,
    n: usize,
    cfg: &MonteCarloConfig,
) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut totals = vec![0.0f64; n];
    let mut perm: Vec<usize> = (0..n).collect();
    let prefix_eval = |perm: &[usize], len: usize| -> bool {
        let mut s = Bitset::new(n);
        for &x in &perm[..len] {
            s.insert(x);
        }
        f(&s)
    };
    for _ in 0..cfg.permutations.max(1) {
        perm.shuffle(&mut rng);
        if !prefix_eval(&perm, n) {
            continue; // f(full) = 0: monotone ⇒ all marginals 0.
        }
        if prefix_eval(&perm, 0) {
            continue; // f(∅) = 1: monotone ⇒ no flip anywhere.
        }
        // Smallest prefix length where f becomes true.
        let (mut lo, mut hi) = (0usize, n); // f(lo)=0, f(hi)=1 invariant
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if prefix_eval(&perm, mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        totals[perm[hi - 1]] += 1.0;
    }
    let r = cfg.permutations.max(1) as f64;
    totals.iter_mut().for_each(|t| *t /= r);
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::shapley_naive;
    use shapdb_circuit::{Dnf, VarId};

    fn running_example_dnf() -> Dnf {
        let mut d = Dnf::new();
        d.add_conjunct(vec![VarId(0)]);
        for pair in [[1u32, 3], [1, 4], [2, 3], [2, 4], [5, 6]] {
            d.add_conjunct(pair.iter().map(|&v| VarId(v)).collect());
        }
        d
    }

    #[test]
    fn converges_to_exact_values() {
        let d = running_example_dnf();
        let f = |s: &Bitset| d.eval_set(s);
        let exact: Vec<f64> = shapley_naive(&f, 8).iter().map(|r| r.to_f64()).collect();
        let cfg = MonteCarloConfig {
            permutations: 20_000,
            seed: 42,
        };
        let est = monte_carlo_shapley(&f, 8, &cfg);
        for (i, (e, x)) in est.iter().zip(&exact).enumerate() {
            assert!((e - x).abs() < 0.02, "fact {i}: est {e} vs exact {x}");
        }
    }

    #[test]
    fn monotone_variant_identical_estimator() {
        // Same seed ⇒ same permutations ⇒ identical (not just close) output
        // on a monotone function.
        let d = running_example_dnf();
        let f = |s: &Bitset| d.eval_set(s);
        let cfg = MonteCarloConfig {
            permutations: 500,
            seed: 7,
        };
        let a = monte_carlo_shapley(&f, 8, &cfg);
        let b = monte_carlo_shapley_monotone(&f, 8, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn null_player_estimated_zero() {
        let d = running_example_dnf();
        let f = |s: &Bitset| d.eval_set(s);
        let cfg = MonteCarloConfig {
            permutations: 2000,
            seed: 9,
        };
        let est = monte_carlo_shapley(&f, 8, &cfg);
        assert_eq!(est[7], 0.0, "a8 never changes the outcome");
    }

    #[test]
    fn empty_and_constant_games() {
        let always = |_: &Bitset| true;
        assert!(
            monte_carlo_shapley(&always, 3, &MonteCarloConfig::default())
                .iter()
                .all(|&v| v == 0.0)
        );
        let never = |_: &Bitset| false;
        assert!(
            monte_carlo_shapley_monotone(&never, 3, &MonteCarloConfig::default())
                .iter()
                .all(|&v| v == 0.0)
        );
        assert!(monte_carlo_shapley(&always, 0, &MonteCarloConfig::default()).is_empty());
    }

    #[test]
    fn estimates_sum_to_efficiency() {
        // Along every permutation the marginals telescope to f(full)-f(∅),
        // so the estimates sum to it exactly.
        let d = running_example_dnf();
        let f = |s: &Bitset| d.eval_set(s);
        let cfg = MonteCarloConfig {
            permutations: 137,
            seed: 3,
        };
        let est = monte_carlo_shapley(&f, 8, &cfg);
        let total: f64 = est.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
