//! Relations: schemas and stored facts.

use crate::database::FactId;
use crate::value::Value;
use std::fmt;

/// A relation schema: a name and ordered column names (arity is implied).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schema {
    name: String,
    columns: Vec<String>,
}

impl Schema {
    /// Creates a schema. Column names must be distinct.
    pub fn new(name: &str, columns: &[&str]) -> Schema {
        let cols: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
        for (i, c) in cols.iter().enumerate() {
            assert!(
                !cols[..i].contains(c),
                "duplicate column `{c}` in relation `{name}`"
            );
        }
        Schema {
            name: name.to_string(),
            columns: cols,
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }
}

/// A fact stored in a relation.
#[derive(Clone, Debug)]
pub struct StoredFact {
    /// Database-wide dense identifier.
    pub id: FactId,
    /// The tuple of constants.
    pub values: Box<[Value]>,
    /// True iff the fact is endogenous (a Shapley "player").
    pub endogenous: bool,
}

/// A relation instance: a schema plus stored facts.
#[derive(Clone, Debug)]
pub struct Relation {
    schema: Schema,
    facts: Vec<StoredFact>,
}

impl Relation {
    /// Creates an empty relation.
    pub fn new(schema: Schema) -> Relation {
        Relation {
            schema,
            facts: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All stored facts.
    pub fn facts(&self) -> &[StoredFact] {
        &self.facts
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// True iff the relation has no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Appends a fact; used by [`crate::Database`], which owns id assignment.
    pub(crate) fn push(&mut self, fact: StoredFact) {
        debug_assert_eq!(fact.values.len(), self.schema.arity());
        self.facts.push(fact);
    }

    /// Renders one fact as `Name(v1, v2, …)`.
    pub fn display_fact(&self, row: usize) -> String {
        let f = &self.facts[row];
        let vals: Vec<String> = f.values.iter().map(|v| v.to_string()).collect();
        format!("{}({})", self.schema.name(), vals.join(", "))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.columns.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_accessors() {
        let s = Schema::new("Flights", &["src", "dest"]);
        assert_eq!(s.name(), "Flights");
        assert_eq!(s.arity(), 2);
        assert_eq!(s.column_index("dest"), Some(1));
        assert_eq!(s.column_index("nope"), None);
        assert_eq!(s.to_string(), "Flights(src, dest)");
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn schema_rejects_duplicate_columns() {
        Schema::new("R", &["a", "a"]);
    }

    #[test]
    fn relation_push_and_display() {
        let mut r = Relation::new(Schema::new("Airports", &["name", "country"]));
        r.push(StoredFact {
            id: FactId(0),
            values: vec![Value::str("JFK"), Value::str("USA")].into_boxed_slice(),
            endogenous: false,
        });
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        assert_eq!(r.display_fact(0), "Airports(JFK, USA)");
    }
}
