//! Constants appearing in database facts and queries.

use std::fmt;
use std::sync::Arc;

/// A constant: either a 64-bit integer or an interned string.
///
/// Strings are `Arc<str>` so that cloning a value (which happens on every
/// join output) is a reference-count bump, not an allocation.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    Int(i64),
    Str(Arc<str>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Builds an integer value.
    pub fn int(v: i64) -> Value {
        Value::Int(v)
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// Returns the string if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let i = Value::int(42);
        let s = Value::str("JFK");
        assert_eq!(i.as_int(), Some(42));
        assert_eq!(i.as_str(), None);
        assert_eq!(s.as_str(), Some("JFK"));
        assert_eq!(s.as_int(), None);
    }

    #[test]
    fn ordering_is_total() {
        // Ints sort before strings (enum order); ties compare payloads.
        let mut vals = vec![
            Value::str("b"),
            Value::int(2),
            Value::str("a"),
            Value::int(1),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::int(1),
                Value::int(2),
                Value::str("a"),
                Value::str("b")
            ]
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::int(-7).to_string(), "-7");
        assert_eq!(Value::str("CDG").to_string(), "CDG");
        assert_eq!(format!("{:?}", Value::str("CDG")), "\"CDG\"");
    }

    #[test]
    fn equality_across_clones() {
        let a = Value::str("USA");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, Value::str("USA"));
        assert_ne!(a, Value::str("FR"));
    }
}
