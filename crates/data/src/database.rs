//! The database: a set of relations with globally identified facts.

use crate::relation::{Relation, Schema, StoredFact};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Database-wide dense fact identifier.
///
/// Ids are assigned in insertion order (`0, 1, 2, …`), so they double as
/// Boolean-variable indices in provenance circuits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FactId(pub u32);

impl FactId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Location of a fact: relation index + row index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FactRef {
    pub relation: usize,
    pub row: usize,
}

/// A relational database `D = D_x ∪ D_n` (§2 of the paper).
#[derive(Clone, Default)]
pub struct Database {
    relations: Vec<Relation>,
    by_name: HashMap<String, usize>,
    /// `fact_index[id] = (relation, row)` for O(1) fact lookup.
    fact_index: Vec<FactRef>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Creates a relation and returns its index. Panics on duplicate names.
    pub fn create_relation(&mut self, name: &str, columns: &[&str]) -> usize {
        assert!(
            !self.by_name.contains_key(name),
            "relation `{name}` already exists"
        );
        let idx = self.relations.len();
        self.relations
            .push(Relation::new(Schema::new(name, columns)));
        self.by_name.insert(name.to_string(), idx);
        idx
    }

    /// Inserts a fact and returns its id.
    ///
    /// `endogenous` marks the fact as a Shapley player (a member of `D_n`).
    pub fn insert(&mut self, relation: &str, values: Vec<Value>, endogenous: bool) -> FactId {
        let rel_idx = *self
            .by_name
            .get(relation)
            .unwrap_or_else(|| panic!("unknown relation `{relation}`"));
        let rel = &mut self.relations[rel_idx];
        assert_eq!(
            values.len(),
            rel.schema().arity(),
            "arity mismatch inserting into `{relation}`"
        );
        let id = FactId(self.fact_index.len() as u32);
        self.fact_index.push(FactRef {
            relation: rel_idx,
            row: rel.len(),
        });
        rel.push(StoredFact {
            id,
            values: values.into_boxed_slice(),
            endogenous,
        });
        id
    }

    /// Convenience: insert an endogenous fact.
    pub fn insert_endo(&mut self, relation: &str, values: Vec<Value>) -> FactId {
        self.insert(relation, values, true)
    }

    /// Convenience: insert an exogenous fact.
    pub fn insert_exo(&mut self, relation: &str, values: Vec<Value>) -> FactId {
        self.insert(relation, values, false)
    }

    /// Bag semantics (§7 of the paper): inserts `multiplicity` distinguished
    /// copies of the same tuple and returns their ids.
    ///
    /// The paper observes that the framework works as-is on bag databases
    /// once copies of a tuple are differentiated ("for instance, adding an
    /// identifier attribute"); here the distinguishing identifier is the
    /// [`FactId`] itself. Each copy is an independent Shapley player, so
    /// interchangeable copies split the responsibility the single fact would
    /// have carried — e.g. two copies of the only fact deriving an answer
    /// get 1/2 each instead of 1.
    pub fn insert_copies(
        &mut self,
        relation: &str,
        values: Vec<Value>,
        multiplicity: usize,
        endogenous: bool,
    ) -> Vec<FactId> {
        assert!(multiplicity > 0, "multiplicity must be at least 1");
        (0..multiplicity)
            .map(|_| self.insert(relation, values.clone(), endogenous))
            .collect()
    }

    /// The relation with the given name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.by_name.get(name).map(|&i| &self.relations[i])
    }

    /// All relations in creation order.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Total number of facts.
    pub fn num_facts(&self) -> usize {
        self.fact_index.len()
    }

    /// Number of endogenous facts `|D_n|`.
    pub fn num_endogenous(&self) -> usize {
        self.fact_index
            .iter()
            .filter(|r| self.relations[r.relation].facts()[r.row].endogenous)
            .count()
    }

    /// Ids of all endogenous facts in id order.
    pub fn endogenous_facts(&self) -> Vec<FactId> {
        (0..self.fact_index.len() as u32)
            .map(FactId)
            .filter(|&id| self.is_endogenous(id))
            .collect()
    }

    /// Whether a fact is endogenous.
    pub fn is_endogenous(&self, id: FactId) -> bool {
        let r = self.fact_index[id.index()];
        self.relations[r.relation].facts()[r.row].endogenous
    }

    /// The stored fact for an id.
    pub fn fact(&self, id: FactId) -> &StoredFact {
        let r = self.fact_index[id.index()];
        &self.relations[r.relation].facts()[r.row]
    }

    /// The relation a fact belongs to.
    pub fn fact_relation(&self, id: FactId) -> &Relation {
        let r = self.fact_index[id.index()];
        &self.relations[r.relation]
    }

    /// Renders a fact as `Name(v1, …)` for explanations.
    pub fn display_fact(&self, id: FactId) -> String {
        let r = self.fact_index[id.index()];
        self.relations[r.relation].display_fact(r.row)
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Database ({} facts):", self.num_facts())?;
        for rel in &self.relations {
            writeln!(f, "  {} [{} facts]", rel.schema(), rel.len())?;
        }
        Ok(())
    }
}

/// Builds the flights/airports database of the paper's running example
/// (Figure 1a): `Flights` facts `a1..a8` are endogenous, `Airports` facts
/// `b1..b8` are exogenous. Returns the database and the ids `[a1,…,a8]`.
pub fn flights_example() -> (Database, Vec<FactId>) {
    let mut db = Database::new();
    db.create_relation("Flights", &["src", "dest"]);
    db.create_relation("Airports", &["name", "country"]);
    let flights = [
        ("JFK", "CDG"), // a1
        ("EWR", "LHR"), // a2
        ("BOS", "LHR"), // a3
        ("LHR", "CDG"), // a4
        ("LHR", "ORY"), // a5
        ("LAX", "MUC"), // a6
        ("MUC", "ORY"), // a7
        ("LHR", "MUC"), // a8
    ];
    let a_ids: Vec<FactId> = flights
        .iter()
        .map(|(s, d)| db.insert_endo("Flights", vec![Value::str(s), Value::str(d)]))
        .collect();
    let airports = [
        ("JFK", "USA"),
        ("EWR", "USA"),
        ("BOS", "USA"),
        ("LAX", "USA"),
        ("LHR", "EN"),
        ("MUC", "GR"),
        ("ORY", "FR"),
        ("CDG", "FR"),
    ];
    for (n, c) in airports {
        db.insert_exo("Airports", vec![Value::str(n), Value::str(c)]);
    }
    (db, a_ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut db = Database::new();
        db.create_relation("R", &["a", "b"]);
        let f0 = db.insert_endo("R", vec![Value::int(1), Value::int(2)]);
        let f1 = db.insert_exo("R", vec![Value::int(3), Value::int(4)]);
        assert_eq!(f0, FactId(0));
        assert_eq!(f1, FactId(1));
        assert_eq!(db.num_facts(), 2);
        assert_eq!(db.num_endogenous(), 1);
        assert!(db.is_endogenous(f0));
        assert!(!db.is_endogenous(f1));
        assert_eq!(db.fact(f1).values[0], Value::int(3));
        assert_eq!(db.display_fact(f0), "R(1, 2)");
    }

    #[test]
    fn ids_are_dense_across_relations() {
        let mut db = Database::new();
        db.create_relation("R", &["a"]);
        db.create_relation("S", &["b"]);
        let r0 = db.insert_endo("R", vec![Value::int(1)]);
        let s0 = db.insert_endo("S", vec![Value::int(2)]);
        let r1 = db.insert_endo("R", vec![Value::int(3)]);
        assert_eq!((r0.index(), s0.index(), r1.index()), (0, 1, 2));
        assert_eq!(db.endogenous_facts(), vec![r0, s0, r1]);
        assert_eq!(db.fact_relation(s0).schema().name(), "S");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut db = Database::new();
        db.create_relation("R", &["a", "b"]);
        db.insert_endo("R", vec![Value::int(1)]);
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_relation_rejected() {
        let mut db = Database::new();
        db.create_relation("R", &["a"]);
        db.create_relation("R", &["b"]);
    }

    #[test]
    fn flights_example_shape() {
        let (db, a_ids) = flights_example();
        assert_eq!(db.num_facts(), 16);
        assert_eq!(db.num_endogenous(), 8);
        assert_eq!(a_ids.len(), 8);
        assert_eq!(db.display_fact(a_ids[0]), "Flights(JFK, CDG)");
        assert_eq!(db.relation("Airports").unwrap().len(), 8);
    }
}
