//! # shapdb-data — relational storage substrate
//!
//! The paper computes Shapley values of *facts* of a relational database
//! (§2): a database is a finite set of facts `R(a₁,…,a_k)`, partitioned into
//! *endogenous* facts (the players whose contribution we measure) and
//! *exogenous* facts (taken as given). This crate provides that substrate —
//! the role PostgreSQL plays in the paper's implementation (Figure 3):
//!
//! * [`Value`] — constants (integers and interned strings),
//! * [`Schema`] / [`Relation`] — named relations with fixed arity,
//! * [`Database`] — a set of relations whose facts carry stable [`FactId`]s
//!   and an endogenous/exogenous flag.
//!
//! [`FactId`]s are dense (`0..database.num_facts()`), which lets the
//! provenance machinery map facts directly to Boolean variables.

pub mod database;
pub mod relation;
pub mod value;

pub use database::{flights_example, Database, FactId, FactRef};
pub use relation::{Relation, Schema, StoredFact};
pub use value::Value;
