//! Thin binary wrapper around [`shapdb_cli::run_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprint!("{}", shapdb_cli::USAGE);
        std::process::exit(2);
    }
    match shapdb_cli::run_cli(&args) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
