//! # shapdb-cli — Shapley fact attribution from the command line
//!
//! The downstream-user entry point: point the tool at a directory of CSV
//! files (one per relation, header row = column names), give it a
//! Datalog-style query, and it prints each answer with its most influential
//! facts:
//!
//! ```text
//! shapdb --db data/ --query 'q(c) :- Airports(x, c), Flights(x, y)' \
//!        --endo Flights --top 3
//! ```
//!
//! Engines (`--engine`): `auto` (the default — the cost-based planner
//! routes each answer's lineage to the cheapest engine, exact under the
//! timeout with a CNF-Proxy ranking fallback), `exact` (read-once fast
//! path, else knowledge compilation; fails on timeout), or a forced single
//! engine: `readonce`, `kc`, `naive`, `proxy`, `montecarlo`, `kernelshap`.
//! Answers run through the batch executor: structurally identical lineages
//! are computed once, distinct ones fan out over `--threads` workers.
//! `--method {exact,hybrid,proxy}` remains as a compatibility alias.
//! Aggregates: `--agg count` and `--agg sum:<head-column>` attribute the
//! COUNT/SUM game over all answers instead of each answer separately.
//!
//! `shapdb serve --jsonl` flips the tool from one-shot to **resident**: a
//! long-lived [`shapdb_core::engine::ShapleyService`] worker pool reads
//! attribution requests as JSON lines on stdin and answers on stdout (see
//! [`serve`]) — many requests, one process, one shared result cache, no
//! network dependency. `shapdb serve --listen <addr>` serves the same
//! protocol over a TCP or Unix socket to many concurrent clients (see
//! [`listen`]), and `--persist <file>` backs the shared result cache with
//! an append-only log so a restarted server answers warm from disk.
//!
//! Everything is a library function returning the rendered report, so the
//! test suite drives the tool without spawning processes; `main.rs` is a
//! thin wrapper.

pub mod json;
pub mod listen;
pub mod serve;

pub use listen::{run_listen, SocketServer};
pub use serve::{parse_serve_args, run_serve, ServeOptions, ServeSummary};

use shapdb_circuit::{fingerprint, Dnf};
use shapdb_core::aggregate::{count_shapley, sum_shapley};
use shapdb_core::engine::{
    BatchExecutor, EngineKind, EngineValues, Measure, Planner, PlannerConfig, ShapleyCache,
    TopKExecutor,
};
use shapdb_core::exact::ExactConfig;
use shapdb_data::{Database, FactId, Value};
use shapdb_kc::Budget;
use shapdb_num::Rational;
use shapdb_query::{evaluate, parse_ucq, with_streamed_lineages, Ucq};
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Which engine policy to run (`--engine`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineChoice {
    /// The cost-based planner with the hybrid fallback: exact wherever the
    /// timeout allows, CNF-Proxy ranking otherwise. Never fails.
    Auto,
    /// Exact values only (read-once fast path, else knowledge compilation);
    /// fails when the timeout or budget is exceeded.
    Exact,
    /// One specific engine for every answer.
    Forced(EngineKind),
}

impl EngineChoice {
    /// Parses an `--engine` value.
    pub fn parse(s: &str) -> Option<EngineChoice> {
        match s {
            "auto" => Some(EngineChoice::Auto),
            "exact" => Some(EngineChoice::Exact),
            other => EngineKind::parse(other).map(EngineChoice::Forced),
        }
    }

    /// The planner policy this choice stands for.
    pub fn planner_config(self, timeout: Duration) -> PlannerConfig {
        match self {
            EngineChoice::Auto => PlannerConfig {
                timeout: Some(timeout),
                fallback: Some(EngineKind::Proxy),
                // Like the paper's hybrid: always try the exact pipeline
                // under the timeout, never pre-reject by lineage size.
                max_kc_vars: usize::MAX,
                max_kc_conjuncts: usize::MAX,
                ..Default::default()
            },
            EngineChoice::Exact => PlannerConfig {
                timeout: Some(timeout),
                ..Default::default()
            },
            EngineChoice::Forced(kind) => PlannerConfig {
                force: Some(kind),
                timeout: Some(timeout),
                ..Default::default()
            },
        }
    }
}

/// Aggregate mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Aggregate {
    /// Attribute each output tuple separately (the default).
    None,
    /// Attribute the COUNT(*) game over all answers.
    Count,
    /// Attribute the SUM(head column) game over all answers.
    Sum(usize),
}

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct Config {
    pub db_dir: PathBuf,
    pub query: String,
    /// Relations whose facts are endogenous; `None` = all relations.
    pub endo: Option<Vec<String>>,
    pub top: usize,
    pub engine: EngineChoice,
    /// Batch worker threads (0 = all available cores).
    pub threads: usize,
    pub timeout: Duration,
    pub aggregate: Aggregate,
    /// Cross-query result-cache capacity in entries (0 = caching off).
    pub cache_capacity: usize,
    /// The attribution measure per answer (`--measure`, default Shapley).
    pub measure: Measure,
    /// `--top-k`: rank answers by their best fact's Shapley value and
    /// report only the `k` best, pruning the rest unsolved via the
    /// bound-driven top-k executor over streamed lineages.
    pub top_k: Option<usize>,
}

/// A user-facing failure: bad arguments, unreadable CSV, bad query, or an
/// exact computation that did not fit its budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text (also shown on `--help`).
pub const USAGE: &str = "\
shapdb — Shapley values of database facts in query answering

USAGE:
    shapdb --db <DIR> --query <UCQ> [OPTIONS]
    shapdb serve --jsonl [SERVE OPTIONS]
    shapdb serve --listen <ADDR> [SERVE OPTIONS]

SERVE MODE (resident service, one JSON request per line):
    --jsonl             requests on stdin, responses on stdout, e.g.
                        {\"id\":1,\"lineage\":[[0,1],[2]],\"n_endo\":8}
                        (optional per-request: engine, timeout_ms, client,
                        measure — \"shapley\" | \"banzhaf\" |
                        \"responsibility\" | \"shap-score\");
                        one JSON response per line, in request order, plus
                        a final {\"stats\":{...}} line on EOF
    --listen <ADDR>     same protocol over a socket: host:port for TCP,
                        unix:/path (or any address containing /) for a
                        Unix socket; each connection is its own session,
                        all share one worker pool and result cache
    --persist <FILE>    append-only log behind the result cache: replayed
                        on startup (a restarted server answers warm from
                        disk), written through on every new exact result
    --max-n-endo <N>    largest accepted n_endo (default 1048576)
    --max-lineage-literals <N>  largest accepted total lineage literal
                        count per request (default 1048576)
    --max-line-bytes <N> longest accepted request line; longer lines are
                        discarded unbuffered (default 4194304)
    --workers <N>       persistent worker threads (default 0 = all cores)
    --queue-capacity <N> bound on queued requests; a full queue blocks the
                        stdin reader (default 1024)
    --cache-capacity <N> shared result-cache entries (default 1024, 0 = off)
    --engine <E>        default engine policy (as below; per-request
                        \"engine\" overrides it)
    --measure <M>       default attribution measure (as below; per-request
                        \"measure\" overrides it)
    --timeout-ms <N>    default exact-pipeline deadline (default 2500)

OPTIONS:
    --db <DIR>          directory of CSV files, one per relation
                        (Name.csv, header row = column names)
    --query <UCQ>       Datalog-style query, e.g.
                        'q(c) :- Airports(x, c), Flights(x, y)'
    --endo <R1,R2,...>  endogenous relations (default: all)
    --top <K>           show the K most influential facts (default 5)
    --engine <E>        auto | exact | readonce | kc | naive | proxy |
                        montecarlo | kernelshap   (default auto: the
                        cost-based planner, exact under the timeout with a
                        CNF-Proxy ranking fallback)
    --threads <N>       batch worker threads (default 0 = all cores)
    --method <M>        compatibility alias: exact | hybrid | proxy
                        (hybrid = --engine auto)
    --timeout-ms <N>    exact-pipeline deadline in milliseconds (default 2500)
    --cache-capacity <N> cross-query result-cache entries (default 1024;
                        0 = off). Exact results are cached per canonical
                        lineage structure and reused across answers and
                        queries of this invocation.
    --agg <A>           count | sum:<head-column-index>
                        (Shapley only: the aggregate games rely on the
                        Shapley value's linearity)
    --measure <M>       shapley | banzhaf | responsibility | shap-score
                        (default shapley) — the attribution measure per
                        answer; all ride the same planner routes and the
                        measure-keyed result cache
    --top-k <K>         rank answers by their best fact's exact Shapley
                        value and report only the K best: lineages stream
                        through a bounded channel (memory stays chunk-
                        bounded) and structures whose cheap upper bound
                        falls below the K-th best score are pruned
                        unsolved. Exact engines only; incompatible with
                        --agg, --measure, and forced inexact --engine
    --help              print this text
";

/// Parses command-line arguments (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Config, CliError> {
    let mut db_dir: Option<PathBuf> = None;
    let mut query: Option<String> = None;
    let mut endo: Option<Vec<String>> = None;
    let mut top = 5usize;
    let mut engine = EngineChoice::Auto;
    let mut threads = 0usize;
    let mut timeout = Duration::from_millis(2500);
    let mut aggregate = Aggregate::None;
    let mut cache_capacity = ShapleyCache::DEFAULT_CAPACITY;
    let mut measure = Measure::Shapley;
    let mut top_k: Option<usize> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = || {
            it.next()
                .ok_or_else(|| err(format!("missing value after `{arg}`")))
        };
        match arg.as_str() {
            "--db" => db_dir = Some(PathBuf::from(take()?)),
            "--query" => query = Some(take()?.clone()),
            "--endo" => endo = Some(take()?.split(',').map(|s| s.trim().to_string()).collect()),
            "--top" => {
                top = take()?
                    .parse()
                    .map_err(|_| err("--top expects a positive integer"))?
            }
            "--engine" => {
                let spec = take()?;
                engine = EngineChoice::parse(spec)
                    .ok_or_else(|| err(format!("unknown engine `{spec}`")))?
            }
            "--threads" => {
                threads = take()?
                    .parse()
                    .map_err(|_| err("--threads expects a non-negative integer"))?
            }
            "--method" => {
                // Compatibility alias from before the engine layer.
                engine = match take()?.as_str() {
                    "exact" => EngineChoice::Exact,
                    "hybrid" => EngineChoice::Auto,
                    "proxy" => EngineChoice::Forced(EngineKind::Proxy),
                    other => return Err(err(format!("unknown method `{other}`"))),
                }
            }
            "--timeout-ms" => {
                let ms: u64 = take()?
                    .parse()
                    .map_err(|_| err("--timeout-ms expects an integer"))?;
                timeout = Duration::from_millis(ms);
            }
            "--cache-capacity" => {
                cache_capacity = take()?
                    .parse()
                    .map_err(|_| err("--cache-capacity expects a non-negative integer"))?
            }
            "--agg" => {
                let spec = take()?.clone();
                aggregate = if spec == "count" {
                    Aggregate::Count
                } else if let Some(col) = spec.strip_prefix("sum:") {
                    Aggregate::Sum(
                        col.parse()
                            .map_err(|_| err("--agg sum:<N> expects a column index"))?,
                    )
                } else {
                    return Err(err(format!("unknown aggregate `{spec}`")));
                };
            }
            "--measure" => {
                let spec = take()?;
                measure =
                    Measure::parse(spec).ok_or_else(|| err(format!("unknown measure `{spec}`")))?
            }
            "--top-k" => {
                top_k = Some(
                    take()?
                        .parse()
                        .map_err(|_| err("--top-k expects a non-negative integer"))?,
                )
            }
            "--help" | "-h" => return Err(err(USAGE)),
            other => return Err(err(format!("unknown argument `{other}`"))),
        }
    }
    if measure != Measure::Shapley && aggregate != Aggregate::None {
        return Err(err(format!(
            "--agg relies on the Shapley value's linearity and cannot be \
             combined with --measure {measure}"
        )));
    }
    if top_k.is_some() {
        if aggregate != Aggregate::None {
            return Err(err(
                "--top-k ranks per-answer and cannot be combined with --agg",
            ));
        }
        if measure != Measure::Shapley {
            return Err(err(format!(
                "--top-k prunes against Shapley bounds and cannot be \
                 combined with --measure {measure}"
            )));
        }
        if let EngineChoice::Forced(kind) = engine {
            return Err(err(format!(
                "--top-k needs the exact planner's scores; drop \
                 `--engine {kind}` (or use --engine exact)"
            )));
        }
    }
    Ok(Config {
        db_dir: db_dir.ok_or_else(|| err("--db is required"))?,
        query: query.ok_or_else(|| err("--query is required"))?,
        endo,
        top,
        engine,
        threads,
        timeout,
        aggregate,
        cache_capacity,
        measure,
        top_k,
    })
}

/// Splits one CSV line into fields (double-quoted fields may contain commas
/// and `""` escapes).
fn split_csv_line(line: &str) -> Result<Vec<String>, CliError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    if in_quotes {
        return Err(err(format!("unterminated quote in CSV line: {line}")));
    }
    fields.push(cur);
    Ok(fields)
}

fn parse_value(field: &str) -> Value {
    match field.trim().parse::<i64>() {
        Ok(v) => Value::int(v),
        Err(_) => Value::str(field.trim()),
    }
}

/// Loads every `*.csv` in `dir` as a relation named after the file stem.
/// The header row gives column names; rows become facts, endogenous iff the
/// relation is in `endo` (or `endo` is `None`).
pub fn load_database(dir: &Path, endo: Option<&[String]>) -> Result<Database, CliError> {
    let mut db = Database::new();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| err(format!("cannot read {}: {e}", dir.display())))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .collect();
    entries.sort();
    if entries.is_empty() {
        return Err(err(format!("no .csv files in {}", dir.display())));
    }
    for path in entries {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| err(format!("bad file name {}", path.display())))?
            .to_string();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| err(format!("cannot read {}: {e}", path.display())))?;
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| err(format!("{}: empty file", path.display())))?;
        let columns: Vec<String> = split_csv_line(header)?
            .into_iter()
            .map(|c| c.trim().to_string())
            .collect();
        let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
        db.create_relation(&name, &col_refs);
        let endogenous = endo.is_none_or(|list| list.iter().any(|r| r == &name));
        for (lineno, line) in lines.enumerate() {
            let fields = split_csv_line(line)?;
            if fields.len() != columns.len() {
                return Err(err(format!(
                    "{}: row {} has {} fields, expected {}",
                    path.display(),
                    lineno + 2,
                    fields.len(),
                    columns.len()
                )));
            }
            let values: Vec<Value> = fields.iter().map(|f| parse_value(f)).collect();
            db.insert(&name, values, endogenous);
        }
    }
    Ok(db)
}

fn render_tuple(tuple: &[Value]) -> String {
    if tuple.is_empty() {
        "q() = true".to_string()
    } else {
        let vals: Vec<String> = tuple.iter().map(|v| v.to_string()).collect();
        format!("({})", vals.join(", "))
    }
}

fn render_exact(out: &mut String, db: &Database, top: usize, values: &[(FactId, Rational)]) {
    for (i, (fact, v)) in values.iter().take(top).enumerate() {
        out.push_str(&format!(
            "  {}. {}  {}  (≈{:.4})\n",
            i + 1,
            db.display_fact(*fact),
            v,
            v.to_f64()
        ));
    }
}

/// The `--top-k` path: stream lineages (chunk-bounded memory), fingerprint
/// each answer, and let the bound-driven top-k executor solve only the
/// structures that can still make the list.
fn run_topk(db: &Database, q: &Ucq, k: usize, cfg: &Config) -> Result<String, CliError> {
    let n_endo = db.num_endogenous();
    let ((tuples, fps), stream) = with_streamed_lineages(q, db, 256, |answers| {
        let mut tuples = Vec::new();
        let mut fps = Vec::new();
        for out in answers {
            fps.push(fingerprint(&out.endo_lineage(db)));
            tuples.push(out.tuple);
        }
        (tuples, fps)
    });
    // Exact routes only (the pruning threshold compares exact scores); the
    // per-lineage timeout still applies through the planner.
    let mut planner = Planner::for_query(EngineChoice::Exact.planner_config(cfg.timeout), q);
    if cfg.cache_capacity > 0 {
        planner = planner.with_cache(std::sync::Arc::new(ShapleyCache::with_capacity(
            cfg.cache_capacity,
        )));
    }
    let report = TopKExecutor::new(planner)
        .run(
            fps,
            k,
            n_endo,
            &Budget::unlimited(),
            &ExactConfig::default(),
        )
        .map_err(|e| err(format!("top-k ranking failed: {e}")))?;
    let mut out = String::new();
    out.push_str(&format!(
        "{} fact(s), {} endogenous; {} answer(s) for {}\n",
        db.num_facts(),
        n_endo,
        report.answers,
        q
    ));
    out.push_str(&format!(
        "top-{k}: solved {} answer(s) ({} structure(s)), pruned {} answer(s) \
         ({} structure(s)) unsolved; peak {} streamed literal(s)\n",
        report.solved_answers,
        report.solved_structures,
        report.pruned_answers,
        report.pruned_structures,
        stream.peak_in_flight_literals
    ));
    for (rank, item) in report.top.iter().enumerate() {
        out.push_str(&format!(
            "#{} {}  best fact value {}  (≈{:.4})\n",
            rank + 1,
            render_tuple(&tuples[item.index]),
            item.score,
            item.score.to_f64()
        ));
        let EngineValues::Exact(values) = &item.result.values else {
            unreachable!("top-k results are exact");
        };
        let values: Vec<(FactId, Rational)> = values
            .iter()
            .map(|(v, r)| (FactId(v.0), r.clone()))
            .collect();
        render_exact(&mut out, db, cfg.top, &values);
    }
    Ok(out)
}

/// Runs the tool and returns the rendered report.
pub fn run(cfg: &Config) -> Result<String, CliError> {
    let db = load_database(&cfg.db_dir, cfg.endo.as_deref())?;
    let q: Ucq = parse_ucq(&cfg.query).map_err(|e| err(format!("query: {e}")))?;
    if let Some(k) = cfg.top_k {
        return run_topk(&db, &q, k, cfg);
    }
    let n_endo = db.num_endogenous();
    let res = evaluate(&q, &db);

    let mut out = String::new();
    out.push_str(&format!(
        "{} fact(s), {} endogenous; {} answer(s) for {}\n",
        db.num_facts(),
        n_endo,
        res.len(),
        q
    ));

    let budget = Budget::with_timeout(cfg.timeout);
    let exact_cfg = ExactConfig::default();

    match cfg.aggregate {
        Aggregate::Count | Aggregate::Sum(_) => {
            let attrs = match cfg.aggregate {
                Aggregate::Count => {
                    let lineages: Vec<_> =
                        res.outputs.iter().map(|t| t.endo_lineage(&db)).collect();
                    count_shapley(&lineages, n_endo, &budget, &exact_cfg)
                }
                Aggregate::Sum(col) => {
                    let weighted: Result<Vec<_>, CliError> = res
                        .outputs
                        .iter()
                        .map(|t| {
                            let v = t
                                .tuple
                                .get(col)
                                .ok_or_else(|| err(format!("sum column {col} out of range")))?;
                            let w = v.as_int().ok_or_else(|| {
                                err(format!("sum column {col} is not an integer"))
                            })?;
                            Ok((t.endo_lineage(&db), Rational::from_int(w)))
                        })
                        .collect();
                    sum_shapley(&weighted?, n_endo, &budget, &exact_cfg)
                }
                Aggregate::None => unreachable!(),
            }
            .map_err(|e| err(format!("aggregate attribution failed: {e}")))?;
            out.push_str(match cfg.aggregate {
                Aggregate::Count => "COUNT(*) attribution:\n",
                _ => "SUM attribution:\n",
            });
            let attrs: Vec<(FactId, Rational)> =
                attrs.into_iter().map(|(v, r)| (FactId(v.0), r)).collect();
            render_exact(&mut out, &db, cfg.top, &attrs);
            return Ok(out);
        }
        Aggregate::None => {}
    }

    // Per-answer attribution through the engine layer: one batch, dedup of
    // structurally identical lineages, cross-query result cache, fan-out
    // over worker threads.
    let lineages: Vec<Dnf> = res.outputs.iter().map(|t| t.endo_lineage(&db)).collect();
    let planner_cfg = cfg.engine.planner_config(cfg.timeout);
    let mut planner = Planner::for_query(planner_cfg, &q);
    if cfg.cache_capacity > 0 {
        planner = planner.with_cache(std::sync::Arc::new(ShapleyCache::with_capacity(
            cfg.cache_capacity,
        )));
    }
    let mut executor = BatchExecutor::new(planner)
        .with_threads(cfg.threads)
        .with_measure(cfg.measure);
    if planner_cfg.fallback.is_none() {
        // The report stops at the first error anyway — abort the rest.
        executor = executor.with_fail_fast();
    }
    let report = executor.run(&lineages, n_endo, &Budget::unlimited(), &exact_cfg);
    if cfg.measure != Measure::Shapley {
        out.push_str(&format!("measure: {}\n", cfg.measure));
    }
    out.push_str(&format!(
        "{} distinct lineage structure(s); dedup hit rate {:.0}%; {} thread(s)",
        report.dedup.distinct,
        report.dedup.hit_rate() * 100.0,
        report.threads
    ));
    if cfg.cache_capacity > 0 {
        out.push_str(&format!(
            "; cache {} hit(s) / {} miss(es)",
            report.cache.hits, report.cache.misses
        ));
    }
    out.push_str(&format!(
        "; arithmetic {} fixed-limb / {} bignum pass(es), {} NTT convolution(s)",
        report.num.vli_hits, report.num.bignum_fallbacks, report.num.ntt_convolutions
    ));
    out.push('\n');

    for (tuple, item) in res.outputs.iter().zip(report.items) {
        out.push_str(&format!("{}\n", render_tuple(&tuple.tuple)));
        let result = item
            .result
            .map_err(|e| err(format!("attribution failed: {e}")))?;
        match result.values {
            EngineValues::Exact(values) => {
                let values: Vec<(FactId, Rational)> =
                    values.into_iter().map(|(v, r)| (FactId(v.0), r)).collect();
                render_exact(&mut out, &db, cfg.top, &values);
            }
            EngineValues::Approx(scores) => {
                if cfg.engine == EngineChoice::Auto {
                    out.push_str("  (exact pipeline exceeded its budget: CNF-Proxy ranking, not Shapley values)\n");
                }
                for (i, (fact, score)) in scores.iter().take(cfg.top).enumerate() {
                    out.push_str(&format!(
                        "  {}. {}  score {:.6}\n",
                        i + 1,
                        db.display_fact(FactId(fact.0)),
                        score
                    ));
                }
            }
        }
    }
    Ok(out)
}

/// Entry point shared by `main.rs` and the tests. `serve` switches to the
/// resident JSONL service on the process's stdin/stdout; everything else
/// is the classic one-shot query report.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    if args.first().is_some_and(|a| a == "serve") {
        let opts = parse_serve_args(&args[1..])?;
        if opts.listen.is_some() {
            run_listen(&opts)?;
            return Ok(String::new());
        }
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        run_serve(stdin.lock(), stdout.lock(), &opts)?;
        return Ok(String::new());
    }
    let cfg = parse_args(args)?;
    run(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// Writes the running-example database as CSVs into a fresh temp dir.
    fn flights_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("shapdb-cli-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("Flights.csv"),
            "src,dest\nJFK,CDG\nEWR,LHR\nBOS,LHR\nLHR,CDG\nLHR,ORY\nLAX,MUC\nMUC,ORY\nLHR,MUC\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("Airports.csv"),
            "name,country\nJFK,USA\nEWR,USA\nBOS,USA\nLAX,USA\nLHR,EN\nMUC,GR\nORY,FR\nCDG,FR\n",
        )
        .unwrap();
        dir
    }

    const FLIGHTS_QUERY: &str = "q() :- Airports(x, 'USA'), Airports(y, 'FR'), Flights(x, y) ; \
                                 q() :- Airports(x, 'USA'), Airports(z, 'FR'), Flights(x, y), Flights(y, z)";

    #[test]
    fn parse_args_full() {
        let cfg = parse_args(&args(&[
            "--db",
            "/tmp/x",
            "--query",
            "q() :- R(x)",
            "--endo",
            "R,S",
            "--top",
            "3",
            "--method",
            "exact",
            "--threads",
            "4",
            "--timeout-ms",
            "100",
            "--agg",
            "sum:1",
            "--cache-capacity",
            "64",
        ]))
        .unwrap();
        assert_eq!(cfg.db_dir, PathBuf::from("/tmp/x"));
        assert_eq!(
            cfg.endo.as_deref(),
            Some(&["R".to_string(), "S".to_string()][..])
        );
        assert_eq!(cfg.top, 3);
        assert_eq!(cfg.engine, EngineChoice::Exact);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.timeout, Duration::from_millis(100));
        assert_eq!(cfg.aggregate, Aggregate::Sum(1));
        assert_eq!(cfg.cache_capacity, 64);
    }

    #[test]
    fn cache_capacity_defaults_on_and_zero_disables() {
        let base = args(&["--db", "d", "--query", "q"]);
        assert_eq!(
            parse_args(&base).unwrap().cache_capacity,
            ShapleyCache::DEFAULT_CAPACITY
        );
        let dir = flights_dir("cache");
        // 0 = off: the report drops the cache column and still answers.
        let report = run_cli(&args(&[
            "--db",
            dir.to_str().unwrap(),
            "--query",
            FLIGHTS_QUERY,
            "--endo",
            "Flights",
            "--cache-capacity",
            "0",
        ]))
        .unwrap();
        assert!(report.contains("Flights(JFK, CDG)  43/105"), "{report}");
        assert!(!report.contains("cache"), "{report}");
        // Default: the cache line shows up (one distinct structure, first
        // sight = one miss).
        let report = run_cli(&args(&[
            "--db",
            dir.to_str().unwrap(),
            "--query",
            FLIGHTS_QUERY,
            "--endo",
            "Flights",
        ]))
        .unwrap();
        assert!(report.contains("cache 0 hit(s) / 1 miss(es)"), "{report}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_args_rejects_unknown() {
        assert!(parse_args(&args(&["--frobnicate"])).is_err());
        assert!(parse_args(&args(&["--db"])).is_err());
        assert!(parse_args(&args(&["--db", "d", "--query", "q", "--method", "magic"])).is_err());
        assert!(
            parse_args(&args(&["--db", "d"])).is_err(),
            "--query required"
        );
    }

    #[test]
    fn csv_splitting_handles_quotes() {
        assert_eq!(split_csv_line("a,b,c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(
            split_csv_line("\"x,y\",2,\"say \"\"hi\"\"\"").unwrap(),
            vec!["x,y", "2", "say \"hi\""]
        );
        assert!(split_csv_line("\"unterminated").is_err());
    }

    #[test]
    fn end_to_end_exact_reproduces_example_2_1() {
        let dir = flights_dir("exact");
        let report = run_cli(&args(&[
            "--db",
            dir.to_str().unwrap(),
            "--query",
            FLIGHTS_QUERY,
            "--endo",
            "Flights",
            "--method",
            "exact",
            "--top",
            "2",
        ]))
        .unwrap();
        assert!(
            report.contains("16 fact(s), 8 endogenous; 1 answer(s)"),
            "{report}"
        );
        assert!(report.contains("Flights(JFK, CDG)  43/105"), "{report}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn end_to_end_proxy_ranks_facts() {
        let dir = flights_dir("proxy");
        let report = run_cli(&args(&[
            "--db",
            dir.to_str().unwrap(),
            "--query",
            FLIGHTS_QUERY,
            "--endo",
            "Flights",
            "--method",
            "proxy",
        ]))
        .unwrap();
        assert!(report.contains("score"), "{report}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn end_to_end_count_aggregate() {
        let dir = flights_dir("count");
        let report = run_cli(&args(&[
            "--db",
            dir.to_str().unwrap(),
            "--query",
            "q(y) :- Flights(x, y)",
            "--endo",
            "Flights",
            "--agg",
            "count",
        ]))
        .unwrap();
        assert!(report.contains("COUNT(*) attribution:"), "{report}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn engine_flag_selects_forced_engines() {
        let dir = flights_dir("engine");
        // readonce: the flights lineage factors, exact values come out.
        let report = run_cli(&args(&[
            "--db",
            dir.to_str().unwrap(),
            "--query",
            FLIGHTS_QUERY,
            "--endo",
            "Flights",
            "--engine",
            "readonce",
        ]))
        .unwrap();
        assert!(report.contains("Flights(JFK, CDG)  43/105"), "{report}");
        assert!(
            report.contains("1 distinct lineage structure(s)"),
            "{report}"
        );
        // montecarlo: approximate scores.
        let report = run_cli(&args(&[
            "--db",
            dir.to_str().unwrap(),
            "--query",
            FLIGHTS_QUERY,
            "--endo",
            "Flights",
            "--engine",
            "montecarlo",
        ]))
        .unwrap();
        assert!(report.contains("score"), "{report}");
        // Unknown engines are a clean error.
        assert!(parse_args(&args(&["--db", "d", "--query", "q", "--engine", "magic"])).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn measure_flag_switches_the_attribution() {
        let dir = flights_dir("measure");
        let base = [
            "--db",
            dir.to_str().unwrap(),
            "--query",
            FLIGHTS_QUERY,
            "--endo",
            "Flights",
        ];
        // Banzhaf of the running example: a1 = 21/64.
        let mut cli = args(&base);
        cli.extend(args(&["--measure", "banzhaf"]));
        let report = run_cli(&cli).unwrap();
        assert!(report.contains("measure: banzhaf"), "{report}");
        assert!(report.contains("Flights(JFK, CDG)  21/64"), "{report}");
        // Responsibility: every fact of the lineage carries ρ = 1/4.
        let mut cli = args(&base);
        cli.extend(args(&["--measure", "responsibility"]));
        let report = run_cli(&cli).unwrap();
        assert!(report.contains("Flights(JFK, CDG)  1/4"), "{report}");
        // shap_score is accepted as an alias; values are exact rationals.
        let mut cli = args(&base);
        cli.extend(args(&["--measure", "shap_score"]));
        let report = run_cli(&cli).unwrap();
        assert!(report.contains("measure: shap-score"), "{report}");
        // Unknown measures and --agg conflicts are clean errors.
        let e = parse_args(&args(&["--db", "d", "--query", "q", "--measure", "owen"])).unwrap_err();
        assert!(e.0.contains("unknown measure"), "{e}");
        let e = parse_args(&args(&[
            "--db",
            "d",
            "--query",
            "q",
            "--measure",
            "banzhaf",
            "--agg",
            "count",
        ]))
        .unwrap_err();
        assert!(e.0.contains("linearity"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn top_k_reports_the_best_answers() {
        let dir = flights_dir("topk");
        let report = run_cli(&args(&[
            "--db",
            dir.to_str().unwrap(),
            "--query",
            FLIGHTS_QUERY,
            "--endo",
            "Flights",
            "--top-k",
            "1",
        ]))
        .unwrap();
        assert!(report.contains("top-1: solved 1 answer(s)"), "{report}");
        assert!(report.contains("best fact value 43/105"), "{report}");
        assert!(report.contains("Flights(JFK, CDG)  43/105"), "{report}");
        // k = 0 prunes every answer without a single solve.
        let report = run_cli(&args(&[
            "--db",
            dir.to_str().unwrap(),
            "--query",
            "q(y) :- Flights(x, y)",
            "--endo",
            "Flights",
            "--top-k",
            "0",
        ]))
        .unwrap();
        assert!(report.contains("top-0: solved 0 answer(s)"), "{report}");
        assert!(report.contains("pruned 4 answer(s)"), "{report}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn top_k_rejects_incompatible_flags() {
        let base = &["--db", "d", "--query", "q", "--top-k", "2"];
        let with = |extra: &[&str]| {
            let mut cli = args(base);
            cli.extend(args(extra));
            parse_args(&cli)
        };
        let e = with(&["--agg", "count"]).unwrap_err();
        assert!(e.0.contains("--agg"), "{e}");
        let e = with(&["--measure", "banzhaf"]).unwrap_err();
        assert!(e.0.contains("Shapley bounds"), "{e}");
        let e = with(&["--engine", "proxy"]).unwrap_err();
        assert!(e.0.contains("exact"), "{e}");
        assert_eq!(with(&["--engine", "exact"]).unwrap().top_k, Some(2));
        assert_eq!(with(&[]).unwrap().top_k, Some(2));
    }

    #[test]
    fn default_auto_engine_reproduces_example_2_1() {
        let dir = flights_dir("auto");
        let report = run_cli(&args(&[
            "--db",
            dir.to_str().unwrap(),
            "--query",
            FLIGHTS_QUERY,
            "--endo",
            "Flights",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(report.contains("Flights(JFK, CDG)  43/105"), "{report}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_db_dir_is_a_clean_error() {
        let e = run_cli(&args(&[
            "--db",
            "/nonexistent-shapdb-dir",
            "--query",
            "q() :- R(x)",
        ]))
        .unwrap_err();
        assert!(e.0.contains("cannot read"), "{e}");
    }

    #[test]
    fn malformed_row_is_a_clean_error() {
        let dir = std::env::temp_dir().join(format!("shapdb-cli-test-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("R.csv"), "a,b\n1\n").unwrap();
        let e = run_cli(&args(&[
            "--db",
            dir.to_str().unwrap(),
            "--query",
            "q() :- R(x, y)",
        ]))
        .unwrap_err();
        assert!(e.0.contains("row 2 has 1 fields"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
