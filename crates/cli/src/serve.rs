//! `shapdb serve --jsonl` — the resident [`ShapleyService`] behind a
//! scriptable stdin/stdout protocol.
//!
//! One JSON object per input line is one attribution request; one JSON
//! object per output line is its response, **in request order**. No
//! network dependency: any load driver that can write lines to a pipe can
//! drive the resident process, which is exactly what `make bench-serve`
//! does.
//!
//! Request:
//!
//! ```json
//! {"id": 7, "lineage": [[0,1],[2,3]], "n_endo": 8}
//! ```
//!
//! * `id` — any JSON value, echoed back verbatim;
//! * `lineage` — the monotone DNF as an array of conjuncts (arrays of
//!   non-negative fact ids); ids are opaque *labels* of endogenous facts
//!   (they need not be `< n_endo`, but the number of **distinct** ids
//!   must not exceed `n_endo` — more distinct facts than the database
//!   holds is unsatisfiable and is rejected);
//! * `n_endo` — the number of endogenous facts;
//! * `engine` *(optional)* — a per-request policy override (same values as
//!   `--engine`); `timeout_ms` *(optional)* — per-request exact deadline;
//! * `measure` *(optional)* — the attribution measure: `"shapley"`
//!   (default), `"banzhaf"`, `"responsibility"`, or `"shap-score"`; an
//!   unknown string answers `{"id":...,"ok":false,"error":"unknown
//!   measure ..."}` with the request's `id` echoed. The shared result
//!   cache is measure-keyed, so one compiled structure serves every
//!   measure asked of it;
//! * `client` *(optional)* — an integer lane id: requests with different
//!   `client` values are scheduled fairly against each other.
//!
//! The protocol boundary enforces resource limits (every violation is an
//! `"ok":false` response, never a dropped connection): `n_endo` at most
//! `--max-n-endo` (per-fact result vectors are `O(n_endo)`, so an
//! unchecked `n_endo` — `as_u64` admits up to 2^53 — was a one-line
//! remote memory exhaustion), total lineage literals at most
//! `--max-lineage-literals`, and request lines at most `--max-line-bytes`
//! (longer lines are discarded without buffering them).
//!
//! Response: `{"id":7,"ok":true,"engine":"readonce",`
//! `"measure":"shapley","exact":true,"values":[[0,"1/2"],...]}` where
//! each value pair is `[fact, value]` —
//! the value is a **string** (an exact rational) when `"exact"` is true
//! and a **number** (an approximate score) otherwise; parse or solve
//! failures answer `{"id":...,"ok":false,"error":"..."}` instead. On EOF
//! the server drains in-flight work and emits one final
//! `{"stats":{...}}` line (queue totals, cache usage, wait times).
//!
//! Backpressure: submissions block the reading loop when the bounded
//! queue (`--queue-capacity`) is full — the classic pipe discipline — so
//! a flooding driver stalls instead of ballooning memory.

use crate::json::{escape, Json};
use crate::{err, CliError, EngineChoice};
use shapdb_circuit::{Dnf, VarId};
use shapdb_core::engine::{
    EngineValues, LineageRequest, Measure, Planner, ServiceClient, ServiceConfig, ServiceStats,
    ShapleyCache, ShapleyService, Submission,
};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

/// `serve` options (see [`crate::USAGE`]).
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Persistent worker threads (0 = all cores).
    pub workers: usize,
    /// Bound on queued submissions (`--queue-capacity`).
    pub queue_capacity: usize,
    /// Result-cache entries shared by every request (0 = off).
    pub cache_capacity: usize,
    /// Default engine policy for requests without their own.
    pub engine: EngineChoice,
    /// Default attribution measure for requests without their own
    /// (`--measure`, default Shapley).
    pub measure: Measure,
    /// Default exact-pipeline deadline.
    pub timeout: Duration,
    /// Socket address to serve on (`--listen`): `host:port` for TCP or a
    /// path (or `unix:path`) for a Unix socket. `None` serves stdin.
    pub listen: Option<String>,
    /// Append-only log backing the result cache (`--persist`): warm state
    /// replayed on startup, written through on every new exact result.
    pub persist: Option<std::path::PathBuf>,
    /// Largest accepted `n_endo` (`--max-n-endo`).
    pub max_n_endo: usize,
    /// Largest accepted total lineage literal count
    /// (`--max-lineage-literals`).
    pub max_lineage_literals: usize,
    /// Largest accepted request line in bytes (`--max-line-bytes`).
    pub max_line_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 0,
            queue_capacity: ServiceConfig::DEFAULT_QUEUE_CAPACITY,
            cache_capacity: ShapleyCache::DEFAULT_CAPACITY,
            engine: EngineChoice::Auto,
            measure: Measure::Shapley,
            timeout: Duration::from_millis(2500),
            listen: None,
            persist: None,
            max_n_endo: 1 << 20,
            max_lineage_literals: 1 << 20,
            max_line_bytes: 4 << 20,
        }
    }
}

/// What one serve session processed (the final stats line, structured).
#[derive(Clone, Debug)]
pub struct ServeSummary {
    /// Input lines answered (ok or error).
    pub responses: u64,
    /// Responses with `"ok":false`.
    pub errors: u64,
    /// The drained service's final stats.
    pub stats: ServiceStats,
}

/// One parsed request line.
pub(crate) struct Request {
    pub(crate) id: String,
    pub(crate) lineage: Dnf,
    pub(crate) n_endo: usize,
    pub(crate) client: Option<u64>,
    pub(crate) policy: Option<shapdb_core::engine::PlannerConfig>,
    pub(crate) measure: Measure,
}

impl Request {
    /// The owned service request this line stands for — shared by the
    /// stdin and socket front-ends so the measure/policy threading cannot
    /// drift between them.
    pub(crate) fn into_lineage_request(self) -> (String, Option<u64>, LineageRequest) {
        let mut r = LineageRequest::new(self.lineage, self.n_endo).with_measure(self.measure);
        if let Some(policy) = self.policy {
            r = r.with_policy(policy);
        }
        (self.id, self.client, r)
    }
}

/// Parses one request line. Failures return `(echoed id, why)` — the id
/// is recovered whenever the line was at least valid JSON, so error
/// responses stay correlatable (`"null"` only when the JSON itself is
/// broken).
pub(crate) fn parse_request(line: &str, opts: &ServeOptions) -> Result<Request, (String, String)> {
    let v = Json::parse(line).map_err(|why| ("null".to_string(), why))?;
    let id = v.get("id").map_or_else(|| "null".to_string(), Json::render);
    validate_request(&v, opts, id.clone()).map_err(|why| (id, why))
}

fn validate_request(v: &Json, opts: &ServeOptions, id: String) -> Result<Request, String> {
    let lineage_json = v
        .get("lineage")
        .and_then(Json::as_arr)
        .ok_or("missing \"lineage\" (array of conjuncts)")?;
    let mut lineage = Dnf::new();
    let mut literals = 0usize;
    for conj in lineage_json {
        let vars = conj.as_arr().ok_or("conjuncts must be arrays of ids")?;
        literals += vars.len();
        if literals > opts.max_lineage_literals {
            return Err(format!(
                "lineage exceeds {} total literals",
                opts.max_lineage_literals
            ));
        }
        let mut ids = Vec::with_capacity(vars.len());
        for f in vars {
            let f = f.as_u64().ok_or("fact ids must be non-negative integers")?;
            let f = u32::try_from(f).map_err(|_| "fact id exceeds u32".to_string())?;
            ids.push(VarId(f));
        }
        lineage.add_conjunct(ids);
    }
    let n_endo = v
        .get("n_endo")
        .and_then(Json::as_u64)
        .ok_or("missing \"n_endo\"")? as usize;
    // Result vectors are allocated O(n_endo) per fact: an unchecked
    // n_endo (as_u64 admits up to 2^53) is remote memory exhaustion.
    if n_endo > opts.max_n_endo {
        return Err(format!("n_endo {n_endo} exceeds limit {}", opts.max_n_endo));
    }
    // More *distinct* fact ids than endogenous facts is unsatisfiable
    // input; pre-fix it sailed through and panicked a persistent worker
    // inside Algorithm 1 (`|D_n| smaller than the circuit variables`),
    // leaving the client's wait hanging forever. Ids themselves are
    // labels and may exceed n_endo (see module docs).
    let distinct = lineage.vars().len();
    if distinct > n_endo {
        return Err(format!(
            "lineage references {distinct} distinct fact ids but n_endo is {n_endo}"
        ));
    }
    let client = v.get("client").and_then(Json::as_u64);
    let engine = match v.get("engine").and_then(Json::as_str) {
        Some(s) => Some(EngineChoice::parse(s).ok_or_else(|| format!("unknown engine `{s}`"))?),
        None => None,
    };
    let measure = match v.get("measure").and_then(Json::as_str) {
        Some(s) => Measure::parse(s).ok_or_else(|| format!("unknown measure `{s}`"))?,
        None => opts.measure,
    };
    let timeout_ms = v.get("timeout_ms").and_then(Json::as_u64);
    // A partial override inherits the *session's* settings for whatever it
    // leaves out — `{"engine":"exact"}` keeps the server's --timeout-ms,
    // `{"timeout_ms":50}` keeps the server's --engine.
    let policy = match (engine, timeout_ms) {
        (None, None) => None,
        (engine, timeout_ms) => {
            let choice = engine.unwrap_or(opts.engine);
            let timeout = timeout_ms.map_or(opts.timeout, Duration::from_millis);
            Some(choice.planner_config(timeout))
        }
    };
    Ok(Request {
        id,
        lineage,
        n_endo,
        client,
        policy,
        measure,
    })
}

pub(crate) fn render_ok(id: &str, result: &shapdb_core::engine::EngineResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64 + 24 * result.values.len());
    // `id` is re-rendered JSON, engine names are static idents, and exact
    // rationals print as digits and '/' — none need escaping.
    let _ = write!(
        out,
        "{{\"id\":{},\"ok\":true,\"engine\":\"{}\",\"measure\":\"{}\",\"exact\":{},\"values\":[",
        id,
        result.engine.name(),
        result.measure.name(),
        result.values.is_exact(),
    );
    match &result.values {
        EngineValues::Exact(pairs) => {
            for (i, (fact, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},\"{}\"]", fact.0, v);
            }
        }
        EngineValues::Approx(pairs) => {
            for (i, (fact, x)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{:.6}]", fact.0, x);
            }
        }
    }
    out.push_str("]}");
    out
}

pub(crate) fn render_err(id: &str, error: &str) -> String {
    format!("{{\"id\":{},\"ok\":false,\"error\":{}}}", id, escape(error))
}

pub(crate) fn render_stats(summary: &ServeSummary) -> String {
    let s = &summary.stats;
    let since_start = |name: &str| -> u64 {
        s.counters_since_start
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    format!(
        concat!(
            "{{\"stats\":{{\"responses\":{},\"errors\":{},\"submitted\":{},",
            "\"completed\":{},\"rejected\":{},\"workers\":{},",
            "\"queue_capacity\":{},\"clients\":{},\"engine_runs\":{},",
            "\"cache_hits\":{},\"cache_misses\":{},\"cache_bypasses\":{},",
            "\"kc_comp_cache_hits\":{},\"kc_comp_cache_misses\":{},",
            "\"kc_comp_cache_evictions\":{},",
            "\"measure_shapley\":{},\"measure_banzhaf\":{},",
            "\"measure_responsibility\":{},\"measure_shap_score\":{},",
            "\"vli_passes\":{},\"bignum_passes\":{},\"ntt_convolutions\":{},",
            "\"route_timings\":{},",
            "\"mean_wait_us\":{:.1}}}}}"
        ),
        summary.responses,
        summary.errors,
        s.submitted,
        s.completed,
        s.rejected,
        s.workers,
        s.queue_capacity,
        s.clients,
        s.engine_runs,
        s.cache.hits,
        s.cache.misses,
        s.cache.bypasses,
        since_start("kc.comp_cache_hits"),
        since_start("kc.comp_cache_misses"),
        since_start("kc.comp_cache_evictions"),
        since_start("measure.shapley"),
        since_start("measure.banzhaf"),
        since_start("measure.responsibility"),
        since_start("measure.shap_score"),
        since_start("num.vli_hits"),
        since_start("num.bignum_fallbacks"),
        since_start("num.ntt_convolutions"),
        render_route_timings(),
        s.mean_wait().as_nanos() as f64 / 1e3,
    )
}

/// The per-route compile/solve timing summaries as one JSON array.
/// Histograms are process-cumulative (they span every route of the
/// process, not just this session); routes that never ran are omitted.
fn render_route_timings() -> String {
    use std::fmt::Write as _;
    let mut out = String::from("[");
    for (i, t) in shapdb_metrics::timing::active_route_timings()
        .iter()
        .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            concat!(
                "{{\"name\":\"{}\",\"count\":{},\"mean_us\":{},",
                "\"p50_us\":{},\"p99_us\":{}}}"
            ),
            t.name,
            t.count,
            t.mean_us(),
            t.quantile_us(0.5),
            t.quantile_us(0.99),
        );
    }
    out.push(']');
    out
}

/// A response slot, kept in request order.
pub(crate) enum Slot {
    /// Answered immediately (parse error).
    Ready(String),
    /// Waiting on the service.
    Waiting(String, Submission),
}

impl Slot {
    pub(crate) fn is_done(&self) -> bool {
        match self {
            Slot::Ready(_) => true,
            Slot::Waiting(_, sub) => sub.is_done(),
        }
    }

    pub(crate) fn finish(self, errors: &mut u64) -> String {
        match self {
            Slot::Ready(line) => {
                *errors += 1;
                line
            }
            Slot::Waiting(id, sub) => match sub.wait() {
                Ok(result) => render_ok(&id, &result),
                Err(e) => {
                    *errors += 1;
                    render_err(&id, &e.to_string())
                }
            },
        }
    }
}

/// Builds the resident service a serve session (stdin or socket) runs
/// against: the session policy as planner, the shared result cache —
/// persistent when `--persist` names a log file — and the worker pool.
pub(crate) fn build_service(opts: &ServeOptions) -> Result<ShapleyService, CliError> {
    let mut planner = Planner::new(opts.engine.planner_config(opts.timeout));
    if opts.cache_capacity > 0 {
        let cache = match &opts.persist {
            Some(path) => ShapleyCache::with_persistence(opts.cache_capacity, path)
                .map_err(|e| err(format!("open persistent cache `{}`: {e}", path.display())))?,
            None => ShapleyCache::with_capacity(opts.cache_capacity),
        };
        planner = planner.with_cache(Arc::new(cache));
    }
    Ok(ShapleyService::new(
        planner,
        ServiceConfig {
            workers: opts.workers,
            queue_capacity: opts.queue_capacity,
            ..Default::default()
        },
    ))
}

/// One capped line read.
pub(crate) enum ReadLine {
    /// A complete line (terminator stripped), within the byte cap.
    Line(String),
    /// The line exceeded the cap; the remainder was discarded without
    /// buffering it. Answer with an error response and keep reading.
    TooLong,
    /// End of input.
    Eof,
}

/// Reads one `\n`-terminated request line, holding at most
/// `max_line_bytes + 1` bytes: a longer line is consumed to its newline
/// chunk-by-chunk and reported as [`ReadLine::TooLong`] — the unbounded
/// `read_line` was a one-line memory exhaustion from a hostile client.
pub(crate) fn read_request_line(
    input: &mut impl BufRead,
    max_line_bytes: usize,
) -> std::io::Result<ReadLine> {
    let mut buf = Vec::new();
    let mut overflowed = false;
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            if buf.is_empty() && !overflowed {
                return Ok(ReadLine::Eof);
            }
            break; // final line without a terminator
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let upto = newline.unwrap_or(chunk.len());
        if !overflowed {
            if buf.len() + upto > max_line_bytes {
                // Stop accumulating; keep consuming to the newline so the
                // session can continue past the hostile line.
                overflowed = true;
                buf.clear();
            } else {
                buf.extend_from_slice(&chunk[..upto]);
            }
        }
        match newline {
            Some(i) => {
                input.consume(i + 1);
                break;
            }
            None => {
                let len = chunk.len();
                input.consume(len);
            }
        }
    }
    if overflowed {
        return Ok(ReadLine::TooLong);
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    // Non-UTF-8 bytes become replacement characters and fail JSON parsing
    // downstream — an error response, not a dropped connection.
    Ok(ReadLine::Line(String::from_utf8_lossy(&buf).into_owned()))
}

/// Runs a serve session over arbitrary reader/writer pairs (the binary
/// passes stdin/stdout; tests and the bench pass buffers). Returns after
/// EOF, once every response and the final stats line are written.
pub fn run_serve(
    mut input: impl BufRead,
    mut output: impl Write,
    opts: &ServeOptions,
) -> Result<ServeSummary, CliError> {
    let service = build_service(opts)?;
    let mut clients: HashMap<u64, ServiceClient> = HashMap::new();
    let mut pending: VecDeque<Slot> = VecDeque::new();
    let mut responses = 0u64;
    let mut errors = 0u64;
    // Keep at most this many responses buffered: past it the reading loop
    // waits for the oldest request — bounded memory end to end.
    let max_pending = opts.queue_capacity.saturating_mul(2).max(64);

    let flush_ready = |pending: &mut VecDeque<Slot>,
                       output: &mut dyn Write,
                       block_first: bool,
                       responses: &mut u64,
                       errors: &mut u64|
     -> Result<(), CliError> {
        let mut force = block_first;
        while let Some(front) = pending.front() {
            if !force && !front.is_done() {
                break;
            }
            force = false;
            let line = pending.pop_front().expect("front exists").finish(errors);
            *responses += 1;
            writeln!(output, "{line}").map_err(|e| err(format!("write response: {e}")))?;
        }
        Ok(())
    };

    loop {
        let line = match read_request_line(&mut input, opts.max_line_bytes)
            .map_err(|e| err(format!("read request: {e}")))?
        {
            ReadLine::Eof => break,
            ReadLine::TooLong => {
                pending.push_back(Slot::Ready(render_err(
                    "null",
                    &format!("request line exceeds {} bytes", opts.max_line_bytes),
                )));
                let over = pending.len() > max_pending;
                flush_ready(&mut pending, &mut output, over, &mut responses, &mut errors)?;
                continue;
            }
            ReadLine::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line, opts) {
            Err((id, why)) => pending.push_back(Slot::Ready(render_err(&id, &why))),
            Ok(req) => {
                let (id, lane, request) = req.into_lineage_request();
                // Blocking submit: queue saturation stalls the reader (pipe
                // discipline) instead of dropping requests.
                let submitted = match lane {
                    Some(lane) => clients
                        .entry(lane)
                        .or_insert_with(|| service.client())
                        .submit_blocking(request),
                    None => service.submit_blocking(request),
                };
                match submitted {
                    Ok(sub) => pending.push_back(Slot::Waiting(id, sub)),
                    Err(e) => pending.push_back(Slot::Ready(render_err(&id, &e.to_string()))),
                }
            }
        }
        let over = pending.len() > max_pending;
        flush_ready(&mut pending, &mut output, over, &mut responses, &mut errors)?;
    }

    // EOF: park once on the *newest* ticket — with the fair FIFO lanes,
    // by the time it completes (almost) every earlier one has too, so the
    // in-order drain below runs without a reader/worker wakeup ping-pong
    // per response.
    if let Some(Slot::Waiting(_, sub)) = pending.back() {
        let _ = sub.wait();
    }
    while !pending.is_empty() {
        flush_ready(&mut pending, &mut output, true, &mut responses, &mut errors)?;
    }
    let stats = service.shutdown();
    let summary = ServeSummary {
        responses,
        errors,
        stats,
    };
    writeln!(output, "{}", render_stats(&summary)).map_err(|e| err(format!("write stats: {e}")))?;
    output
        .flush()
        .map_err(|e| err(format!("flush output: {e}")))?;
    Ok(summary)
}

/// Parses `serve` arguments (everything after the `serve` word).
pub fn parse_serve_args(args: &[String]) -> Result<ServeOptions, CliError> {
    let mut opts = ServeOptions::default();
    let mut jsonl = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = || {
            it.next()
                .ok_or_else(|| err(format!("missing value after `{arg}`")))
        };
        match arg.as_str() {
            "--jsonl" => jsonl = true,
            "--listen" => opts.listen = Some(take()?.clone()),
            "--persist" => opts.persist = Some(std::path::PathBuf::from(take()?)),
            "--max-n-endo" => {
                opts.max_n_endo = take()?
                    .parse()
                    .map_err(|_| err("--max-n-endo expects a positive integer"))?
            }
            "--max-lineage-literals" => {
                opts.max_lineage_literals = take()?
                    .parse()
                    .map_err(|_| err("--max-lineage-literals expects a positive integer"))?
            }
            "--max-line-bytes" => {
                opts.max_line_bytes = take()?
                    .parse()
                    .map_err(|_| err("--max-line-bytes expects a positive integer"))?
            }
            "--workers" | "--threads" => {
                opts.workers = take()?
                    .parse()
                    .map_err(|_| err("--workers expects a non-negative integer"))?
            }
            "--queue-capacity" => {
                opts.queue_capacity = take()?
                    .parse()
                    .map_err(|_| err("--queue-capacity expects a positive integer"))?
            }
            "--cache-capacity" => {
                opts.cache_capacity = take()?
                    .parse()
                    .map_err(|_| err("--cache-capacity expects a non-negative integer"))?
            }
            "--engine" => {
                let spec = take()?;
                opts.engine = EngineChoice::parse(spec)
                    .ok_or_else(|| err(format!("unknown engine `{spec}`")))?
            }
            "--measure" => {
                let spec = take()?;
                opts.measure =
                    Measure::parse(spec).ok_or_else(|| err(format!("unknown measure `{spec}`")))?
            }
            "--timeout-ms" => {
                let ms: u64 = take()?
                    .parse()
                    .map_err(|_| err("--timeout-ms expects an integer"))?;
                opts.timeout = Duration::from_millis(ms);
            }
            "--help" | "-h" => return Err(err(crate::USAGE)),
            other => return Err(err(format!("unknown serve argument `{other}`"))),
        }
    }
    match (jsonl, &opts.listen) {
        (false, None) => Err(err(
            "serve requires `--jsonl` (requests on stdin) or `--listen <addr>` (socket)",
        )),
        (true, Some(_)) => Err(err("`--jsonl` and `--listen` are mutually exclusive")),
        _ => Ok(opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn serve(input: &str, opts: &ServeOptions) -> (Vec<String>, ServeSummary) {
        let mut out = Vec::new();
        let summary = run_serve(Cursor::new(input.to_string()), &mut out, opts).unwrap();
        let text = String::from_utf8(out).unwrap();
        (text.lines().map(str::to_string).collect(), summary)
    }

    #[test]
    fn answers_requests_in_order_with_exact_values() {
        // The running example (43/105 on fact 0) plus a singleton.
        let input = concat!(
            r#"{"id": 1, "lineage": [[0],[1,3],[1,4],[2,3],[2,4],[5,6]], "n_endo": 8}"#,
            "\n",
            r#"{"id": 2, "lineage": [[9]], "n_endo": 8}"#,
            "\n",
        );
        let (lines, summary) = serve(
            input,
            &ServeOptions {
                workers: 2,
                ..Default::default()
            },
        );
        assert_eq!(lines.len(), 3, "two responses + stats");
        let first = Json::parse(&lines[0]).unwrap();
        assert_eq!(first.get("id").and_then(Json::as_u64), Some(1));
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(first.get("exact"), Some(&Json::Bool(true)));
        let values = first.get("values").and_then(Json::as_arr).unwrap();
        let top = values[0].as_arr().unwrap();
        assert_eq!(top[0].as_u64(), Some(0));
        assert_eq!(top[1].as_str(), Some("43/105"));
        let second = Json::parse(&lines[1]).unwrap();
        assert_eq!(second.get("id").and_then(Json::as_u64), Some(2));
        let stats = Json::parse(&lines[2]).unwrap();
        let s = stats.get("stats").unwrap();
        assert_eq!(s.get("responses").and_then(Json::as_u64), Some(2));
        assert_eq!(s.get("errors").and_then(Json::as_u64), Some(0));
        assert_eq!(summary.responses, 2);
        assert_eq!(summary.stats.completed, 2);
    }

    #[test]
    fn isomorphic_requests_share_the_cache() {
        let input = concat!(
            r#"{"id": 1, "lineage": [[0,10],[1,11]], "n_endo": 24}"#,
            "\n",
            r#"{"id": 2, "client": 7, "lineage": [[2,20],[3,21]], "n_endo": 24}"#,
            "\n",
        );
        let (lines, summary) = serve(
            input,
            &ServeOptions {
                workers: 1,
                ..Default::default()
            },
        );
        assert_eq!(summary.stats.cache.hits, 1, "second request hit");
        assert_eq!(summary.stats.engine_runs, 1);
        for line in &lines[..2] {
            let v = Json::parse(line).unwrap();
            let values = v.get("values").and_then(Json::as_arr).unwrap();
            for triple in values {
                assert_eq!(triple.as_arr().unwrap()[1].as_str(), Some("1/4"));
            }
        }
    }

    #[test]
    fn per_request_engine_override_and_errors() {
        let input = concat!(
            r#"{"id": "a", "lineage": [[0,1],[1,2],[0,2]], "n_endo": 3, "engine": "proxy"}"#,
            "\n",
            "this is not json\n",
            r#"{"id": 3, "n_endo": 3}"#,
            "\n",
        );
        let (lines, summary) = serve(input, &ServeOptions::default());
        let forced = Json::parse(&lines[0]).unwrap();
        assert_eq!(forced.get("engine").and_then(Json::as_str), Some("proxy"));
        assert_eq!(forced.get("exact"), Some(&Json::Bool(false)));
        let bad = Json::parse(&lines[1]).unwrap();
        assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));
        let missing = Json::parse(&lines[2]).unwrap();
        assert_eq!(missing.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            missing.get("id").and_then(Json::as_u64),
            Some(3),
            "a valid-JSON bad request echoes its id"
        );
        assert!(missing
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("lineage"));
        assert_eq!(summary.errors, 2);
    }

    #[test]
    fn measure_field_selects_the_measure_and_errors_echo_the_id() {
        // The running example under every measure in one session, plus an
        // unknown measure string that must answer with the request's id.
        let lineage = r#"[[0],[1,3],[1,4],[2,3],[2,4],[5,6]]"#;
        let input = format!(
            concat!(
                "{{\"id\": 1, \"lineage\": {l}, \"n_endo\": 8}}\n",
                "{{\"id\": 2, \"lineage\": {l}, \"n_endo\": 8, \"measure\": \"banzhaf\"}}\n",
                "{{\"id\": 3, \"lineage\": {l}, \"n_endo\": 8, \"measure\": \"responsibility\"}}\n",
                "{{\"id\": 4, \"lineage\": {l}, \"n_endo\": 8, \"measure\": \"shap_score\"}}\n",
                "{{\"id\": 5, \"lineage\": {l}, \"n_endo\": 8, \"measure\": \"owen\"}}\n",
            ),
            l = lineage
        );
        let (lines, summary) = serve(&input, &ServeOptions::default());
        assert_eq!(lines.len(), 6, "five responses + stats");
        let expect = [
            ("shapley", Some("43/105")),
            ("banzhaf", Some("21/64")),
            ("responsibility", Some("1/4")),
            ("shap-score", None),
        ];
        for (line, (measure, top)) in lines[..4].iter().zip(expect) {
            let v = Json::parse(line).unwrap();
            assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{measure}");
            assert_eq!(v.get("measure").and_then(Json::as_str), Some(measure));
            assert_eq!(v.get("exact"), Some(&Json::Bool(true)));
            if let Some(top) = top {
                let values = v.get("values").and_then(Json::as_arr).unwrap();
                assert_eq!(values[0].as_arr().unwrap()[1].as_str(), Some(top));
            }
        }
        let bad = Json::parse(&lines[4]).unwrap();
        assert_eq!(bad.get("id").and_then(Json::as_u64), Some(5));
        assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));
        assert!(bad
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("unknown measure `owen`"));
        assert_eq!(summary.errors, 1);
        // The stats line reports per-measure request counts. Concurrent
        // tests in this process bleed into the global window, so ≥ 1 is
        // the strongest safe assertion for each.
        let stats = Json::parse(&lines[5]).unwrap();
        let s = stats.get("stats").unwrap();
        for key in [
            "measure_shapley",
            "measure_banzhaf",
            "measure_responsibility",
            "measure_shap_score",
        ] {
            assert!(s.get(key).and_then(Json::as_u64).unwrap() >= 1, "{key}");
        }
    }

    #[test]
    fn session_default_measure_applies_to_plain_requests() {
        let input = concat!(
            r#"{"id": 1, "lineage": [[0],[1,3],[1,4],[2,3],[2,4],[5,6]], "n_endo": 8}"#,
            "\n",
        );
        let opts = ServeOptions {
            measure: Measure::Banzhaf,
            ..Default::default()
        };
        let (lines, _) = serve(input, &opts);
        let v = Json::parse(&lines[0]).unwrap();
        assert_eq!(v.get("measure").and_then(Json::as_str), Some("banzhaf"));
        let values = v.get("values").and_then(Json::as_arr).unwrap();
        assert_eq!(values[0].as_arr().unwrap()[1].as_str(), Some("21/64"));
    }

    #[test]
    fn partial_overrides_inherit_the_session_defaults() {
        // Session default: forced Monte Carlo. A request overriding ONLY
        // timeout_ms must keep the session's engine, not silently revert
        // to the compile-time `auto` default.
        let input = concat!(
            r#"{"id": 1, "lineage": [[0,1],[1,2],[0,2]], "n_endo": 3, "timeout_ms": 5000}"#,
            "\n",
        );
        let opts = ServeOptions {
            engine: EngineChoice::Forced(shapdb_core::engine::EngineKind::MonteCarlo),
            ..Default::default()
        };
        let (lines, _) = serve(input, &opts);
        let v = Json::parse(&lines[0]).unwrap();
        assert_eq!(
            v.get("engine").and_then(Json::as_str),
            Some("montecarlo"),
            "session engine survives a timeout-only override"
        );
    }

    #[test]
    fn serve_args_require_jsonl() {
        let to_args =
            |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };
        assert!(parse_serve_args(&to_args(&[])).is_err());
        let opts = parse_serve_args(&to_args(&[
            "--jsonl",
            "--queue-capacity",
            "8",
            "--workers",
            "2",
            "--engine",
            "exact",
            "--cache-capacity",
            "0",
        ]))
        .unwrap();
        assert_eq!(opts.queue_capacity, 8);
        assert_eq!(opts.workers, 2);
        assert_eq!(opts.engine, EngineChoice::Exact);
        assert_eq!(opts.cache_capacity, 0);
        assert!(parse_serve_args(&to_args(&["--jsonl", "--frobnicate"])).is_err());
    }

    #[test]
    fn adversarial_requests_get_error_responses_not_hung_workers() {
        // Each of these, pre-fix, either panicked a persistent worker
        // (hanging the client forever) or allocated unboundedly. All must
        // answer `"ok":false` and leave the service serving the final
        // valid request.
        let input = concat!(
            // More distinct fact ids (3) than n_endo (2): tripped the
            // `|D_n| smaller than the circuit variables` assert.
            r#"{"id": 1, "lineage": [[0],[1],[2]], "n_endo": 2}"#,
            "\n",
            // n_endo: 0 with a non-empty lineage — same panic.
            r#"{"id": 2, "lineage": [[5]], "n_endo": 0}"#,
            "\n",
            // Huge n_endo: O(n_endo) result allocation per fact.
            r#"{"id": 3, "lineage": [[0]], "n_endo": 9007199254740992}"#,
            "\n",
            // Above --max-n-endo but below 2^53.
            r#"{"id": 4, "lineage": [[0]], "n_endo": 2000000}"#,
            "\n",
            // Still standing afterwards.
            r#"{"id": 5, "lineage": [[0,1]], "n_endo": 4}"#,
            "\n",
        );
        let (lines, summary) = serve(input, &ServeOptions::default());
        assert_eq!(lines.len(), 6, "five responses + stats");
        for (line, id) in lines[..4].iter().zip(1u64..) {
            let v = Json::parse(line).unwrap();
            assert_eq!(v.get("id").and_then(Json::as_u64), Some(id));
            assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "request {id}");
        }
        let last = Json::parse(&lines[4]).unwrap();
        assert_eq!(last.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(summary.errors, 4);
        assert_eq!(summary.stats.completed, 1, "only the valid request ran");
    }

    #[test]
    fn oversized_lines_are_discarded_without_buffering() {
        // A ~2 MiB line against a 4 KiB cap, then a valid request: the
        // huge line answers an error without being held in memory, and
        // the session continues.
        let mut input = String::from(r#"{"id": 1, "lineage": [[0"#);
        while input.len() < 2 << 20 {
            input.push_str(",0");
        }
        input.push_str("]], \"n_endo\": 4}\n");
        input.push_str("{\"id\": 2, \"lineage\": [[0]], \"n_endo\": 4}\n");
        let (lines, summary) = serve(
            &input,
            &ServeOptions {
                max_line_bytes: 4096,
                ..Default::default()
            },
        );
        assert_eq!(lines.len(), 3);
        let first = Json::parse(&lines[0]).unwrap();
        assert_eq!(first.get("ok"), Some(&Json::Bool(false)));
        assert!(first
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("4096 bytes"));
        let second = Json::parse(&lines[1]).unwrap();
        assert_eq!(second.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(summary.errors, 1);
    }

    #[test]
    fn lineage_literal_cap_rejects_bulk_lineages() {
        let mut line = String::from(r#"{"id": 1, "lineage": [[0"#);
        for _ in 0..100 {
            line.push_str(",1");
        }
        line.push_str("]], \"n_endo\": 8}\n");
        let (lines, _) = serve(
            &line,
            &ServeOptions {
                max_lineage_literals: 64,
                ..Default::default()
            },
        );
        let v = Json::parse(&lines[0]).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert!(v
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("literals"));
    }

    #[test]
    fn serve_args_parse_listen_and_persist() {
        let to_args =
            |list: &[&str]| -> Vec<String> { list.iter().map(|s| s.to_string()).collect() };
        let opts = parse_serve_args(&to_args(&[
            "--listen",
            "127.0.0.1:0",
            "--persist",
            "/tmp/shap.cache",
            "--max-n-endo",
            "5000",
            "--max-lineage-literals",
            "1000",
            "--max-line-bytes",
            "65536",
        ]))
        .unwrap();
        assert_eq!(opts.listen.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(
            opts.persist.as_deref(),
            Some(std::path::Path::new("/tmp/shap.cache"))
        );
        assert_eq!(opts.max_n_endo, 5000);
        assert_eq!(opts.max_lineage_literals, 1000);
        assert_eq!(opts.max_line_bytes, 65536);
        // --jsonl and --listen together is a contradiction.
        assert!(parse_serve_args(&to_args(&["--jsonl", "--listen", "x:1"])).is_err());
    }

    #[test]
    fn tiny_queue_still_answers_everything_via_backpressure() {
        // 50 requests through a capacity-2 queue: blocking submits stall
        // the reader, nothing is dropped, responses stay in order.
        let mut input = String::new();
        for i in 0..50 {
            input.push_str(&format!(
                "{{\"id\": {i}, \"lineage\": [[{i},{}]], \"n_endo\": 200}}\n",
                i + 100
            ));
        }
        let (lines, summary) = serve(
            &input,
            &ServeOptions {
                workers: 2,
                queue_capacity: 2,
                ..Default::default()
            },
        );
        assert_eq!(summary.responses, 50);
        assert_eq!(summary.errors, 0);
        for (i, line) in lines[..50].iter().enumerate() {
            let v = Json::parse(line).unwrap();
            assert_eq!(v.get("id").and_then(Json::as_u64), Some(i as u64));
            assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        }
    }
}
