//! `shapdb serve --listen <addr>` — the JSONL protocol over real sockets.
//!
//! Same wire protocol as `--jsonl` (see [`crate::serve`]), served over a
//! TCP or Unix-domain socket instead of stdin/stdout: `--listen host:port`
//! binds TCP, `--listen unix:/path` (or any address containing `/`) binds
//! a Unix socket. Every accepted connection is an independent session —
//! its own parse state, its own response ordering, its own final
//! `{"stats":{...}}` line at client EOF — but all connections share ONE
//! resident [`ShapleyService`]: one worker pool, one result cache (disk
//! backed under `--persist`), so a lineage any client solved is a cache
//! hit for every later client, across connections *and* restarts.
//!
//! Concurrency model — std threads only, no async runtime:
//!
//! * an **accept thread** loops on the listener and spawns per-connection
//!   threads;
//! * each connection runs a **reader thread** (parse → validate → submit
//!   on the connection's own fair-queue lane) and a **writer thread**
//!   (finish each ticket in request order, write, flush per response so
//!   interactive clients see answers immediately);
//! * reader and writer meet at a bounded slot queue: a client that floods
//!   requests without reading responses stalls its own reader (classic
//!   pipe discipline), never the service or other connections.
//!
//! Failure containment: a client that disconnects mid-request only kills
//! its own connection threads — submitted work completes into the shared
//! cache, the writer's failed write marks the session dead, the reader
//! unblocks, and the service keeps serving everyone else. Teardown
//! ([`SocketServer::shutdown`]) closes the listener via a self-connect
//! wake-up, shuts both halves of every live connection, joins every
//! thread, and drains the service.

use crate::serve::{
    build_service, parse_request, read_request_line, render_err, render_stats, ReadLine,
    ServeOptions, ServeSummary, Slot,
};
use crate::{err, CliError};
use shapdb_core::engine::{ServiceClient, ServiceStats, ShapleyService};
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// A poisoned lock here means a peer thread panicked; the protected data
/// (slot queues, connection tables) stays structurally valid, so recover
/// the guard instead of cascading the panic through the whole server.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `unix:/path` (explicit) or anything containing a `/` names a Unix
/// socket; everything else is a TCP `host:port`.
fn unix_path(spec: &str) -> Option<&str> {
    if let Some(path) = spec.strip_prefix("unix:") {
        return Some(path);
    }
    spec.contains('/').then_some(spec)
}

/// One bound listening socket.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

/// One accepted connection; cloneable into independent read/write handles
/// over the same underlying socket.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    /// Shuts both directions down: a blocked reader sees EOF, a blocked
    /// writer sees an error. Used for forced teardown, so errors (the peer
    /// already gone) are ignored.
    fn shutdown_both(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Live-connection registry: a teardown handle per connection still
/// running, plus every thread ever spawned (finished threads join
/// instantly at shutdown).
#[derive(Default)]
struct ConnTable {
    next_id: u64,
    live: HashMap<u64, Conn>,
    threads: Vec<JoinHandle<()>>,
}

/// State shared by the accept thread, the connection threads, and the
/// shutdown path.
struct ServerShared {
    service: ShapleyService,
    opts: ServeOptions,
    closing: AtomicBool,
    conns: Mutex<ConnTable>,
}

/// Where the reader and writer threads of one connection meet: response
/// slots in request order, bounded so an unread backlog stalls the reader
/// rather than growing without bound.
struct SessionQueue {
    state: Mutex<SessionState>,
    /// Signaled when a slot is pushed (and when input ends).
    added: Condvar,
    /// Signaled when a slot is popped (blocked readers wait here).
    taken: Condvar,
}

#[derive(Default)]
struct SessionState {
    slots: VecDeque<Slot>,
    /// Reader hit EOF (or a read error): the writer drains and exits.
    input_done: bool,
    /// Writer hit a write error (client gone): the reader stops early.
    dead: bool,
}

impl SessionQueue {
    fn new() -> SessionQueue {
        SessionQueue {
            state: Mutex::new(SessionState::default()),
            added: Condvar::new(),
            taken: Condvar::new(),
        }
    }

    /// Blocking bounded push; `false` once the writer declared the
    /// connection dead.
    fn push(&self, slot: Slot, max_pending: usize) -> bool {
        let mut st = lock_recover(&self.state);
        while st.slots.len() >= max_pending && !st.dead {
            st = self.taken.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        if st.dead {
            return false;
        }
        st.slots.push_back(slot);
        drop(st);
        self.added.notify_one();
        true
    }

    fn finish_input(&self) {
        lock_recover(&self.state).input_done = true;
        self.added.notify_one();
    }

    /// Blocking pop for the writer; `None` when input is done and every
    /// slot has been taken.
    fn pop(&self) -> Option<Slot> {
        let mut st = lock_recover(&self.state);
        loop {
            if let Some(slot) = st.slots.pop_front() {
                drop(st);
                self.taken.notify_one();
                return Some(slot);
            }
            if st.input_done {
                return None;
            }
            st = self.added.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The client is gone: drop any unwritten slots (their submissions
    /// complete into the shared cache regardless) and release a reader
    /// blocked on a full queue.
    fn mark_dead(&self) {
        let mut st = lock_recover(&self.state);
        st.dead = true;
        st.slots.clear();
        drop(st);
        self.taken.notify_all();
    }
}

/// The reading half of one connection session: mirrors the stdin loop in
/// [`crate::serve::run_serve`], but pushes response slots to the writer
/// thread instead of flushing them inline.
fn session_reader(
    mut input: BufReader<Conn>,
    queue: &SessionQueue,
    service: &ShapleyService,
    opts: &ServeOptions,
) {
    // The connection's default lane: fair against other connections. The
    // optional per-request "client" field sub-divides further, namespaced
    // to this connection.
    let lane = service.client();
    let mut sublanes: HashMap<u64, ServiceClient> = HashMap::new();
    let max_pending = opts.queue_capacity.saturating_mul(2).max(64);
    loop {
        let line = match read_request_line(&mut input, opts.max_line_bytes) {
            Err(_) | Ok(ReadLine::Eof) => break,
            Ok(ReadLine::TooLong) => {
                let msg = format!("request line exceeds {} bytes", opts.max_line_bytes);
                if !queue.push(Slot::Ready(render_err("null", &msg)), max_pending) {
                    break;
                }
                continue;
            }
            Ok(ReadLine::Line(line)) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let slot = match parse_request(&line, opts) {
            Err((id, why)) => Slot::Ready(render_err(&id, &why)),
            Ok(req) => {
                let (id, sublane, request) = req.into_lineage_request();
                let submitted = match sublane {
                    Some(sub) => sublanes
                        .entry(sub)
                        .or_insert_with(|| service.client())
                        .submit_blocking(request),
                    None => lane.submit_blocking(request),
                };
                match submitted {
                    Ok(sub) => Slot::Waiting(id, sub),
                    Err(e) => Slot::Ready(render_err(&id, &e.to_string())),
                }
            }
        };
        if !queue.push(slot, max_pending) {
            break;
        }
    }
    queue.finish_input();
}

/// The writing half: finishes tickets in request order, one flushed line
/// per response, then the session stats line at EOF. A failed write means
/// the client disconnected — mark the session dead and bail.
fn session_writer(mut output: Conn, queue: &SessionQueue, service: &ShapleyService) {
    let mut responses = 0u64;
    let mut errors = 0u64;
    while let Some(slot) = queue.pop() {
        let mut line = slot.finish(&mut errors);
        responses += 1;
        line.push('\n');
        if output.write_all(line.as_bytes()).is_err() {
            queue.mark_dead();
            return;
        }
    }
    let summary = ServeSummary {
        responses,
        errors,
        stats: service.stats(),
    };
    let mut line = render_stats(&summary);
    line.push('\n');
    let _ = output.write_all(line.as_bytes());
}

/// Runs one accepted connection to completion (thread body).
fn run_connection(conn: Conn, shared: &ServerShared, id: u64) {
    // Reader and writer need independent handles on the same socket; if
    // the clone fails (fd exhaustion) the connection is simply dropped.
    if let Ok(write_half) = conn.try_clone() {
        let queue = SessionQueue::new();
        std::thread::scope(|scope| {
            scope.spawn(|| session_writer(write_half, &queue, &shared.service));
            session_reader(BufReader::new(conn), &queue, &shared.service, &shared.opts);
        });
    }
    lock_recover(&shared.conns).live.remove(&id);
}

/// A resident JSONL server bound to a socket. Construct with
/// [`SocketServer::bind`]; it serves until [`SocketServer::shutdown`] (or
/// [`SocketServer::serve_forever`] for the CLI path).
pub struct SocketServer {
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
    /// The resolved address: the actual port for TCP (so `:0` works), the
    /// path for Unix.
    addr: String,
    /// Socket file to unlink at shutdown (Unix only).
    cleanup: Option<PathBuf>,
}

/// Binds a Unix socket, reclaiming a **stale** socket file: a server
/// killed without graceful shutdown leaves its file behind, and a naive
/// rebind fails with `AddrInUse` — breaking exactly the crash-restart
/// path `--persist` exists for. On `AddrInUse`, probe the path with a
/// connect: if something answers, a live server really owns it (error
/// out); if the connection is refused, the file is a corpse — unlink it
/// and bind again.
#[cfg(unix)]
fn bind_unix(path: &str) -> Result<UnixListener, CliError> {
    match UnixListener::bind(path) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
            if UnixStream::connect(path).is_ok() {
                return Err(err(format!(
                    "bind unix socket `{path}`: a server is already listening there"
                )));
            }
            std::fs::remove_file(path)
                .map_err(|e| err(format!("reclaim stale socket `{path}`: {e}")))?;
            UnixListener::bind(path).map_err(|e| err(format!("bind unix socket `{path}`: {e}")))
        }
        Err(e) => Err(err(format!("bind unix socket `{path}`: {e}"))),
    }
}

impl SocketServer {
    /// Binds `opts.listen`, builds the shared service (replaying the
    /// persistent cache when `--persist` is set), and starts accepting.
    pub fn bind(opts: &ServeOptions) -> Result<SocketServer, CliError> {
        let spec = opts
            .listen
            .as_deref()
            .ok_or_else(|| err("--listen address required for socket mode"))?;
        let (listener, addr, cleanup) = match unix_path(spec) {
            #[cfg(unix)]
            Some(path) => {
                let l = bind_unix(path)?;
                (
                    Listener::Unix(l),
                    path.to_string(),
                    Some(PathBuf::from(path)),
                )
            }
            #[cfg(not(unix))]
            Some(path) => {
                return Err(err(format!(
                    "unix socket `{path}` unsupported on this platform"
                )))
            }
            None => {
                let l = TcpListener::bind(spec).map_err(|e| err(format!("bind `{spec}`: {e}")))?;
                let addr = l
                    .local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| spec.to_string());
                (Listener::Tcp(l), addr, None)
            }
        };
        let shared = Arc::new(ServerShared {
            service: build_service(opts)?,
            opts: opts.clone(),
            closing: AtomicBool::new(false),
            conns: Mutex::new(ConnTable::default()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(listener, &accept_shared));
        Ok(SocketServer {
            shared,
            accept: Some(accept),
            addr,
            cleanup,
        })
    }

    /// The bound address: `ip:port` for TCP (the real port, so binding
    /// `:0` is discoverable), the path for Unix sockets.
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// Point-in-time stats of the shared service (see
    /// [`ShapleyService::stats`]) — the live-server observability hook the
    /// net bench uses to pin "warm replays ran zero engines".
    pub fn stats(&self) -> ServiceStats {
        self.shared.service.stats()
    }

    /// Blocks on the accept loop — the CLI path, which serves until the
    /// process dies. (Tests use [`SocketServer::shutdown`] instead.)
    pub fn serve_forever(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Graceful teardown: stop accepting, close both halves of every live
    /// connection (blocked readers see EOF), join every thread, drain the
    /// service. Returns the service's final stats.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shared.closing.store(true, Ordering::SeqCst);
        // The accept thread is parked in accept(); a throwaway self-connect
        // wakes it to observe `closing`.
        match unix_path(&self.addr) {
            #[cfg(unix)]
            Some(path) => {
                let _ = UnixStream::connect(path);
            }
            #[cfg(not(unix))]
            Some(_) => {}
            None => {
                let _ = TcpStream::connect(&self.addr);
            }
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let threads = {
            let mut table = lock_recover(&self.shared.conns);
            for conn in table.live.values() {
                conn.shutdown_both();
            }
            std::mem::take(&mut table.threads)
        };
        for h in threads {
            let _ = h.join();
        }
        if let Some(path) = &self.cleanup {
            let _ = std::fs::remove_file(path);
        }
        // Close BEFORE reading stats: close joins the workers, so every
        // completed-counter increment lands in the returned snapshot.
        self.shared.service.close();
        self.shared.service.stats()
    }
}

fn accept_loop(listener: Listener, shared: &Arc<ServerShared>) {
    loop {
        let conn = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => {
                if shared.closing.load(Ordering::SeqCst) {
                    return;
                }
                continue; // transient accept failure (EMFILE, ECONNABORTED)
            }
        };
        if shared.closing.load(Ordering::SeqCst) {
            return; // the shutdown self-connect (or a late client)
        }
        let id = {
            let mut table = lock_recover(&shared.conns);
            let id = table.next_id;
            table.next_id += 1;
            // A teardown handle so shutdown can unblock this connection's
            // reader; if the clone fails the connection still runs, it is
            // just not force-closable.
            if let Ok(handle) = conn.try_clone() {
                table.live.insert(id, handle);
            }
            id
        };
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || run_connection(conn, &conn_shared, id));
        lock_recover(&shared.conns).threads.push(handle);
    }
}

/// CLI entry for `shapdb serve --listen <addr>`: binds, announces the
/// resolved address on stderr (stdout stays protocol-clean), and serves
/// until the process is killed.
pub fn run_listen(opts: &ServeOptions) -> Result<(), CliError> {
    let server = SocketServer::bind(opts)?;
    eprintln!("shapdb serve: listening on {}", server.local_addr());
    server.serve_forever();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use std::io::BufRead;

    fn request(id: u64, lineage: &str, n_endo: usize) -> String {
        format!("{{\"id\": {id}, \"lineage\": {lineage}, \"n_endo\": {n_endo}}}\n")
    }

    /// Connects a TCP client to the server.
    fn connect(server: &SocketServer) -> TcpStream {
        TcpStream::connect(server.local_addr()).unwrap()
    }

    fn read_json_line(reader: &mut impl BufRead) -> Json {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        Json::parse(line.trim_end()).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"))
    }

    #[test]
    fn tcp_session_answers_interactively_then_stats_on_eof() {
        let server = SocketServer::bind(&ServeOptions {
            listen: Some("127.0.0.1:0".to_string()),
            workers: 1,
            ..Default::default()
        })
        .unwrap();
        let mut client = connect(&server);
        let mut reader = std::io::BufReader::new(client.try_clone().unwrap());

        // Interactive: a response must arrive while the connection is
        // still open for writing (per-response flush, no EOF needed).
        client
            .write_all(request(1, "[[0],[1,3],[1,4],[2,3],[2,4],[5,6]]", 8).as_bytes())
            .unwrap();
        let first = read_json_line(&mut reader);
        assert_eq!(first.get("id").and_then(Json::as_u64), Some(1));
        assert_eq!(first.get("ok"), Some(&Json::Bool(true)));
        let top = first.get("values").and_then(Json::as_arr).unwrap()[0]
            .as_arr()
            .unwrap();
        assert_eq!(top[1].as_str(), Some("43/105"));

        // Second round-trip on the same connection, then EOF → stats.
        client.write_all(request(2, "[[9]]", 8).as_bytes()).unwrap();
        let second = read_json_line(&mut reader);
        assert_eq!(second.get("id").and_then(Json::as_u64), Some(2));
        client.shutdown(Shutdown::Write).unwrap();
        let stats = read_json_line(&mut reader);
        let s = stats.get("stats").unwrap();
        assert_eq!(s.get("responses").and_then(Json::as_u64), Some(2));
        assert_eq!(s.get("errors").and_then(Json::as_u64), Some(0));

        let final_stats = server.shutdown();
        assert_eq!(final_stats.completed, 2);
    }

    #[cfg(unix)]
    #[test]
    fn stale_unix_socket_file_is_reclaimed_but_a_live_server_is_not() {
        let path = std::env::temp_dir().join(format!("shapdb-stale-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let opts = ServeOptions {
            listen: Some(format!("unix:{}", path.display())),
            workers: 1,
            ..Default::default()
        };
        // A killed server leaves its socket file behind: simulate by
        // binding and leaking the listener's file.
        UnixListener::bind(&path).unwrap();
        // (the listener is dropped here, but the file stays)
        assert!(path.exists(), "stale socket file present");
        let server = SocketServer::bind(&opts).expect("rebind over a stale socket file");
        // While it is LIVE, a second bind must refuse, not steal the path.
        let conflict = match SocketServer::bind(&opts) {
            Err(e) => e,
            Ok(_) => panic!("stole a live server's socket"),
        };
        assert!(conflict.0.contains("already listening"));
        // The live server still works after the refused bind.
        let mut client = UnixStream::connect(&path).unwrap();
        let mut reader = std::io::BufReader::new(client.try_clone().unwrap());
        client.write_all(request(1, "[[0]]", 4).as_bytes()).unwrap();
        let v = read_json_line(&mut reader);
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        server.shutdown();
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        let path = std::env::temp_dir().join(format!("shapdb-listen-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let server = SocketServer::bind(&ServeOptions {
            listen: Some(format!("unix:{}", path.display())),
            workers: 1,
            ..Default::default()
        })
        .unwrap();
        let mut client = UnixStream::connect(&path).unwrap();
        let mut reader = std::io::BufReader::new(client.try_clone().unwrap());
        client
            .write_all(request(7, "[[0,1],[2,3]]", 8).as_bytes())
            .unwrap();
        let v = read_json_line(&mut reader);
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        server.shutdown();
        assert!(!path.exists(), "socket file removed at shutdown");
    }

    #[test]
    fn disconnecting_client_leaves_the_service_serving() {
        let server = SocketServer::bind(&ServeOptions {
            listen: Some("127.0.0.1:0".to_string()),
            workers: 1,
            ..Default::default()
        })
        .unwrap();
        // A rude client: submits work (one valid request, one torn half
        // request with no newline) and vanishes without reading a byte.
        {
            let mut rude = connect(&server);
            rude.write_all(request(1, "[[0,1]]", 4).as_bytes()).unwrap();
            rude.write_all(b"{\"id\": 2, \"lineage\": [[0").unwrap();
        } // dropped here — mid-request disconnect

        // A polite client on a fresh connection still gets served.
        let mut polite = connect(&server);
        let mut reader = std::io::BufReader::new(polite.try_clone().unwrap());
        polite
            .write_all(request(3, "[[4],[5]]", 8).as_bytes())
            .unwrap();
        let v = read_json_line(&mut reader);
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        drop(polite);
        drop(reader);

        let stats = server.shutdown();
        // Both valid submissions (the rude client's and the polite one's)
        // completed; the torn trailing request never parsed.
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn restarted_server_answers_warm_from_the_persistent_cache() {
        let dir = std::env::temp_dir().join(format!("shapdb-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let opts = ServeOptions {
            listen: Some("127.0.0.1:0".to_string()),
            persist: Some(dir.join("results.shapdbc")),
            workers: 1,
            ..Default::default()
        };
        let drive = |server: &SocketServer| {
            let mut client = connect(server);
            let mut reader = std::io::BufReader::new(client.try_clone().unwrap());
            for (id, lineage) in [(1, "[[0],[1,2]]"), (2, "[[0,1],[2,3],[4,5]]")] {
                client
                    .write_all(request(id, lineage, 8).as_bytes())
                    .unwrap();
                let v = read_json_line(&mut reader);
                assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "request {id}");
                assert_eq!(v.get("exact"), Some(&Json::Bool(true)));
            }
        };

        // Cold server: two engine runs, written through to disk.
        let cold = SocketServer::bind(&opts).unwrap();
        drive(&cold);
        let cold_stats = cold.shutdown();
        assert_eq!(cold_stats.engine_runs, 2);
        assert_eq!(cold_stats.cache.misses, 2);

        // Restarted server, same log: every answer comes from the
        // replayed cache — zero engine runs.
        let warm = SocketServer::bind(&opts).unwrap();
        drive(&warm);
        let warm_stats = warm.shutdown();
        assert_eq!(warm_stats.engine_runs, 0, "warm replay recomputed");
        assert_eq!(warm_stats.cache.hits, 2);
        assert_eq!(warm_stats.cache.misses, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn adversarial_lines_over_the_socket_answer_errors_and_keep_serving() {
        let server = SocketServer::bind(&ServeOptions {
            listen: Some("127.0.0.1:0".to_string()),
            max_line_bytes: 4096,
            workers: 1,
            ..Default::default()
        })
        .unwrap();
        let mut client = connect(&server);
        let mut reader = std::io::BufReader::new(client.try_clone().unwrap());

        // An over-long line, a worker-panicking shape, then a valid one.
        let mut huge = String::from("{\"id\": 1, \"lineage\": [[0");
        while huge.len() < 64 << 10 {
            huge.push_str(",0");
        }
        huge.push_str("]], \"n_endo\": 4}\n");
        client.write_all(huge.as_bytes()).unwrap();
        client
            .write_all(request(2, "[[0],[1],[2]]", 2).as_bytes())
            .unwrap();
        client
            .write_all(request(3, "[[0,1]]", 4).as_bytes())
            .unwrap();

        let too_long = read_json_line(&mut reader);
        assert_eq!(too_long.get("ok"), Some(&Json::Bool(false)));
        assert!(too_long
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("4096 bytes"));
        let unsat = read_json_line(&mut reader);
        assert_eq!(unsat.get("id").and_then(Json::as_u64), Some(2));
        assert_eq!(unsat.get("ok"), Some(&Json::Bool(false)));
        let ok = read_json_line(&mut reader);
        assert_eq!(ok.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(ok.get("ok"), Some(&Json::Bool(true)));

        drop(client);
        drop(reader);
        let stats = server.shutdown();
        assert_eq!(stats.completed, 1, "only the valid request ran");
    }
}
