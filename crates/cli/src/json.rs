//! A minimal JSON reader/writer for the `serve --jsonl` protocol.
//!
//! Hand-rolled on purpose: the build is fully offline (no serde), and the
//! protocol needs only objects, arrays, strings, numbers, booleans and
//! null. Numbers are kept as `f64` — the protocol's integers (fact ids,
//! counts) stay well inside the 2⁵³ exact range.

/// One parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document (trailing non-whitespace is an
    /// error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` on non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the value back to compact JSON (used to echo request ids).
    pub fn render(&self) -> String {
        match self {
            Json::Null => "null".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
                    format!("{}", *x as i64)
                } else {
                    format!("{x}")
                }
            }
            Json::Str(s) => escape(s),
            Json::Arr(v) => {
                let parts: Vec<String> = v.iter().map(Json::render).collect();
                format!("[{}]", parts.join(","))
            }
            Json::Obj(fields) => {
                let parts: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("{}:{}", escape(k), v.render()))
                    .collect();
                format!("{{{}}}", parts.join(","))
            }
        }
    }
}

/// Escapes a string into a quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through verbatim.
                    let start = self.pos;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = text.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_shape() {
        let v = Json::parse(r#"{"id": 7, "lineage": [[0,1],[2]], "n_endo": 8}"#).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("n_endo").and_then(Json::as_u64), Some(8));
        let lineage = v.get("lineage").and_then(Json::as_arr).unwrap();
        assert_eq!(lineage.len(), 2);
        assert_eq!(lineage[0].as_arr().unwrap()[1].as_u64(), Some(1));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_scalars_and_strings() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(
            Json::parse(r#""a\"b\\c\nAπ""#).unwrap(),
            Json::Str("a\"b\\c\nAπ".to_string())
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn render_roundtrips() {
        for text in [
            r#"{"id":7,"ok":true,"values":[[0,"1/2",0.5]],"err":null}"#,
            r#"["say \"hi\"",-3,1.5]"#,
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v);
        }
    }

    #[test]
    fn escape_covers_control_characters() {
        assert_eq!(escape("a\"b"), r#""a\"b""#);
        assert_eq!(escape("x\u{1}"), "\"x\\u0001\"");
    }
}
