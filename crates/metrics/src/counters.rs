//! Process-wide engine counters and per-run dedup statistics.
//!
//! The engine layer (planner + batch executor in `shapdb_core`) records its
//! operational behaviour here: how many lineage tasks were submitted, how
//! many distinct structures were actually solved, how often the structural
//! dedup hit, and whether the hierarchical-query classifier ever disagreed
//! with the read-once factorizer (it never should; the counter exists to
//! catch regressions in production).
//!
//! The static [`Counter`]s are cumulative across the whole process — the
//! ops-style view. Per-run, race-free numbers (what tests assert on) travel
//! in each batch report as a [`DedupStats`] snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

/// A named monotonic counter (atomic, cheap, shareable from any thread).
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A new counter starting at zero.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The counter's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds 1; returns the new value.
    pub fn incr(&self) -> u64 {
        self.add(1)
    }

    /// Adds `n`; returns the new value.
    pub fn add(&self, n: u64) -> u64 {
        self.value.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests; production counters are monotonic).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Lineage tasks submitted to batch executors.
pub static BATCH_TASKS: Counter = Counter::new("batch.tasks");
/// Distinct lineage structures actually solved by batch executors.
pub static BATCH_DISTINCT: Counter = Counter::new("batch.distinct_lineages");
/// Tasks answered from a structurally-identical lineage's result.
pub static BATCH_DEDUP_HITS: Counter = Counter::new("batch.dedup_hits");
/// Engine `solve` invocations (any engine, batch or direct).
pub static ENGINE_SOLVES: Counter = Counter::new("engine.solves");
/// Lineages the planner routed to knowledge compilation.
pub static PLANNER_KC_ROUTES: Counter = Counter::new("planner.kc_routes");
/// KC-routed lineages wide enough for the top-down compiler (a subset of
/// `planner.kc_routes`).
pub static PLANNER_KC_TOPDOWN_ROUTES: Counter = Counter::new("planner.kc_topdown_routes");
/// Lineages the planner routed to the read-once fast path.
pub static PLANNER_READ_ONCE_ROUTES: Counter = Counter::new("planner.read_once_routes");
/// Tiny non-read-once lineages the planner routed to naive enumeration
/// (cheaper than factorization + compilation below the configured size).
pub static PLANNER_NAIVE_ROUTES: Counter = Counter::new("planner.naive_routes");
/// Hierarchical self-join-free queries whose lineage did *not* factor —
/// a theory violation that must stay at zero.
pub static PLANNER_HIERARCHICAL_DISAGREEMENTS: Counter =
    Counter::new("planner.hierarchical_disagreements");
/// Result-cache lookups answered from a stored canonical result.
pub static CACHE_HITS: Counter = Counter::new("cache.hits");
/// Result-cache lookups that found no entry (the structure was solved and,
/// when exact, stored).
pub static CACHE_MISSES: Counter = Counter::new("cache.misses");
/// Result-cache entries evicted to make room (LRU order).
pub static CACHE_EVICTIONS: Counter = Counter::new("cache.evictions");
/// Tasks that skipped the result cache entirely (inexact plan, dedup off,
/// or caching disabled).
pub static CACHE_BYPASSES: Counter = Counter::new("cache.bypasses");
/// Absorption-minimization passes over DNF lineages
/// (`shapdb_circuit::Dnf::minimize`).
pub static CIRCUIT_MINIMIZE_PASSES: Counter = Counter::new("circuit.minimize_passes");
/// Read-once factorization attempts (`shapdb_circuit::factor` and the
/// pre-minimized variant behind `fingerprint`).
pub static CIRCUIT_FACTOR_PASSES: Counter = Counter::new("circuit.factor_passes");
/// Tasks submitted to resident `ShapleyService` instances (accepted into
/// the queue; rejected submissions count in `service.rejected`).
pub static SERVICE_SUBMITTED: Counter = Counter::new("service.submitted");
/// Tasks a `ShapleyService` completed (fulfilled their ticket).
pub static SERVICE_COMPLETED: Counter = Counter::new("service.completed");
/// Submissions rejected with `SubmitError::Saturated` (backpressure).
pub static SERVICE_REJECTED: Counter = Counter::new("service.rejected");
/// Nanoseconds tasks spent queued before a worker picked them up.
pub static SERVICE_WAIT_NS: Counter = Counter::new("service.wait_ns");
/// Algorithm-1 DP passes that ran on a fixed-limb `Vli` tier (the per-gate
/// binomial cap proved every coefficient fits a stack integer).
pub static NUM_VLI_HITS: Counter = Counter::new("num.vli_hits");
/// Algorithm-1 DP passes that fell back to heap `BigUint` arithmetic
/// (coefficient cap past the widest fixed-limb tier).
pub static NUM_BIGNUM_FALLBACKS: Counter = Counter::new("num.bignum_fallbacks");
/// ∧-gate coefficient convolutions executed via the modular NTT/CRT path
/// instead of schoolbook multiplication.
pub static NUM_NTT_CONVOLUTIONS: Counter = Counter::new("num.ntt_convolutions");
/// Cross-lineage component-cache probes answered with a stored d-DNNF
/// fragment (the top-down compiler skipped compiling that component).
pub static KC_COMP_CACHE_HITS: Counter = Counter::new("kc.comp_cache_hits");
/// Cross-lineage component-cache probes that found no entry (the component
/// was compiled and, when small enough, stored).
pub static KC_COMP_CACHE_MISSES: Counter = Counter::new("kc.comp_cache_misses");
/// Cross-lineage component-cache entries evicted to stay under the node
/// capacity (least-recently-used order).
pub static KC_COMP_CACHE_EVICTIONS: Counter = Counter::new("kc.comp_cache_evictions");
/// Lineage tasks asking for the Shapley measure (any surface).
pub static MEASURE_SHAPLEY: Counter = Counter::new("measure.shapley");
/// Lineage tasks asking for the Banzhaf measure.
pub static MEASURE_BANZHAF: Counter = Counter::new("measure.banzhaf");
/// Lineage tasks asking for the responsibility measure.
pub static MEASURE_RESPONSIBILITY: Counter = Counter::new("measure.responsibility");
/// Lineage tasks asking for the SHAP-score measure.
pub static MEASURE_SHAP_SCORE: Counter = Counter::new("measure.shap_score");
/// Answers the top-k admission loop fully solved (their structure group was
/// compiled and evaluated).
pub static TOPK_SOLVED: Counter = Counter::new("topk.solved");
/// Answers the top-k admission loop pruned: their Shapley upper bound fell
/// strictly below the k-th solved score, so no compile was spent on them.
pub static TOPK_PRUNED: Counter = Counter::new("topk.pruned");
/// Structure-level bound computations performed by the top-k path (one per
/// distinct lineage structure per ranking call).
pub static TOPK_BOUND_PASSES: Counter = Counter::new("topk.bound_passes");

/// The full counter registry, in a fixed order (the [`snapshot`] /
/// [`CounterSnapshot`] row order).
fn registry() -> [&'static Counter; 32] {
    [
        &BATCH_TASKS,
        &BATCH_DISTINCT,
        &BATCH_DEDUP_HITS,
        &ENGINE_SOLVES,
        &PLANNER_KC_ROUTES,
        &PLANNER_KC_TOPDOWN_ROUTES,
        &PLANNER_READ_ONCE_ROUTES,
        &PLANNER_NAIVE_ROUTES,
        &PLANNER_HIERARCHICAL_DISAGREEMENTS,
        &CACHE_HITS,
        &CACHE_MISSES,
        &CACHE_EVICTIONS,
        &CACHE_BYPASSES,
        &CIRCUIT_MINIMIZE_PASSES,
        &CIRCUIT_FACTOR_PASSES,
        &SERVICE_SUBMITTED,
        &SERVICE_COMPLETED,
        &SERVICE_REJECTED,
        &SERVICE_WAIT_NS,
        &NUM_VLI_HITS,
        &NUM_BIGNUM_FALLBACKS,
        &NUM_NTT_CONVOLUTIONS,
        &KC_COMP_CACHE_HITS,
        &KC_COMP_CACHE_MISSES,
        &KC_COMP_CACHE_EVICTIONS,
        &MEASURE_SHAPLEY,
        &MEASURE_BANZHAF,
        &MEASURE_RESPONSIBILITY,
        &MEASURE_SHAP_SCORE,
        &TOPK_SOLVED,
        &TOPK_PRUNED,
        &TOPK_BOUND_PASSES,
    ]
}

/// Snapshot of every registered counter, for reports and debugging.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    registry().iter().map(|c| (c.name(), c.get())).collect()
}

/// A point-in-time capture of the whole counter registry, for *scoped*
/// readings of the process-global counters.
///
/// The static [`Counter`]s are cumulative across the process: two
/// concurrent services (or parallel tests) both increment the same cells,
/// so absolute values mix every actor's activity. A snapshot taken at a
/// scope's start turns the cumulative cells into a delta — the activity
/// since *this* scope began. Deltas still include any concurrent actor's
/// increments during the window (the cells are shared); for race-free
/// per-run numbers use the per-run stats structs ([`DedupStats`],
/// [`CacheRunStats`], the service's own stats), which never touch the
/// globals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    values: Vec<(&'static str, u64)>,
}

impl CounterSnapshot {
    /// Captures the current value of every registered counter.
    pub fn take() -> CounterSnapshot {
        CounterSnapshot { values: snapshot() }
    }

    /// The captured value of one counter (0 for unknown names).
    pub fn get(&self, name: &str) -> u64 {
        self.values
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Per-counter increments between `earlier` and `self` (saturating:
    /// a counter reset inside the window reads as 0, not a wraparound).
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> Vec<(&'static str, u64)> {
        self.values
            .iter()
            .map(|&(name, v)| (name, v.saturating_sub(earlier.get(name))))
            .collect()
    }

    /// [`CounterSnapshot::delta_since`] for a single counter.
    pub fn delta_of(&self, earlier: &CounterSnapshot, name: &str) -> u64 {
        self.get(name).saturating_sub(earlier.get(name))
    }
}

/// A named process-wide level (unlike the monotonic [`Counter`]s): queue
/// depths, in-flight task counts. Signed so a racy dec-before-inc
/// interleaving can never wrap.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: std::sync::atomic::AtomicI64,
}

impl Gauge {
    /// A new gauge at zero.
    pub const fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            value: std::sync::atomic::AtomicI64::new(0),
        }
    }

    /// The gauge's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` (negative to decrease); returns the new level.
    pub fn add(&self, n: i64) -> i64 {
        self.value.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Increments by one; returns the new level.
    pub fn incr(&self) -> i64 {
        self.add(1)
    }

    /// Decrements by one; returns the new level.
    pub fn decr(&self) -> i64 {
        self.add(-1)
    }

    /// Sets an absolute level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Tasks currently waiting in `ShapleyService` queues, process-wide.
pub static SERVICE_QUEUE_DEPTH: Gauge = Gauge::new("service.queue_depth");
/// Tasks currently being solved by `ShapleyService` workers, process-wide.
pub static SERVICE_IN_FLIGHT: Gauge = Gauge::new("service.in_flight");
/// The autotuned NTT crossover: the smallest convolution output length (at
/// the 8-limb reference coefficient width) the calibrated cost model routes
/// to the NTT/CRT path. Set once per process at first wide convolution.
pub static NUM_NTT_CROSSOVER_LEN: Gauge = Gauge::new("num.ntt_crossover_len");

/// Snapshot of every registered gauge.
pub fn gauges() -> Vec<(&'static str, i64)> {
    [
        &SERVICE_QUEUE_DEPTH,
        &SERVICE_IN_FLIGHT,
        &NUM_NTT_CROSSOVER_LEN,
    ]
    .iter()
    .map(|g| (g.name(), g.get()))
    .collect()
}

/// Arithmetic-substrate activity of one run (a [`CounterSnapshot`] delta of
/// the `num.*` counters — see the snapshot caveats: concurrent actors in
/// the same process bleed into the window).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NumRunStats {
    /// DP passes that ran on a fixed-limb `Vli` tier.
    pub vli_hits: u64,
    /// DP passes that fell back to heap `BigUint` arithmetic.
    pub bignum_fallbacks: u64,
    /// ∧-gate convolutions executed via the NTT/CRT path.
    pub ntt_convolutions: u64,
}

impl NumRunStats {
    /// The `num.*` increments between two registry snapshots.
    pub fn delta(after: &CounterSnapshot, before: &CounterSnapshot) -> NumRunStats {
        NumRunStats {
            vli_hits: after.delta_of(before, "num.vli_hits"),
            bignum_fallbacks: after.delta_of(before, "num.bignum_fallbacks"),
            ntt_convolutions: after.delta_of(before, "num.ntt_convolutions"),
        }
    }
}

/// Dedup statistics of one batch run (race-free, unlike the globals).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Lineage tasks submitted.
    pub tasks: usize,
    /// Distinct lineage structures (by canonical fingerprint).
    pub distinct: usize,
    /// Tasks that reused another task's computation (`tasks - distinct`):
    /// exact results translate bit-identically through the renaming, and
    /// sampling groups share one estimate drawn with the group's total
    /// sample budget.
    pub reused: usize,
}

impl DedupStats {
    /// Tasks answered by reusing another task's computation.
    pub fn hits(&self) -> usize {
        self.reused
    }

    /// Fraction of tasks answered by reuse (0.0 when the batch is empty).
    pub fn hit_rate(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        self.hits() as f64 / self.tasks as f64
    }
}

/// Component-cache activity of one run (a [`CounterSnapshot`] delta of the
/// `kc.comp_cache_*` counters — same caveats as [`NumRunStats`]: concurrent
/// actors in the same process bleed into the window).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KcCacheRunStats {
    /// Component probes answered with a stored d-DNNF fragment.
    pub hits: u64,
    /// Component probes that found no entry.
    pub misses: u64,
    /// Entries evicted to stay under the node capacity.
    pub evictions: u64,
}

impl KcCacheRunStats {
    /// The `kc.comp_cache_*` increments between two registry snapshots.
    pub fn delta(after: &CounterSnapshot, before: &CounterSnapshot) -> KcCacheRunStats {
        KcCacheRunStats {
            hits: after.delta_of(before, "kc.comp_cache_hits"),
            misses: after.delta_of(before, "kc.comp_cache_misses"),
            evictions: after.delta_of(before, "kc.comp_cache_evictions"),
        }
    }

    /// Fraction of probes answered from the cache (0.0 when none).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / lookups as f64
    }
}

/// Cache involvement of one batch run (race-free, unlike the globals):
/// how many distinct structures were answered from the cross-query result
/// cache, how many were solved and stored, and how many skipped the cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheRunStats {
    /// Distinct structures answered from the cache without an engine run.
    pub hits: usize,
    /// Distinct structures looked up, not found, and solved.
    pub misses: usize,
    /// Distinct structures (or tasks, with dedup off) that skipped the
    /// cache: inexact plans, no fingerprint, or caching disabled.
    pub bypasses: usize,
}

impl CacheRunStats {
    /// Fraction of cache-eligible structures answered from the cache
    /// (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / lookups as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        static C: Counter = Counter::new("test.counter");
        assert_eq!(C.get(), 0);
        assert_eq!(C.incr(), 1);
        assert_eq!(C.add(4), 5);
        assert_eq!(C.name(), "test.counter");
        C.reset();
        assert_eq!(C.get(), 0);
    }

    #[test]
    fn snapshot_lists_registered_counters() {
        let names: Vec<&str> = snapshot().iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"batch.dedup_hits"));
        assert!(names.contains(&"planner.hierarchical_disagreements"));
        assert!(names.contains(&"cache.hits"));
        assert!(names.contains(&"cache.evictions"));
        assert!(names.contains(&"circuit.factor_passes"));
        assert!(names.contains(&"service.submitted"));
        assert!(names.contains(&"service.wait_ns"));
        assert!(names.contains(&"measure.shapley"));
        assert!(names.contains(&"measure.banzhaf"));
        assert!(names.contains(&"measure.responsibility"));
        assert!(names.contains(&"measure.shap_score"));
        assert!(names.contains(&"topk.solved"));
        assert!(names.contains(&"topk.pruned"));
        assert!(names.contains(&"topk.bound_passes"));
    }

    #[test]
    fn counter_snapshot_deltas_are_scoped() {
        let before = CounterSnapshot::take();
        SERVICE_SUBMITTED.add(3);
        SERVICE_COMPLETED.add(2);
        let after = CounterSnapshot::take();
        assert!(after.delta_of(&before, "service.submitted") >= 3);
        assert!(after.delta_of(&before, "service.completed") >= 2);
        assert_eq!(after.delta_of(&before, "service.unknown"), 0);
        let deltas = after.delta_since(&before);
        let of = |name: &str| deltas.iter().find(|(n, _)| *n == name).unwrap().1;
        assert!(of("service.submitted") >= 3);
        // Deltas never go negative (saturating), even after a reset.
        assert_eq!(before.delta_of(&after, "service.submitted"), 0);
    }

    #[test]
    fn gauge_levels_move_both_ways() {
        static G: Gauge = Gauge::new("test.gauge");
        assert_eq!(G.get(), 0);
        assert_eq!(G.incr(), 1);
        assert_eq!(G.add(4), 5);
        assert_eq!(G.decr(), 4);
        G.set(-2);
        assert_eq!(G.get(), -2);
        assert_eq!(G.name(), "test.gauge");
        G.set(0);
        let names: Vec<&str> = gauges().iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"service.queue_depth"));
        assert!(names.contains(&"service.in_flight"));
    }

    #[test]
    fn cache_run_stats_hit_rate() {
        let s = CacheRunStats {
            hits: 3,
            misses: 1,
            bypasses: 2,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheRunStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn dedup_stats_rates() {
        let s = DedupStats {
            tasks: 8,
            distinct: 2,
            reused: 6,
        };
        assert_eq!(s.hits(), 6);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(DedupStats::default().hit_rate(), 0.0);
    }
}
