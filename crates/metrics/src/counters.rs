//! Process-wide engine counters and per-run dedup statistics.
//!
//! The engine layer (planner + batch executor in `shapdb_core`) records its
//! operational behaviour here: how many lineage tasks were submitted, how
//! many distinct structures were actually solved, how often the structural
//! dedup hit, and whether the hierarchical-query classifier ever disagreed
//! with the read-once factorizer (it never should; the counter exists to
//! catch regressions in production).
//!
//! The static [`Counter`]s are cumulative across the whole process — the
//! ops-style view. Per-run, race-free numbers (what tests assert on) travel
//! in each batch report as a [`DedupStats`] snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

/// A named monotonic counter (atomic, cheap, shareable from any thread).
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A new counter starting at zero.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The counter's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds 1; returns the new value.
    pub fn incr(&self) -> u64 {
        self.add(1)
    }

    /// Adds `n`; returns the new value.
    pub fn add(&self, n: u64) -> u64 {
        self.value.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests; production counters are monotonic).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Lineage tasks submitted to batch executors.
pub static BATCH_TASKS: Counter = Counter::new("batch.tasks");
/// Distinct lineage structures actually solved by batch executors.
pub static BATCH_DISTINCT: Counter = Counter::new("batch.distinct_lineages");
/// Tasks answered from a structurally-identical lineage's result.
pub static BATCH_DEDUP_HITS: Counter = Counter::new("batch.dedup_hits");
/// Engine `solve` invocations (any engine, batch or direct).
pub static ENGINE_SOLVES: Counter = Counter::new("engine.solves");
/// Lineages the planner routed to knowledge compilation.
pub static PLANNER_KC_ROUTES: Counter = Counter::new("planner.kc_routes");
/// Lineages the planner routed to the read-once fast path.
pub static PLANNER_READ_ONCE_ROUTES: Counter = Counter::new("planner.read_once_routes");
/// Tiny non-read-once lineages the planner routed to naive enumeration
/// (cheaper than factorization + compilation below the configured size).
pub static PLANNER_NAIVE_ROUTES: Counter = Counter::new("planner.naive_routes");
/// Hierarchical self-join-free queries whose lineage did *not* factor —
/// a theory violation that must stay at zero.
pub static PLANNER_HIERARCHICAL_DISAGREEMENTS: Counter =
    Counter::new("planner.hierarchical_disagreements");
/// Result-cache lookups answered from a stored canonical result.
pub static CACHE_HITS: Counter = Counter::new("cache.hits");
/// Result-cache lookups that found no entry (the structure was solved and,
/// when exact, stored).
pub static CACHE_MISSES: Counter = Counter::new("cache.misses");
/// Result-cache entries evicted to make room (LRU order).
pub static CACHE_EVICTIONS: Counter = Counter::new("cache.evictions");
/// Tasks that skipped the result cache entirely (inexact plan, dedup off,
/// or caching disabled).
pub static CACHE_BYPASSES: Counter = Counter::new("cache.bypasses");
/// Absorption-minimization passes over DNF lineages
/// (`shapdb_circuit::Dnf::minimize`).
pub static CIRCUIT_MINIMIZE_PASSES: Counter = Counter::new("circuit.minimize_passes");
/// Read-once factorization attempts (`shapdb_circuit::factor` and the
/// pre-minimized variant behind `fingerprint`).
pub static CIRCUIT_FACTOR_PASSES: Counter = Counter::new("circuit.factor_passes");

/// Snapshot of every registered counter, for reports and debugging.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    [
        &BATCH_TASKS,
        &BATCH_DISTINCT,
        &BATCH_DEDUP_HITS,
        &ENGINE_SOLVES,
        &PLANNER_KC_ROUTES,
        &PLANNER_READ_ONCE_ROUTES,
        &PLANNER_NAIVE_ROUTES,
        &PLANNER_HIERARCHICAL_DISAGREEMENTS,
        &CACHE_HITS,
        &CACHE_MISSES,
        &CACHE_EVICTIONS,
        &CACHE_BYPASSES,
        &CIRCUIT_MINIMIZE_PASSES,
        &CIRCUIT_FACTOR_PASSES,
    ]
    .iter()
    .map(|c| (c.name(), c.get()))
    .collect()
}

/// Dedup statistics of one batch run (race-free, unlike the globals).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Lineage tasks submitted.
    pub tasks: usize,
    /// Distinct lineage structures (by canonical fingerprint).
    pub distinct: usize,
    /// Tasks that actually reused another task's computation. Usually
    /// `tasks - distinct`, but sampling-planned tasks are re-drawn per
    /// member (each runs its own engine) and don't count as reuse.
    pub reused: usize,
}

impl DedupStats {
    /// Tasks answered by reusing another task's computation.
    pub fn hits(&self) -> usize {
        self.reused
    }

    /// Fraction of tasks answered by reuse (0.0 when the batch is empty).
    pub fn hit_rate(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        self.hits() as f64 / self.tasks as f64
    }
}

/// Cache involvement of one batch run (race-free, unlike the globals):
/// how many distinct structures were answered from the cross-query result
/// cache, how many were solved and stored, and how many skipped the cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheRunStats {
    /// Distinct structures answered from the cache without an engine run.
    pub hits: usize,
    /// Distinct structures looked up, not found, and solved.
    pub misses: usize,
    /// Distinct structures (or tasks, with dedup off) that skipped the
    /// cache: inexact plans, no fingerprint, or caching disabled.
    pub bypasses: usize,
}

impl CacheRunStats {
    /// Fraction of cache-eligible structures answered from the cache
    /// (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / lookups as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        static C: Counter = Counter::new("test.counter");
        assert_eq!(C.get(), 0);
        assert_eq!(C.incr(), 1);
        assert_eq!(C.add(4), 5);
        assert_eq!(C.name(), "test.counter");
        C.reset();
        assert_eq!(C.get(), 0);
    }

    #[test]
    fn snapshot_lists_registered_counters() {
        let names: Vec<&str> = snapshot().iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"batch.dedup_hits"));
        assert!(names.contains(&"planner.hierarchical_disagreements"));
        assert!(names.contains(&"cache.hits"));
        assert!(names.contains(&"cache.evictions"));
        assert!(names.contains(&"circuit.factor_passes"));
    }

    #[test]
    fn cache_run_stats_hit_rate() {
        let s = CacheRunStats {
            hits: 3,
            misses: 1,
            bypasses: 2,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheRunStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn dedup_stats_rates() {
        let s = DedupStats {
            tasks: 8,
            distinct: 2,
            reused: 6,
        };
        assert_eq!(s.hits(), 6);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(DedupStats::default().hit_rate(), 0.0);
        // Sampling-expanded members run their own engines: no reuse.
        let sampling = DedupStats {
            tasks: 8,
            distinct: 1,
            reused: 0,
        };
        assert_eq!(sampling.hit_rate(), 0.0);
    }
}
