//! Process-wide engine counters and per-run dedup statistics.
//!
//! The engine layer (planner + batch executor in `shapdb_core`) records its
//! operational behaviour here: how many lineage tasks were submitted, how
//! many distinct structures were actually solved, how often the structural
//! dedup hit, and whether the hierarchical-query classifier ever disagreed
//! with the read-once factorizer (it never should; the counter exists to
//! catch regressions in production).
//!
//! The static [`Counter`]s are cumulative across the whole process — the
//! ops-style view. Per-run, race-free numbers (what tests assert on) travel
//! in each batch report as a [`DedupStats`] snapshot.

use std::sync::atomic::{AtomicU64, Ordering};

/// A named monotonic counter (atomic, cheap, shareable from any thread).
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A new counter starting at zero.
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// The counter's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds 1; returns the new value.
    pub fn incr(&self) -> u64 {
        self.add(1)
    }

    /// Adds `n`; returns the new value.
    pub fn add(&self, n: u64) -> u64 {
        self.value.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (tests; production counters are monotonic).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Lineage tasks submitted to batch executors.
pub static BATCH_TASKS: Counter = Counter::new("batch.tasks");
/// Distinct lineage structures actually solved by batch executors.
pub static BATCH_DISTINCT: Counter = Counter::new("batch.distinct_lineages");
/// Tasks answered from a structurally-identical lineage's result.
pub static BATCH_DEDUP_HITS: Counter = Counter::new("batch.dedup_hits");
/// Engine `solve` invocations (any engine, batch or direct).
pub static ENGINE_SOLVES: Counter = Counter::new("engine.solves");
/// Lineages the planner routed to knowledge compilation.
pub static PLANNER_KC_ROUTES: Counter = Counter::new("planner.kc_routes");
/// Lineages the planner routed to the read-once fast path.
pub static PLANNER_READ_ONCE_ROUTES: Counter = Counter::new("planner.read_once_routes");
/// Hierarchical self-join-free queries whose lineage did *not* factor —
/// a theory violation that must stay at zero.
pub static PLANNER_HIERARCHICAL_DISAGREEMENTS: Counter =
    Counter::new("planner.hierarchical_disagreements");

/// Snapshot of every registered counter, for reports and debugging.
pub fn snapshot() -> Vec<(&'static str, u64)> {
    [
        &BATCH_TASKS,
        &BATCH_DISTINCT,
        &BATCH_DEDUP_HITS,
        &ENGINE_SOLVES,
        &PLANNER_KC_ROUTES,
        &PLANNER_READ_ONCE_ROUTES,
        &PLANNER_HIERARCHICAL_DISAGREEMENTS,
    ]
    .iter()
    .map(|c| (c.name(), c.get()))
    .collect()
}

/// Dedup statistics of one batch run (race-free, unlike the globals).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Lineage tasks submitted.
    pub tasks: usize,
    /// Distinct lineage structures solved.
    pub distinct: usize,
}

impl DedupStats {
    /// Tasks answered by reusing another task's computation.
    pub fn hits(&self) -> usize {
        self.tasks - self.distinct
    }

    /// Fraction of tasks answered by reuse (0.0 when the batch is empty).
    pub fn hit_rate(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        self.hits() as f64 / self.tasks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        static C: Counter = Counter::new("test.counter");
        assert_eq!(C.get(), 0);
        assert_eq!(C.incr(), 1);
        assert_eq!(C.add(4), 5);
        assert_eq!(C.name(), "test.counter");
        C.reset();
        assert_eq!(C.get(), 0);
    }

    #[test]
    fn snapshot_lists_registered_counters() {
        let names: Vec<&str> = snapshot().iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"batch.dedup_hits"));
        assert!(names.contains(&"planner.hierarchical_disagreements"));
    }

    #[test]
    fn dedup_stats_rates() {
        let s = DedupStats {
            tasks: 8,
            distinct: 2,
        };
        assert_eq!(s.hits(), 6);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(DedupStats::default().hit_rate(), 0.0);
    }
}
