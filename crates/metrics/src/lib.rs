//! # shapdb-metrics — ranking-quality and error metrics
//!
//! The measures §6.2 of the paper uses to compare the inexact methods
//! against the exact ground truth:
//!
//! * [`ndcg`] / [`ndcg_at_k`] — normalized discounted cumulative gain of a
//!   candidate ranking against ground-truth relevances;
//! * [`precision_at_k`] — overlap of the top-k sets;
//! * [`l1_error`] / [`l2_error`] — mean absolute / mean squared error of the
//!   estimated values;
//! * [`kendall_tau`] — rank correlation (an extra not in the paper, useful
//!   for the ablation reports);
//! * [`Summary`] — mean/percentile aggregation used by Table 1's columns;
//! * [`counters`] — process-wide engine counters (batch dedup hit rate,
//!   planner routing, hierarchical-vs-factorizer disagreements, service
//!   queue gauges), the scoped [`counters::CounterSnapshot`] delta reader,
//!   and the per-run [`counters::DedupStats`] snapshot batch reports carry;
//! * [`timing`] — per-route compile/solve timing histograms (log₂-µs
//!   buckets), the ground truth a learned planner cost model trains on.

pub mod counters;
pub mod timing;

pub use counters::{Counter, CounterSnapshot, DedupStats, Gauge, KcCacheRunStats, NumRunStats};
pub use timing::{TimingHisto, TimingSnapshot};

use std::cmp::Ordering;

/// Indices `0..n` sorted by decreasing score (ties broken by index for
/// determinism).
pub fn ranking_of(scores: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| match scores[b].partial_cmp(&scores[a]) {
        Some(Ordering::Equal) | None => a.cmp(&b),
        Some(o) => o,
    });
    idx
}

/// DCG of `ranking` (a permutation prefix of item indices) with ground-truth
/// `relevance` per item: `Σ rel[ranking[i]] / log2(i+2)`.
fn dcg(ranking: &[usize], relevance: &[f64]) -> f64 {
    ranking
        .iter()
        .enumerate()
        .map(|(i, &item)| relevance[item].max(0.0) / ((i + 2) as f64).log2())
        .sum()
}

/// Normalized DCG of a candidate ranking against ground-truth relevances
/// (here: the exact Shapley values). 1.0 means the candidate ordering is
/// ideal; an all-zero ground truth scores 1.0 by convention.
pub fn ndcg(candidate_ranking: &[usize], relevance: &[f64]) -> f64 {
    ndcg_at_k(candidate_ranking, relevance, relevance.len())
}

/// nDCG truncated to the top `k` positions.
pub fn ndcg_at_k(candidate_ranking: &[usize], relevance: &[f64], k: usize) -> f64 {
    let k = k.min(relevance.len());
    if k == 0 {
        return 1.0;
    }
    let ideal = ranking_of(relevance);
    let ideal_dcg = dcg(&ideal[..k], relevance);
    if ideal_dcg == 0.0 {
        return 1.0;
    }
    dcg(
        &candidate_ranking[..k.min(candidate_ranking.len())],
        relevance,
    ) / ideal_dcg
}

/// Precision@k: `|top_k(candidate) ∩ top_k(truth)| / k`.
///
/// Ties in the ground truth are handled generously, as is standard: any item
/// whose true score equals the k-th true score counts as a valid top-k
/// member (otherwise arbitrary tie-breaking would penalize correct answers).
pub fn precision_at_k(candidate_scores: &[f64], true_scores: &[f64], k: usize) -> f64 {
    assert_eq!(candidate_scores.len(), true_scores.len());
    let n = true_scores.len();
    if n == 0 || k == 0 {
        return 1.0;
    }
    let k = k.min(n);
    let true_rank = ranking_of(true_scores);
    let threshold = true_scores[true_rank[k - 1]];
    let cand_rank = ranking_of(candidate_scores);
    let hits = cand_rank[..k]
        .iter()
        .filter(|&&item| true_scores[item] >= threshold)
        .count();
    hits as f64 / k as f64
}

/// Mean absolute error.
pub fn l1_error(estimate: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimate.len(), truth.len());
    if estimate.is_empty() {
        return 0.0;
    }
    estimate
        .iter()
        .zip(truth)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / estimate.len() as f64
}

/// Mean squared error.
pub fn l2_error(estimate: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimate.len(), truth.len());
    if estimate.is_empty() {
        return 0.0;
    }
    estimate
        .iter()
        .zip(truth)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / estimate.len() as f64
}

/// Kendall rank correlation coefficient (τ-a) between two score vectors.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let x = (a[i] - a[j]).signum();
            let y = (b[i] - b[j]).signum();
            let prod = x * y;
            if prod > 0.0 {
                concordant += 1;
            } else if prod < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Mean + percentile summary of a sample (the shape of Table 1's columns:
/// mean, p25, p50, p75, p99).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub p25: f64,
    pub p50: f64,
    pub p75: f64,
    pub p99: f64,
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample (empty samples give all-zero summaries).
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                p25: 0.0,
                p50: 0.0,
                p75: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let pct = |p: f64| -> f64 {
            // Nearest-rank percentile.
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Summary {
            count: values.len(),
            mean: values.iter().sum::<f64>() / values.len() as f64,
            p25: pct(25.0),
            p50: pct(50.0),
            p75: pct(75.0),
            p99: pct(99.0),
            max: *sorted.last().unwrap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_breaks_ties_deterministically() {
        assert_eq!(ranking_of(&[0.5, 0.9, 0.5]), vec![1, 0, 2]);
        assert_eq!(ranking_of(&[]), Vec::<usize>::new());
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let truth = [0.5, 0.3, 0.2, 0.0];
        let ranking = ranking_of(&truth);
        assert!((ndcg(&ranking, &truth) - 1.0).abs() < 1e-12);
        assert!((ndcg_at_k(&ranking, &truth, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_ranking_scores_below_one() {
        let truth = [0.5, 0.3, 0.2, 0.1];
        let reversed = [3, 2, 1, 0];
        let score = ndcg(&reversed, &truth);
        assert!(score < 1.0 && score > 0.0);
    }

    #[test]
    fn ndcg_of_zero_relevance_is_one() {
        assert_eq!(ndcg(&[0, 1], &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn precision_at_k_basics() {
        let truth = [0.9, 0.8, 0.1, 0.0];
        let same = [0.9, 0.8, 0.1, 0.0];
        assert_eq!(precision_at_k(&same, &truth, 2), 1.0);
        let swapped = [0.0, 0.1, 0.8, 0.9];
        assert_eq!(precision_at_k(&swapped, &truth, 2), 0.0);
        let half = [0.9, 0.0, 0.8, 0.1];
        assert_eq!(precision_at_k(&half, &truth, 2), 0.5);
    }

    #[test]
    fn precision_handles_true_ties() {
        // Items 1 and 2 tie at the k-th score: either is a valid top-2 pick.
        let truth = [0.9, 0.5, 0.5, 0.1];
        let candidate = [0.9, 0.1, 0.5, 0.0]; // picks {0, 2}
        assert_eq!(precision_at_k(&candidate, &truth, 2), 1.0);
    }

    #[test]
    fn errors() {
        let est = [0.5, 0.0];
        let truth = [0.0, 0.0];
        assert!((l1_error(&est, &truth) - 0.25).abs() < 1e-12);
        assert!((l2_error(&est, &truth) - 0.125).abs() < 1e-12);
        assert_eq!(l1_error(&[], &[]), 0.0);
    }

    #[test]
    fn kendall() {
        assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]), 1.0);
        assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]), -1.0);
        assert_eq!(kendall_tau(&[1.0], &[5.0]), 1.0);
    }

    #[test]
    fn summary_percentiles() {
        let vals: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let s = Summary::of(&vals);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert_eq!(s.p25, 25.0);
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p75, 75.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(Summary::of(&[]).count, 0);
    }
}
