//! Per-route compile/solve timing histograms.
//!
//! The planner's cost model is static today (occurrence counts, variable
//! caps); the ROADMAP's learned-cost-model lead needs the ground truth it
//! would train on: how long each engine route actually spends preparing
//! (factorization / knowledge compilation) and solving (Algorithm 1 /
//! sampling). This module records exactly that, process-wide, as log₂-
//! bucketed microsecond histograms — two per route (`compile`, `solve`),
//! one route per engine kind. The engine layer records into them at its
//! single result-construction choke point, so every surface (direct,
//! batch, service) feeds the same cells; `serve` surfaces the snapshots in
//! its final `{"stats":…}` line.
//!
//! Buckets are powers of two of microseconds: bucket `i` counts durations
//! `d` with `2^i ≤ d_µs < 2^(i+1)` (bucket 0 also absorbs sub-microsecond
//! durations). 30 buckets reach ~17 minutes, far past any budgeted solve.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log₂ buckets (bucket `NUM_BUCKETS-1` absorbs the overflow).
pub const NUM_BUCKETS: usize = 30;

/// A process-wide log₂-µs histogram (atomic, cheap, shareable).
#[derive(Debug)]
pub struct TimingHisto {
    name: &'static str,
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    total_us: AtomicU64,
}

impl TimingHisto {
    /// A new, empty histogram.
    pub const fn new(name: &'static str) -> TimingHisto {
        // `[const expr; N]` needs an inline const to repeat a non-Copy value.
        TimingHisto {
            name,
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            count: AtomicU64::new(0),
            total_us: AtomicU64::new(0),
        }
    }

    /// The histogram's registry name (`route.phase`, e.g. `kc.compile`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        // 0µs and 1µs land in bucket 0; otherwise bucket = floor(log2 µs).
        let bucket = (63 - us.max(1).leading_zeros() as usize).min(NUM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> TimingSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (slot, b) in buckets.iter_mut().zip(&self.buckets) {
            *slot = b.load(Ordering::Relaxed);
        }
        TimingSnapshot {
            name: self.name,
            count: self.count.load(Ordering::Relaxed),
            total_us: self.total_us.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Resets every cell to zero (tests).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.total_us.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of one [`TimingHisto`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimingSnapshot {
    /// The histogram's registry name.
    pub name: &'static str,
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of recorded durations, microseconds.
    pub total_us: u64,
    /// `buckets[i]` counts durations in `[2^i, 2^(i+1))` µs.
    pub buckets: [u64; NUM_BUCKETS],
}

impl TimingSnapshot {
    /// Mean recorded duration in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (µs) of the bucket holding the `q`-quantile recorded
    /// duration (nearest-rank over the bucket counts; 0 when empty).
    /// A log₂ histogram resolves quantiles to within 2×, which is all the
    /// cost model needs.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << NUM_BUCKETS
    }
}

macro_rules! route_histos {
    ($(($route:ident, $compile:ident, $solve:ident, $name:literal)),+ $(,)?) => {
        $(
            #[doc = concat!("Prep/compile time of `", $name, "`-routed tasks.")]
            pub static $compile: TimingHisto = TimingHisto::new(concat!($name, ".compile"));
            #[doc = concat!("Solve time of `", $name, "`-routed tasks.")]
            pub static $solve: TimingHisto = TimingHisto::new(concat!($name, ".solve"));
        )+

        /// Every route histogram, in a fixed order (compile before solve).
        pub fn route_timings() -> Vec<&'static TimingHisto> {
            vec![$(&$compile, &$solve),+]
        }

        /// Records one task's prep/compile and solve durations under its
        /// route name (as reported by the engine registry); unknown route
        /// names are ignored so the registry can grow engines freely.
        pub fn record_route(route: &str, compile: Duration, solve: Duration) {
            match route {
                $($name => {
                    $compile.record(compile);
                    $solve.record(solve);
                })+
                _ => {}
            }
        }
    };
}

// Route names match the engine registry's `EngineKind::name` values, so
// the engine layer can record under `engine.name()` verbatim.
route_histos![
    (read_once, READ_ONCE_COMPILE, READ_ONCE_SOLVE, "readonce"),
    (naive, NAIVE_COMPILE, NAIVE_SOLVE, "naive"),
    (kc, KC_COMPILE, KC_SOLVE, "kc"),
    (proxy, PROXY_COMPILE, PROXY_SOLVE, "proxy"),
    (monte_carlo, MC_COMPILE, MC_SOLVE, "montecarlo"),
    (kernel_shap, KS_COMPILE, KS_SOLVE, "kernelshap"),
];

/// Snapshots of every route histogram with at least one recording.
pub fn active_route_timings() -> Vec<TimingSnapshot> {
    route_timings()
        .into_iter()
        .filter(|h| h.count() > 0)
        .map(|h| h.snapshot())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_microseconds() {
        static H: TimingHisto = TimingHisto::new("test.histo");
        H.record(Duration::from_micros(0)); // bucket 0
        H.record(Duration::from_micros(1)); // bucket 0
        H.record(Duration::from_micros(3)); // bucket 1
        H.record(Duration::from_micros(1000)); // bucket 9 (512..1024)
        let s = H.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[9], 1);
        assert_eq!(s.total_us, 1004);
        assert_eq!(s.mean_us(), 251);
        H.reset();
        assert_eq!(H.count(), 0);
    }

    #[test]
    fn overflow_durations_land_in_last_bucket() {
        static H: TimingHisto = TimingHisto::new("test.overflow");
        H.record(Duration::from_secs(1 << 40));
        assert_eq!(H.snapshot().buckets[NUM_BUCKETS - 1], 1);
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        static H: TimingHisto = TimingHisto::new("test.quantile");
        for _ in 0..9 {
            H.record(Duration::from_micros(10)); // bucket 3: [8, 16)
        }
        H.record(Duration::from_micros(5000)); // bucket 12: [4096, 8192)
        let s = H.snapshot();
        assert_eq!(s.quantile_us(0.5), 16);
        assert_eq!(s.quantile_us(0.99), 8192);
        assert_eq!(TimingSnapshot { count: 0, ..s }.quantile_us(0.5), 0);
    }

    #[test]
    fn route_recording_reaches_the_named_histograms() {
        let before = KC_COMPILE.count();
        record_route("kc", Duration::from_micros(100), Duration::from_micros(200));
        assert_eq!(KC_COMPILE.count(), before + 1);
        assert!(route_timings().len() >= 12);
        // Unknown routes are ignored, not panicked on.
        record_route("no_such_route", Duration::ZERO, Duration::ZERO);
        assert!(active_route_timings()
            .iter()
            .any(|s| s.name == "kc.compile"));
    }
}
