//! Tuple-independent probabilistic databases.

use shapdb_data::{Database, FactId};
use shapdb_num::Rational;

/// A tuple-independent database `(D, π)`: every fact `f` is present
/// independently with probability `π(f)` (§3 of the paper).
///
/// Probabilities are exact rationals so the Proposition 3.1 reduction can
/// recover integer counts; [`Tid::prob_f64`] provides the floating view.
#[derive(Clone, Debug)]
pub struct Tid {
    probs: Vec<Rational>,
}

impl Tid {
    /// All facts present with probability 1 (a deterministic database).
    pub fn deterministic(db: &Database) -> Tid {
        Tid {
            probs: vec![Rational::one(); db.num_facts()],
        }
    }

    /// Uniform probability `p` for every fact.
    pub fn uniform(db: &Database, p: Rational) -> Tid {
        assert!(
            !p.is_negative() && p <= Rational::one(),
            "probability out of range"
        );
        Tid {
            probs: vec![p; db.num_facts()],
        }
    }

    /// The TID of the Proposition 3.1 proof: exogenous facts get probability
    /// 1, endogenous facts get `z/(1+z)`.
    pub fn for_reduction(db: &Database, z: &Rational) -> Tid {
        let one = Rational::one();
        let endo_p = z / &(&one + z);
        let probs = (0..db.num_facts() as u32)
            .map(|i| {
                if db.is_endogenous(FactId(i)) {
                    endo_p.clone()
                } else {
                    one.clone()
                }
            })
            .collect();
        Tid { probs }
    }

    /// Builds from explicit per-fact probabilities.
    pub fn from_probs(probs: Vec<Rational>) -> Tid {
        for p in &probs {
            assert!(
                !p.is_negative() && *p <= Rational::one(),
                "probability out of range"
            );
        }
        Tid { probs }
    }

    /// Number of facts covered.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True iff no facts.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Sets one fact's probability.
    pub fn set(&mut self, f: FactId, p: Rational) {
        assert!(
            !p.is_negative() && p <= Rational::one(),
            "probability out of range"
        );
        self.probs[f.index()] = p;
    }

    /// The probability of a fact.
    pub fn prob(&self, f: FactId) -> &Rational {
        &self.probs[f.index()]
    }

    /// The probability as `f64`.
    pub fn prob_f64(&self, f: FactId) -> f64 {
        self.probs[f.index()].to_f64()
    }

    /// Probability that exactly the sub-database `present` (a bitmask over
    /// fact ids) is drawn — the `Pr_π(D')` of §3.
    pub fn subdb_probability(&self, present: &impl Fn(FactId) -> bool) -> Rational {
        let one = Rational::one();
        let mut acc = Rational::one();
        for (i, p) in self.probs.iter().enumerate() {
            let f = FactId(i as u32);
            let factor = if present(f) { p.clone() } else { &one - p };
            if factor.is_zero() {
                return Rational::zero();
            }
            acc = &acc * &factor;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapdb_data::{Database, Value};

    fn two_fact_db() -> Database {
        let mut db = Database::new();
        db.create_relation("R", &["a"]);
        db.insert_endo("R", vec![Value::int(1)]);
        db.insert_exo("R", vec![Value::int(2)]);
        db
    }

    #[test]
    fn reduction_probabilities() {
        let db = two_fact_db();
        let z = Rational::from_int(3);
        let tid = Tid::for_reduction(&db, &z);
        assert_eq!(tid.prob(FactId(0)), &Rational::from_ratio(3, 4)); // endo: z/(1+z)
        assert_eq!(tid.prob(FactId(1)), &Rational::one()); // exo
    }

    #[test]
    fn subdb_probability_products() {
        let db = two_fact_db();
        let mut tid = Tid::uniform(&db, Rational::from_ratio(1, 2));
        tid.set(FactId(1), Rational::from_ratio(1, 3));
        // P({f0}) = 1/2 * 2/3 = 1/3.
        let p = tid.subdb_probability(&|f| f == FactId(0));
        assert_eq!(p, Rational::from_ratio(1, 3));
        // Probabilities over all 4 sub-databases sum to 1.
        let mut total = Rational::zero();
        for mask in 0u32..4 {
            total += &tid.subdb_probability(&|f| mask >> f.0 & 1 == 1);
        }
        assert_eq!(total, Rational::one());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_probability() {
        let db = two_fact_db();
        Tid::uniform(&db, Rational::from_ratio(3, 2));
    }
}
