//! # shapdb-prob — probabilistic query evaluation and the Prop. 3.1 bridge
//!
//! Section 3 of the paper establishes the fundamental connection between
//! Shapley computation and *probabilistic query evaluation* (PQE) over
//! tuple-independent databases: `Shapley(q) ≤p_T PQE(q)` for **every**
//! Boolean query. This crate implements both sides of that bridge:
//!
//! * [`tid`] — tuple-independent (TID) databases: a probability per fact;
//! * [`pqe`] — `Pr(q, (D, π))` three ways: brute force over sub-databases
//!   (test oracle), weighted model counting on a compiled d-DNNF (the
//!   intensional method the paper builds on), and exact rational WMC used as
//!   the oracle of the reduction;
//! * [`lifted`] — extensional *lifted inference* for hierarchical self-join-
//!   free CQs: the safe-plan evaluation that makes PQE (and hence Shapley
//!   computation) polynomial for the tractable class of Livshits et al. / Dalvi–Suciu;
//! * [`reduction`] — the constructive proof of Proposition 3.1: `n+1` PQE
//!   oracle calls at probabilities `z/(1+z)`, an exact Vandermonde solve
//!   recovering the `#Slices` counts, and Equation (2) — an independent
//!   end-to-end cross-check of Algorithm 1.

pub mod lifted;
pub mod pqe;
pub mod reduction;
pub mod tid;

pub use lifted::{lifted_probability, LiftedError};
pub use pqe::{pqe_bruteforce, pqe_ddnnf, pqe_ddnnf_rational, pqe_via_compilation};
pub use reduction::{shapley_via_pqe, slices_via_pqe};
pub use tid::Tid;
