//! Extensional lifted inference for hierarchical self-join-free CQs.
//!
//! The tractable side of the Dalvi–Suciu dichotomy that §3 of the paper
//! builds on: for a *hierarchical* self-join-free Boolean CQ, `PQE(q)` is
//! computable in polynomial time directly on the TID database, without any
//! lineage or compilation, by recursive decomposition:
//!
//! * **independent components** — sub-queries sharing no variables touch
//!   disjoint fact sets (self-join-freeness), so probabilities multiply;
//! * **ground atoms** — a variable-free atom is an independent coin flip;
//! * **root variable** — a variable occurring in *every* atom of a connected
//!   component partitions the component's groundings by its value into
//!   independent events: `Pr(∃x φ) = 1 − Π_a (1 − Pr(φ[x→a]))`.
//!
//! Non-hierarchical components have no root variable and are rejected
//! ([`LiftedError::NonHierarchical`]) — matching the hardness side of the
//! dichotomy. Comparison predicates of the form `var op const` are applied
//! while grounding; anything else is [`LiftedError::Unsupported`].

use crate::tid::Tid;
use shapdb_data::{Database, Value};
use shapdb_num::Rational;
use shapdb_query::{ConjunctiveQuery, Predicate, Term, Ucq, Variable};
use std::collections::BTreeSet;

/// Why lifted inference refused a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LiftedError {
    /// A connected component has no root variable (the query is unsafe for
    /// this extensional algorithm).
    NonHierarchical,
    /// The query uses a feature the lifted evaluator does not support
    /// (self-joins, non-Boolean head, var–var comparisons).
    Unsupported(String),
}

impl std::fmt::Display for LiftedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LiftedError::NonHierarchical => write!(f, "query is not hierarchical"),
            LiftedError::Unsupported(m) => write!(f, "unsupported query feature: {m}"),
        }
    }
}

impl std::error::Error for LiftedError {}

/// A partially-ground atom: relation name + terms (constants fill in as the
/// recursion grounds variables).
#[derive(Clone, Debug)]
struct GAtom {
    relation: String,
    terms: Vec<Term>,
}

impl GAtom {
    fn vars(&self) -> BTreeSet<Variable> {
        self.terms
            .iter()
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect()
    }

    fn substitute(&self, var: Variable, value: &Value) -> GAtom {
        GAtom {
            relation: self.relation.clone(),
            terms: self
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) if *v == var => Term::Const(value.clone()),
                    other => other.clone(),
                })
                .collect(),
        }
    }
}

/// Exact `Pr(q, (D, π))` for a hierarchical self-join-free Boolean CQ.
pub fn lifted_probability(
    q: &ConjunctiveQuery,
    db: &Database,
    tid: &Tid,
) -> Result<Rational, LiftedError> {
    if !q.is_boolean() {
        return Err(LiftedError::Unsupported("non-Boolean head".into()));
    }
    if !shapdb_query::is_self_join_free(q) {
        return Err(LiftedError::Unsupported("self-join".into()));
    }
    for p in &q.predicates {
        match (&p.lhs, &p.rhs) {
            (Term::Var(_), Term::Const(_)) | (Term::Const(_), Term::Var(_)) => {}
            (Term::Const(_), Term::Const(_)) => {}
            _ => {
                return Err(LiftedError::Unsupported("var–var comparison".into()));
            }
        }
    }
    let atoms: Vec<GAtom> = q
        .atoms
        .iter()
        .map(|a| GAtom {
            relation: a.relation.clone(),
            terms: a.terms.clone(),
        })
        .collect();
    prob(&atoms, &q.predicates, db, tid)
}

/// Convenience: lifted PQE of a UCQ whose disjuncts touch pairwise disjoint
/// relation sets (then `Pr(∪ qᵢ) = 1 − Π(1 − Pr(qᵢ))`). Returns
/// `Unsupported` when disjuncts share a relation.
pub fn lifted_probability_ucq(q: &Ucq, db: &Database, tid: &Tid) -> Result<Rational, LiftedError> {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for d in q.disjuncts() {
        for a in &d.atoms {
            if !seen.insert(a.relation.as_str()) {
                return Err(LiftedError::Unsupported(
                    "UCQ disjuncts share a relation".into(),
                ));
            }
        }
    }
    let one = Rational::one();
    let mut miss = Rational::one();
    for d in q.disjuncts() {
        let p = lifted_probability(d, db, tid)?;
        miss = &miss * &(&one - &p);
    }
    Ok(&one - &miss)
}

fn check_const_predicates(preds: &[Predicate]) -> bool {
    preds.iter().all(|p| match (&p.lhs, &p.rhs) {
        (Term::Const(a), Term::Const(b)) => p.op.apply(a, b),
        _ => true, // not yet ground; checked after substitution
    })
}

fn prob(
    atoms: &[GAtom],
    preds: &[Predicate],
    db: &Database,
    tid: &Tid,
) -> Result<Rational, LiftedError> {
    if !check_const_predicates(preds) {
        return Ok(Rational::zero());
    }
    if atoms.is_empty() {
        return Ok(Rational::one());
    }
    // Connected components over shared variables.
    let comps = components(atoms);
    if comps.len() > 1 {
        let mut acc = Rational::one();
        for comp in comps {
            acc = &acc * &prob(&comp, preds, db, tid)?;
            if acc.is_zero() {
                return Ok(acc);
            }
        }
        return Ok(acc);
    }

    let comp = &comps[0];
    let all_vars: Vec<BTreeSet<Variable>> = comp.iter().map(|a| a.vars()).collect();

    // Ground component: a single variable-free atom (sjf ⇒ components of
    // ground atoms are singletons after the component split — but be safe
    // and multiply if several ground atoms ended up connected, which cannot
    // happen var-wise; handle len == 1).
    if all_vars.iter().all(|v| v.is_empty()) {
        let mut acc = Rational::one();
        for a in comp {
            acc = &acc * &ground_atom_probability(a, db, tid);
        }
        return Ok(acc);
    }

    // Root variable: occurs in every atom of the component.
    let mut root: Option<Variable> = None;
    'vars: for v in all_vars.iter().flatten() {
        if all_vars.iter().all(|s| s.contains(v)) {
            root = Some(*v);
            break 'vars;
        }
    }
    let Some(x) = root else {
        return Err(LiftedError::NonHierarchical);
    };

    // Candidate values for x: from the first atom's relation, at x's
    // positions, filtered by var-const predicates on x.
    let candidates = candidate_values(&comp[0], x, db);
    let one = Rational::one();
    let mut miss = Rational::one(); // Π (1 − Pr(φ[x→a]))
    for a in candidates {
        if !value_passes_predicates(preds, x, &a) {
            continue;
        }
        let grounded: Vec<GAtom> = comp.iter().map(|g| g.substitute(x, &a)).collect();
        let p = prob(&grounded, preds, db, tid)?;
        if p.is_zero() {
            continue;
        }
        miss = &miss * &(&one - &p);
        if miss.is_zero() {
            break;
        }
    }
    Ok(&one - &miss)
}

/// Probability that *some* fact matching a ground atom is present.
///
/// The storage layer permits duplicate tuples as distinct facts (they carry
/// different ids), in which case the atom is satisfied when any of them is
/// drawn: `1 − Π(1 − πᵢ)` over all matching facts.
fn ground_atom_probability(atom: &GAtom, db: &Database, tid: &Tid) -> Rational {
    let Some(rel) = db.relation(&atom.relation) else {
        return Rational::zero();
    };
    let values: Vec<&Value> = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => c,
            Term::Var(_) => unreachable!("ground atom has no variables"),
        })
        .collect();
    let one = Rational::one();
    let mut miss = Rational::one();
    for fact in rel.facts() {
        if fact.values.iter().zip(&values).all(|(a, b)| a == *b) {
            miss = &miss * &(&one - tid.prob(fact.id));
            if miss.is_zero() {
                break;
            }
        }
    }
    &one - &miss
}

/// Distinct values appearing at `x`'s positions in the atom's relation,
/// restricted to facts compatible with the atom's constants.
fn candidate_values(atom: &GAtom, x: Variable, db: &Database) -> Vec<Value> {
    let Some(rel) = db.relation(&atom.relation) else {
        return Vec::new();
    };
    let mut out: BTreeSet<Value> = BTreeSet::new();
    'facts: for fact in rel.facts() {
        let mut xval: Option<&Value> = None;
        for (t, v) in atom.terms.iter().zip(fact.values.iter()) {
            match t {
                Term::Const(c) => {
                    if c != v {
                        continue 'facts;
                    }
                }
                Term::Var(w) if *w == x => match xval {
                    None => xval = Some(v),
                    Some(prev) if prev == v => {}
                    Some(_) => continue 'facts,
                },
                Term::Var(_) => {}
            }
        }
        if let Some(v) = xval {
            out.insert(v.clone());
        }
    }
    out.into_iter().collect()
}

fn value_passes_predicates(preds: &[Predicate], x: Variable, value: &Value) -> bool {
    preds.iter().all(|p| match (&p.lhs, &p.rhs) {
        (Term::Var(v), Term::Const(c)) if *v == x => p.op.apply(value, c),
        (Term::Const(c), Term::Var(v)) if *v == x => p.op.apply(c, value),
        _ => true,
    })
}

/// Splits atoms into variable-connected components.
fn components(atoms: &[GAtom]) -> Vec<Vec<GAtom>> {
    let n = atoms.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(p: &mut [usize], mut x: usize) -> usize {
        while p[x] != x {
            p[x] = p[p[x]];
            x = p[x];
        }
        x
    }
    let varsets: Vec<BTreeSet<Variable>> = atoms.iter().map(|a| a.vars()).collect();
    for i in 0..n {
        for j in i + 1..n {
            if !varsets[i].is_disjoint(&varsets[j]) {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut groups: std::collections::HashMap<usize, Vec<GAtom>> = std::collections::HashMap::new();
    for (i, atom) in atoms.iter().enumerate() {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(atom.clone());
    }
    let mut out: Vec<Vec<GAtom>> = groups.into_values().collect();
    out.sort_by(|a, b| a[0].relation.cmp(&b[0].relation));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pqe::pqe_bruteforce;
    use rand::prelude::*;
    use shapdb_query::CmpOp;
    use shapdb_query::CqBuilder;

    /// Random TID over a 2-relation database; checks lifted == brute force.
    fn check_against_bruteforce(q: &ConjunctiveQuery, db: &Database, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let probs: Vec<Rational> = (0..db.num_facts())
            .map(|_| Rational::from_ratio(rng.random_range(0..=4), 4))
            .collect();
        let tid = Tid::from_probs(probs);
        let lifted = lifted_probability(q, db, &tid).unwrap();
        let ucq: Ucq = q.clone().into();
        let brute = pqe_bruteforce(&ucq, db, &tid);
        assert_eq!(lifted, brute, "seed {seed}");
    }

    fn rs_database(seed: u64) -> Database {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut db = Database::new();
        db.create_relation("R", &["a"]);
        db.create_relation("S", &["a", "b"]);
        for _ in 0..5 {
            db.insert_endo("R", vec![Value::int(rng.random_range(0..4))]);
        }
        for _ in 0..8 {
            db.insert_endo(
                "S",
                vec![
                    Value::int(rng.random_range(0..4)),
                    Value::int(rng.random_range(0..3)),
                ],
            );
        }
        db
    }

    #[test]
    fn hierarchical_rx_sxy() {
        // q() :- R(x), S(x, y): hierarchical (atoms(y) ⊂ atoms(x)).
        for seed in 0..10 {
            let db = rs_database(seed);
            let mut b = CqBuilder::new();
            let x = b.var("x");
            let y = b.var("y");
            b.atom("R", [x.into()]);
            b.atom("S", [x.into(), y.into()]);
            let q = b.build();
            check_against_bruteforce(&q, &db, seed * 31 + 1);
        }
    }

    #[test]
    fn disconnected_components_multiply() {
        for seed in 0..5 {
            let db = rs_database(seed + 100);
            let mut b = CqBuilder::new();
            let x = b.var("x");
            let y = b.var("y");
            let z = b.var("z");
            b.atom("R", [x.into()]);
            b.atom("S", [y.into(), z.into()]);
            let q = b.build();
            check_against_bruteforce(&q, &db, seed);
        }
    }

    #[test]
    fn ground_atom() {
        let mut db = Database::new();
        db.create_relation("R", &["a"]);
        let f = db.insert_endo("R", vec![Value::int(7)]);
        let mut tid = Tid::deterministic(&db);
        tid.set(f, Rational::from_ratio(1, 3));
        let mut b = CqBuilder::new();
        b.atom("R", [Term::int(7)]);
        let q = b.build();
        assert_eq!(
            lifted_probability(&q, &db, &tid).unwrap(),
            Rational::from_ratio(1, 3)
        );
        // Missing fact → probability 0.
        let mut b2 = CqBuilder::new();
        b2.atom("R", [Term::int(99)]);
        let q2 = b2.build();
        assert_eq!(
            lifted_probability(&q2, &db, &tid).unwrap(),
            Rational::zero()
        );
    }

    #[test]
    fn non_hierarchical_rejected() {
        let mut db = Database::new();
        db.create_relation("R", &["a"]);
        db.create_relation("S", &["a", "b"]);
        db.create_relation("T", &["b"]);
        db.insert_endo("R", vec![Value::int(0)]);
        db.insert_endo("S", vec![Value::int(0), Value::int(1)]);
        db.insert_endo("T", vec![Value::int(1)]);
        let tid = Tid::uniform(&db, Rational::from_ratio(1, 2));
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.atom("R", [x.into()]);
        b.atom("S", [x.into(), y.into()]);
        b.atom("T", [y.into()]);
        let q = b.build();
        assert_eq!(
            lifted_probability(&q, &db, &tid).unwrap_err(),
            LiftedError::NonHierarchical
        );
    }

    #[test]
    fn self_join_rejected() {
        let mut db = Database::new();
        db.create_relation("R", &["a", "b"]);
        db.insert_endo("R", vec![Value::int(0), Value::int(1)]);
        let tid = Tid::deterministic(&db);
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        b.atom("R", [x.into(), y.into()]);
        b.atom("R", [y.into(), z.into()]);
        let q = b.build();
        assert!(matches!(
            lifted_probability(&q, &db, &tid).unwrap_err(),
            LiftedError::Unsupported(_)
        ));
    }

    #[test]
    fn predicates_filter_candidates() {
        for seed in 0..5 {
            let db = rs_database(seed + 200);
            let mut b = CqBuilder::new();
            let x = b.var("x");
            let y = b.var("y");
            b.atom("S", [x.into(), y.into()]);
            b.filter(x.into(), CmpOp::Ge, Term::int(1));
            b.filter(y.into(), CmpOp::Lt, Term::int(2));
            let q = b.build();
            check_against_bruteforce(&q, &db, seed);
        }
    }

    use shapdb_data::Database;
}
