//! The Proposition 3.1 reduction: `Shapley(q) ≤p_T PQE(q)`.
//!
//! Constructive implementation of the paper's proof. To compute
//! `#Slices(q, D_x, D_n, k)` — the number of size-`k` endogenous subsets `E`
//! with `q(D_x ∪ E) = 1` — build, for a rational `z`, the TID `(D_z, π_z)`
//! with `π_z(f) = 1` on exogenous and `z/(1+z)` on endogenous facts. Then
//!
//! ```text
//! (1+z)^n · Pr(q, (D_z, π_z)) = Σ_i  z^i · #Slices(q, D_x, D_n, i)
//! ```
//!
//! Calling a PQE oracle at `n+1` distinct points `z_0..z_n` yields a
//! Vandermonde system whose exact solution is the `#Slices` vector;
//! Equation (2) then assembles the Shapley value of any fact from the
//! slices of `D_n \ {f}` with `f` forced present / absent.
//!
//! This module is the *other road* to exact Shapley values — independent of
//! Algorithm 1's dynamic program — and the two are checked against each
//! other in the integration tests, which is as close to a mechanized proof
//! of Proposition 3.1 as an implementation gets.

use crate::tid::Tid;
use shapdb_data::{Database, FactId};
use shapdb_num::{
    combinatorics::{shapley_coefficient, FactorialTable},
    linalg::solve_vandermonde,
    BigInt, BigUint, Rational,
};

/// A PQE oracle: exact probability that the (fixed) Boolean query holds on
/// the given TID. The reduction is generic in the oracle — brute force,
/// d-DNNF WMC, or lifted inference all qualify.
pub type PqeOracle<'a> = dyn Fn(&Tid) -> Rational + 'a;

/// Computes the `#Slices(q, D_x ∪ F⁺, (D_n \ F) , k)` vector for
/// `k = 0..=n'`, where `fixed` lists facts `F` removed from the endogenous
/// set and forced present (`true`) or absent (`false`), and `n'` is the
/// number of remaining endogenous facts.
pub fn slices_via_pqe(
    oracle: &PqeOracle<'_>,
    db: &Database,
    fixed: &[(FactId, bool)],
) -> Vec<BigUint> {
    let endo = db.endogenous_facts();
    let free: Vec<FactId> = endo
        .iter()
        .copied()
        .filter(|f| !fixed.iter().any(|(g, _)| g == f))
        .collect();
    let n = free.len();
    let one = Rational::one();

    // Oracle calls at z = 1..=n+1.
    let mut zs = Vec::with_capacity(n + 1);
    let mut ys = Vec::with_capacity(n + 1);
    for j in 1..=(n as i64 + 1) {
        let z = Rational::from_int(j);
        let mut tid = Tid::for_reduction(db, &z);
        for &(f, b) in fixed {
            tid.set(f, if b { Rational::one() } else { Rational::zero() });
        }
        let p = oracle(&tid);
        // y = (1+z)^n * Pr.
        let mut scale = Rational::one();
        let base = &one + &z;
        for _ in 0..n {
            scale = &scale * &base;
        }
        zs.push(z);
        ys.push(&scale * &p);
    }
    let sol = solve_vandermonde(&zs, &ys);
    sol.into_iter()
        .map(|r| {
            assert!(
                r.denominator().is_one() && !r.is_negative(),
                "#Slices must be a non-negative integer, got {r}"
            );
            r.numerator().magnitude().clone()
        })
        .collect()
}

/// Exact Shapley value of fact `f` via the PQE oracle (Proposition 3.1 +
/// Equation (2)). Requires `2(n+1)` oracle calls for `n = |D_n|`.
pub fn shapley_via_pqe(oracle: &PqeOracle<'_>, db: &Database, f: FactId) -> Rational {
    assert!(
        db.is_endogenous(f),
        "Shapley values are defined for endogenous facts"
    );
    let n = db.num_endogenous();
    let with = slices_via_pqe(oracle, db, &[(f, true)]);
    let without = slices_via_pqe(oracle, db, &[(f, false)]);
    debug_assert_eq!(with.len(), n);
    debug_assert_eq!(without.len(), n);
    let mut facts = FactorialTable::new();
    let mut total = Rational::zero();
    for k in 0..n {
        let diff = BigInt::from_biguint(with[k].clone()) - BigInt::from_biguint(without[k].clone());
        if diff.is_zero() {
            continue;
        }
        let coeff = shapley_coefficient(n, k, &mut facts);
        total += &(&coeff * &Rational::from_bigint(diff));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pqe::pqe_bruteforce;
    use shapdb_data::flights_example;
    use shapdb_query::ast::flights_query;

    #[test]
    fn slices_of_running_example() {
        let (db, _) = flights_example();
        let q = flights_query();
        let oracle = |tid: &Tid| pqe_bruteforce(&q, &db, tid);
        // No fixed facts: #Slices over all 8 endogenous facts.
        let slices = slices_via_pqe(&oracle, &db, &[]);
        assert_eq!(slices.len(), 9);
        // k = 0: the empty set does not satisfy q.
        assert_eq!(slices[0].to_u64(), Some(0));
        // k = 1: only {a1}.
        assert_eq!(slices[1].to_u64(), Some(1));
        // k = 8: the full database satisfies q.
        assert_eq!(slices[8].to_u64(), Some(1));
        // Totals are bounded by C(8, k).
        for (k, s) in slices.iter().enumerate() {
            assert!(
                s <= &shapdb_num::combinatorics::binomial(8, k),
                "slice {k} exceeds C(8,{k})"
            );
        }
    }

    #[test]
    fn shapley_via_pqe_matches_paper_values() {
        let (db, a) = flights_example();
        let q = flights_query();
        let oracle = |tid: &Tid| pqe_bruteforce(&q, &db, tid);
        assert_eq!(
            shapley_via_pqe(&oracle, &db, a[0]),
            Rational::from_ratio(43, 105)
        );
        assert_eq!(
            shapley_via_pqe(&oracle, &db, a[1]),
            Rational::from_ratio(23, 210)
        );
        assert_eq!(
            shapley_via_pqe(&oracle, &db, a[5]),
            Rational::from_ratio(8, 105)
        );
        assert_eq!(shapley_via_pqe(&oracle, &db, a[7]), Rational::zero());
    }
}
