//! Probabilistic query evaluation (`PQE`) three ways.
//!
//! * [`pqe_bruteforce`] — exact by enumerating sub-databases restricted to
//!   the lineage's facts (a test oracle, exponential);
//! * [`pqe_ddnnf`] / [`pqe_ddnnf_rational`] — the intensional method: weighted
//!   model counting over a compiled d-DNNF (linear in the circuit), float and
//!   exact variants;
//! * [`pqe_via_compilation`] — end-to-end: lineage → Tseytin → compile →
//!   project → exact WMC, the oracle used by the Proposition 3.1 reduction.

use crate::tid::Tid;
use shapdb_circuit::{Circuit, VarId};
use shapdb_data::{Database, FactId};
use shapdb_kc::{compile_circuit, Budget, CompileError, Ddnnf};
use shapdb_num::{Bitset, Rational};
use shapdb_query::{evaluate, Ucq};

/// Exact `Pr(q, (D, π))` by enumerating truth assignments of the lineage's
/// facts (facts outside the lineage marginalize out). Panics above 24
/// lineage facts — this is a test oracle.
pub fn pqe_bruteforce(q: &Ucq, db: &Database, tid: &Tid) -> Rational {
    assert!(q.is_boolean(), "PQE is defined for Boolean queries");
    let res = evaluate(q, db);
    let Some(out) = res.outputs.first() else {
        return Rational::zero(); // no derivation on the full database
    };
    let vars = out.lineage.vars();
    assert!(
        vars.len() <= 24,
        "brute-force PQE limited to 24 lineage facts"
    );
    let one = Rational::one();
    let cap = vars.iter().map(|v| v.index() + 1).max().unwrap_or(1);
    let mut total = Rational::zero();
    for mask in 0u64..(1 << vars.len()) {
        let mut set = Bitset::new(cap);
        let mut weight = Rational::one();
        for (i, v) in vars.iter().enumerate() {
            let p = tid.prob(FactId(v.0));
            if mask >> i & 1 == 1 {
                set.insert(v.index());
                weight = &weight * p;
            } else {
                weight = &weight * &(&one - p);
            }
            if weight.is_zero() {
                break;
            }
        }
        if weight.is_zero() || !out.lineage.eval_set(&set) {
            continue;
        }
        total += &weight;
    }
    total
}

/// `Pr(q)` from a compiled d-DNNF whose variable `i` is the fact
/// `fact_vars[i]`, in `f64`.
pub fn pqe_ddnnf(ddnnf: &Ddnnf, fact_vars: &[VarId], tid: &Tid) -> f64 {
    let probs: Vec<f64> = fact_vars
        .iter()
        .map(|v| tid.prob_f64(FactId(v.0)))
        .collect();
    ddnnf.probability_f64(&probs)
}

/// Exact-rational version of [`pqe_ddnnf`].
pub fn pqe_ddnnf_rational(ddnnf: &Ddnnf, fact_vars: &[VarId], tid: &Tid) -> Rational {
    let probs: Vec<Rational> = fact_vars
        .iter()
        .map(|v| tid.prob(FactId(v.0)).clone())
        .collect();
    ddnnf.probability_rational(&probs)
}

/// End-to-end exact PQE of a Boolean UCQ via knowledge compilation — the
/// practical PQE engine the paper's §4 approach is built on.
pub fn pqe_via_compilation(
    q: &Ucq,
    db: &Database,
    tid: &Tid,
    budget: &Budget,
) -> Result<Rational, CompileError> {
    assert!(q.is_boolean(), "PQE is defined for Boolean queries");
    let res = evaluate(q, db);
    let Some(out) = res.outputs.first() else {
        return Ok(Rational::zero());
    };
    let mut circuit = Circuit::new();
    let root = out.lineage.to_circuit(&mut circuit);
    let comp = compile_circuit(&circuit, root, budget)?;
    Ok(pqe_ddnnf_rational(&comp.ddnnf, &comp.fact_vars, tid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapdb_data::{flights_example, Value};
    use shapdb_query::ast::flights_query;
    use shapdb_query::CqBuilder;

    #[test]
    fn deterministic_tid_equals_query_answer() {
        let (db, _) = flights_example();
        let q = flights_query();
        let tid = Tid::deterministic(&db);
        assert_eq!(pqe_bruteforce(&q, &db, &tid), Rational::one());
        let p = pqe_via_compilation(&q, &db, &tid, &Budget::unlimited()).unwrap();
        assert_eq!(p, Rational::one());
    }

    #[test]
    fn uniform_half_matches_model_count() {
        // With π ≡ 1/2, Pr(q) = #SAT(lineage) / 2^#vars.
        let (db, _) = flights_example();
        let q = flights_query();
        let tid = Tid::uniform(&db, Rational::from_ratio(1, 2));
        let brute = pqe_bruteforce(&q, &db, &tid);
        let compiled = pqe_via_compilation(&q, &db, &tid, &Budget::unlimited()).unwrap();
        assert_eq!(brute, compiled);
        // The float path agrees to machine precision.
        let res = evaluate(&q, &db);
        let mut c = Circuit::new();
        let root = res.outputs[0].lineage.to_circuit(&mut c);
        let comp = compile_circuit(&c, root, &Budget::unlimited()).unwrap();
        let f = pqe_ddnnf(&comp.ddnnf, &comp.fact_vars, &tid);
        assert!((f - brute.to_f64()).abs() < 1e-12);
    }

    #[test]
    fn single_fact_query_probability() {
        let mut db = Database::new();
        db.create_relation("R", &["a"]);
        let f = db.insert_endo("R", vec![Value::int(1)]);
        let mut b = CqBuilder::new();
        let x = b.var("x");
        b.atom("R", [x.into()]);
        let q: Ucq = b.build().into();
        let mut tid = Tid::deterministic(&db);
        tid.set(f, Rational::from_ratio(2, 7));
        assert_eq!(pqe_bruteforce(&q, &db, &tid), Rational::from_ratio(2, 7));
    }

    #[test]
    fn unsatisfiable_query_probability_zero() {
        let (db, _) = flights_example();
        let mut b = CqBuilder::new();
        let x = b.var("x");
        b.atom("Airports", [x.into(), "MARS".into()]);
        let q: Ucq = b.build().into();
        let tid = Tid::uniform(&db, Rational::from_ratio(1, 2));
        assert_eq!(pqe_bruteforce(&q, &db, &tid), Rational::zero());
        assert_eq!(
            pqe_via_compilation(&q, &db, &tid, &Budget::unlimited()).unwrap(),
            Rational::zero()
        );
    }

    use shapdb_data::Database;
}
