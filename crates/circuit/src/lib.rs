//! # shapdb-circuit — Boolean circuits, lineage, CNF/DNF, Tseytin
//!
//! The paper's pipeline (Figure 3) manipulates the *lineage* `Lin(q[x̄/t̄], D)`
//! of a query answer as a Boolean circuit whose variables are database facts,
//! restricts exogenous facts to ⊤ to obtain the *endogenous lineage*
//! `ELin(q[x̄/t̄], D_x, D_n)`, and converts it to CNF via the Tseytin
//! transformation before knowledge compilation. This crate provides all of
//! those representations and conversions:
//!
//! * [`Circuit`] — an arena-allocated, hash-consed DAG of `∧/∨/¬/var/const`
//!   gates with evaluation, partial evaluation (restriction), variable-set
//!   computation and statistics;
//! * [`Cnf`] / [`Clause`] / [`Lit`] — clausal formulas with evaluation and
//!   well-formedness checks;
//! * [`Dnf`] — monotone disjunctive normal form used to render lineages the
//!   way the paper prints them (Figure 1d);
//! * [`tseytin()`](tseytin()) — the circuit → CNF transformation with the
//!   exactly-one-extension property the projection step (Lemma 4.6) relies
//!   on, including bookkeeping of which CNF variables are circuit inputs and
//!   which are auxiliary;
//! * [`readonce`] — read-once factorization of monotone DNF lineages
//!   (Golumbic–Mintz–Rotics co-occurrence decomposition), the fast path that
//!   sidesteps knowledge compilation entirely when the lineage factors;
//! * [`mod@fingerprint`] — canonical structural fingerprints of lineages (equal
//!   up to fact renaming ⇒ equal key), the interning key the engine layer's
//!   batch executor dedups on.

pub mod circuit;
pub mod cnf;
pub mod dimacs;
pub mod dnf;
pub mod fingerprint;
pub mod literal_dnf;
pub mod readonce;
pub mod tseytin;

pub use circuit::{Circuit, Gate, NodeId, VarId};
pub use cnf::{Clause, Cnf, Lit};
pub use dimacs::{from_dimacs, to_dimacs, DimacsError};
pub use dnf::Dnf;
pub use fingerprint::{fingerprint, Fingerprint, FingerprintKey};
pub use literal_dnf::LiteralDnf;
pub use readonce::{factor, factor_minimized, ReadOnce};
pub use tseytin::{tseytin, TseytinCnf};
