//! DNF lineages with negative literals.
//!
//! The paper's framework is defined for *every* Boolean query (§2), but its
//! implementation covers the monotone SPJU fragment, leaving "further
//! constructs such as … negation" as future work (§7). Queries with safe
//! negated atoms produce lineages that are still disjunctions of
//! conjunctions — only now over *literals*: a derivation asserts the
//! presence of the facts it joins and the absence of the (endogenous) facts
//! its negated atoms would match. This type is the signed counterpart of
//! [`Dnf`](crate::Dnf); Shapley values over such lineages can be negative (a
//! fact whose presence *removes* an answer gets negative attribution).

use crate::circuit::{Circuit, NodeId, VarId};
use crate::cnf::Lit;
use shapdb_num::Bitset;
use std::fmt;

/// A DNF over literals: a set of conjuncts, each a sorted set of literals.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LiteralDnf {
    conjuncts: Vec<Vec<Lit>>,
}

impl LiteralDnf {
    /// An empty DNF (the constant false).
    pub fn new() -> LiteralDnf {
        LiteralDnf::default()
    }

    /// Adds a conjunct (sorted + deduplicated). Contradictory conjuncts
    /// (containing both `f` and `¬f`) are unsatisfiable and dropped;
    /// duplicate conjuncts are dropped.
    pub fn add_conjunct(&mut self, mut lits: Vec<Lit>) {
        lits.sort_unstable();
        lits.dedup();
        if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
            return; // f ∧ ¬f
        }
        if !self.conjuncts.contains(&lits) {
            self.conjuncts.push(lits);
        }
    }

    /// The conjuncts.
    pub fn conjuncts(&self) -> &[Vec<Lit>] {
        &self.conjuncts
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.conjuncts.len()
    }

    /// True iff the DNF is the constant false.
    pub fn is_empty(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// Distinct variables (of either polarity), sorted.
    pub fn vars(&self) -> Vec<VarId> {
        let mut vs: Vec<VarId> = self
            .conjuncts
            .iter()
            .flatten()
            .map(|l| VarId(l.var() as u32))
            .collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// True iff no negative literal occurs.
    pub fn is_monotone(&self) -> bool {
        self.conjuncts.iter().flatten().all(|l| l.is_positive())
    }

    /// Evaluates under a set of true variables.
    pub fn eval_set(&self, true_vars: &Bitset) -> bool {
        self.conjuncts.iter().any(|c| {
            c.iter()
                .all(|l| l.satisfied_by(true_vars.contains(l.var())))
        })
    }

    /// Absorption on literal sets: drops conjuncts that are supersets of
    /// another conjunct (`A ∨ (A ∧ B) = A`, valid for signed conjuncts too).
    pub fn minimize(&mut self) {
        let conjuncts = std::mem::take(&mut self.conjuncts);
        let mut keep = vec![true; conjuncts.len()];
        for i in 0..conjuncts.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..conjuncts.len() {
                if i != j
                    && keep[j]
                    && keep[i]
                    && is_lit_subset(&conjuncts[i], &conjuncts[j])
                    && (conjuncts[i].len() < conjuncts[j].len() || i < j)
                {
                    keep[j] = false;
                }
            }
        }
        self.conjuncts = conjuncts
            .into_iter()
            .zip(keep)
            .filter_map(|(c, k)| k.then_some(c))
            .collect();
    }

    /// Builds the equivalent circuit (`∨` of `∧` of literals) and returns
    /// the root.
    pub fn to_circuit(&self, circuit: &mut Circuit) -> NodeId {
        let disjuncts: Vec<NodeId> = self
            .conjuncts
            .iter()
            .map(|conj| {
                let lits: Vec<NodeId> = conj
                    .iter()
                    .map(|l| {
                        let v = circuit.var(VarId(l.var() as u32));
                        if l.is_positive() {
                            v
                        } else {
                            circuit.not(v)
                        }
                    })
                    .collect();
                circuit.and(lits)
            })
            .collect();
        circuit.or(disjuncts)
    }

    /// The positive-only projection, when the DNF is monotone.
    pub fn to_monotone(&self) -> Option<crate::Dnf> {
        if !self.is_monotone() {
            return None;
        }
        let mut d = crate::Dnf::new();
        for c in &self.conjuncts {
            d.add_conjunct(c.iter().map(|l| VarId(l.var() as u32)).collect());
        }
        Some(d)
    }
}

impl From<&crate::Dnf> for LiteralDnf {
    fn from(d: &crate::Dnf) -> LiteralDnf {
        let mut out = LiteralDnf::new();
        for c in d.conjuncts() {
            out.add_conjunct(c.iter().map(|v| Lit::pos(v.index())).collect());
        }
        out
    }
}

fn is_lit_subset(a: &[Lit], b: &[Lit]) -> bool {
    // Both sorted; standard merge-subset test.
    let mut ai = a.iter();
    let mut cur = ai.next();
    for x in b {
        match cur {
            None => return true,
            Some(y) if y == x => cur = ai.next(),
            Some(y) if y < x => return false,
            _ => {}
        }
    }
    cur.is_none()
}

impl fmt::Display for LiteralDnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjuncts.is_empty() {
            return write!(f, "⊥");
        }
        for (i, conj) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            if conj.is_empty() {
                write!(f, "⊤")?;
                continue;
            }
            write!(f, "(")?;
            for (j, l) in conj.iter().enumerate() {
                if j > 0 {
                    write!(f, " ∧ ")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(spec: &[(u32, bool)]) -> Vec<Lit> {
        spec.iter()
            .map(|&(v, pos)| {
                if pos {
                    Lit::pos(v as usize)
                } else {
                    Lit::neg(v as usize)
                }
            })
            .collect()
    }

    fn set(vars: &[usize], cap: usize) -> Bitset {
        let mut b = Bitset::new(cap);
        for &v in vars {
            b.insert(v);
        }
        b
    }

    #[test]
    fn contradictions_are_dropped() {
        let mut d = LiteralDnf::new();
        d.add_conjunct(lits(&[(0, true), (0, false)]));
        assert!(d.is_empty());
    }

    #[test]
    fn eval_respects_polarity() {
        // (r1 ∧ ¬s1) ∨ r2 over vars r1=0, s1=1, r2=2.
        let mut d = LiteralDnf::new();
        d.add_conjunct(lits(&[(0, true), (1, false)]));
        d.add_conjunct(lits(&[(2, true)]));
        assert!(d.eval_set(&set(&[0], 3)));
        assert!(!d.eval_set(&set(&[0, 1], 3)));
        assert!(d.eval_set(&set(&[0, 1, 2], 3)));
        assert!(!d.eval_set(&set(&[], 3)));
        assert!(!d.is_monotone());
        assert_eq!(d.vars(), vec![VarId(0), VarId(1), VarId(2)]);
    }

    #[test]
    fn signed_absorption() {
        let mut d = LiteralDnf::new();
        d.add_conjunct(lits(&[(0, false)]));
        d.add_conjunct(lits(&[(0, false), (1, true)]));
        d.minimize();
        assert_eq!(d.len(), 1);
        assert_eq!(d.conjuncts()[0], lits(&[(0, false)]));
    }

    #[test]
    fn circuit_roundtrip() {
        let mut d = LiteralDnf::new();
        d.add_conjunct(lits(&[(0, true), (1, false)]));
        d.add_conjunct(lits(&[(2, true)]));
        let mut c = Circuit::new();
        let root = d.to_circuit(&mut c);
        for mask in 0u64..8 {
            let s = {
                let mut b = Bitset::new(3);
                for i in 0..3 {
                    if mask >> i & 1 == 1 {
                        b.insert(i);
                    }
                }
                b
            };
            assert_eq!(c.eval_set(root, &s), d.eval_set(&s), "mask {mask}");
        }
    }

    #[test]
    fn monotone_projection() {
        let mut d = LiteralDnf::new();
        d.add_conjunct(lits(&[(0, true), (2, true)]));
        let m = d.to_monotone().unwrap();
        assert_eq!(m.conjuncts(), &[vec![VarId(0), VarId(2)]]);
        d.add_conjunct(lits(&[(1, false)]));
        assert!(d.to_monotone().is_none());
    }

    #[test]
    fn from_dnf_is_all_positive() {
        let mut m = crate::Dnf::new();
        m.add_conjunct(vec![VarId(0), VarId(1)]);
        let d = LiteralDnf::from(&m);
        assert!(d.is_monotone());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn display_renders_literals() {
        let mut d = LiteralDnf::new();
        d.add_conjunct(lits(&[(0, true), (1, false)]));
        assert_eq!(d.to_string(), "(x0 ∧ ¬x1)");
        assert_eq!(LiteralDnf::new().to_string(), "⊥");
    }
}
