//! Clausal (CNF) formulas.
//!
//! The knowledge compiler and the CNF Proxy heuristic (Algorithm 2) both
//! consume CNF produced by the Tseytin transformation. Variables are dense
//! `0..num_vars` indices local to the formula; the mapping back to database
//! facts lives in [`crate::tseytin::TseytinCnf`].

use shapdb_num::Bitset;
use std::fmt;

/// A literal: a variable index with a polarity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Lit {
    var: u32,
    positive: bool,
}

impl Lit {
    /// A positive literal for variable `v`.
    pub fn pos(v: usize) -> Lit {
        Lit {
            var: v as u32,
            positive: true,
        }
    }

    /// A negative literal for variable `v`.
    pub fn neg(v: usize) -> Lit {
        Lit {
            var: v as u32,
            positive: false,
        }
    }

    /// The variable index.
    pub fn var(self) -> usize {
        self.var as usize
    }

    /// True iff the literal is positive.
    pub fn is_positive(self) -> bool {
        self.positive
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Whether the literal is satisfied when its variable is `value`.
    pub fn satisfied_by(self, value: bool) -> bool {
        self.positive == value
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.positive {
            write!(f, "¬")?;
        }
        write!(f, "x{}", self.var)
    }
}

/// A disjunction of literals.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Builds a clause, sorting and deduplicating its literals.
    pub fn new(mut lits: Vec<Lit>) -> Clause {
        lits.sort_unstable();
        lits.dedup();
        Clause { lits }
    }

    /// The literals, sorted.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// True iff the clause is empty (unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// True iff the clause contains both `x` and `¬x` for some variable.
    pub fn is_tautology(&self) -> bool {
        self.lits
            .windows(2)
            .any(|w| w[0].var == w[1].var && w[0].positive != w[1].positive)
    }

    /// Evaluates under a total assignment (bitset of true variables).
    pub fn eval_set(&self, true_vars: &Bitset) -> bool {
        self.lits
            .iter()
            .any(|l| l.satisfied_by(true_vars.contains(l.var())))
    }
}

/// A conjunction of clauses over variables `0..num_vars`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// An empty (valid / always-true) CNF over `num_vars` variables.
    pub fn new(num_vars: usize) -> Cnf {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// True iff there are no clauses.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Adds a clause. Panics if a literal references a variable out of range.
    pub fn push(&mut self, clause: Clause) {
        for l in clause.lits() {
            assert!(l.var() < self.num_vars, "literal {l} out of range");
        }
        self.clauses.push(clause);
    }

    /// Adds a clause from raw literals.
    pub fn push_lits(&mut self, lits: Vec<Lit>) {
        self.push(Clause::new(lits));
    }

    /// Evaluates under a total assignment.
    pub fn eval_set(&self, true_vars: &Bitset) -> bool {
        self.clauses.iter().all(|c| c.eval_set(true_vars))
    }

    /// Counts models by brute force (only for `num_vars ≤ 24`; used in tests
    /// to validate the knowledge compiler).
    pub fn count_models_bruteforce(&self) -> u64 {
        assert!(self.num_vars <= 24, "brute force limited to 24 vars");
        let mut count = 0;
        for mask in 0u32..(1u32 << self.num_vars) {
            let mut set = Bitset::new(self.num_vars.max(1));
            for v in 0..self.num_vars {
                if mask >> v & 1 == 1 {
                    set.insert(v);
                }
            }
            if self.eval_set(&set) {
                count += 1;
            }
        }
        count
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊤");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "(")?;
            for (j, l) in c.lits().iter().enumerate() {
                if j > 0 {
                    write!(f, " ∨ ")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(bits: &[usize], cap: usize) -> Bitset {
        let mut b = Bitset::new(cap);
        for &x in bits {
            b.insert(x);
        }
        b
    }

    #[test]
    fn literal_polarity() {
        let l = Lit::pos(3);
        assert!(l.is_positive());
        assert_eq!(l.var(), 3);
        assert_eq!(l.negated(), Lit::neg(3));
        assert!(l.satisfied_by(true));
        assert!(!l.satisfied_by(false));
        assert!(Lit::neg(3).satisfied_by(false));
    }

    #[test]
    fn clause_dedup_and_tautology() {
        let c = Clause::new(vec![Lit::pos(1), Lit::pos(1), Lit::neg(0)]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_tautology());
        let t = Clause::new(vec![Lit::pos(2), Lit::neg(2)]);
        assert!(t.is_tautology());
    }

    #[test]
    fn cnf_eval() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ x2)
        let mut cnf = Cnf::new(3);
        cnf.push_lits(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.push_lits(vec![Lit::neg(0), Lit::pos(2)]);
        assert!(cnf.eval_set(&set(&[0, 2], 3)));
        assert!(cnf.eval_set(&set(&[1], 3)));
        assert!(!cnf.eval_set(&set(&[0], 3)));
        assert!(!cnf.eval_set(&set(&[], 3)));
    }

    #[test]
    fn brute_force_count() {
        // Example 5.1 of the paper: (x1 ∨ x2) ∧ (x1 ∨ x3 ∨ x4).
        let mut cnf = Cnf::new(4);
        cnf.push_lits(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.push_lits(vec![Lit::pos(0), Lit::pos(2), Lit::pos(3)]);
        // Models: x1 true (8) + x1 false, x2 true, at least one of x3/x4 (3) = 11.
        assert_eq!(cnf.count_models_bruteforce(), 11);
    }

    #[test]
    fn empty_cnf_is_valid() {
        let cnf = Cnf::new(2);
        assert!(cnf.eval_set(&set(&[], 2)));
        assert_eq!(cnf.count_models_bruteforce(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_literal() {
        let mut cnf = Cnf::new(1);
        cnf.push_lits(vec![Lit::pos(5)]);
    }

    #[test]
    fn display_renders_clauses() {
        let mut cnf = Cnf::new(2);
        cnf.push_lits(vec![Lit::pos(0), Lit::neg(1)]);
        assert_eq!(cnf.to_string(), "(x0 ∨ ¬x1)");
    }
}
