//! DIMACS CNF serialization.
//!
//! The paper's pipeline hands the Tseytin CNF to an external knowledge
//! compiler (`c2d`), which speaks the DIMACS CNF format. Our compiler is
//! in-process, but the format support makes the pipeline interoperable both
//! ways: export a lineage CNF for any external `#SAT`/compilation tool, or
//! import a CNF produced elsewhere.
//!
//! Variables are 1-based in DIMACS; [`Cnf`] variables are 0-based, so
//! variable `i` maps to DIMACS literal `i + 1`.

use crate::cnf::{Cnf, Lit};
use std::fmt::Write as _;

/// Renders a CNF in DIMACS format (with a `p cnf` header).
pub fn to_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    writeln!(out, "p cnf {} {}", cnf.num_vars(), cnf.len()).unwrap();
    for clause in cnf.clauses() {
        for l in clause.lits() {
            let v = l.var() as i64 + 1;
            write!(out, "{} ", if l.is_positive() { v } else { -v }).unwrap();
        }
        writeln!(out, "0").unwrap();
    }
    out
}

/// A DIMACS parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DimacsError(pub String);

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DIMACS error: {}", self.0)
    }
}

impl std::error::Error for DimacsError {}

/// Parses a DIMACS CNF. Comment lines (`c …`) are skipped; the `p cnf`
/// header is required and clause/variable counts are validated.
pub fn from_dimacs(text: &str) -> Result<Cnf, DimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut declared_clauses = 0usize;
    let mut cnf: Option<Cnf> = None;
    let mut current: Vec<Lit> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p cnf") {
            if num_vars.is_some() {
                return Err(DimacsError("duplicate header".into()));
            }
            let mut parts = rest.split_whitespace();
            let nv: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| DimacsError("bad variable count".into()))?;
            declared_clauses = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| DimacsError("bad clause count".into()))?;
            num_vars = Some(nv);
            cnf = Some(Cnf::new(nv.max(1)));
            continue;
        }
        let cnf_ref = cnf
            .as_mut()
            .ok_or_else(|| DimacsError("clause before header".into()))?;
        for tok in line.split_whitespace() {
            let v: i64 = tok
                .parse()
                .map_err(|_| DimacsError(format!("bad literal `{tok}`")))?;
            if v == 0 {
                cnf_ref.push_lits(std::mem::take(&mut current));
            } else {
                let var = v.unsigned_abs() as usize - 1;
                if var >= num_vars.unwrap() {
                    return Err(DimacsError(format!("literal {v} out of range")));
                }
                current.push(if v > 0 { Lit::pos(var) } else { Lit::neg(var) });
            }
        }
    }
    let cnf = cnf.ok_or_else(|| DimacsError("missing header".into()))?;
    if !current.is_empty() {
        return Err(DimacsError("clause not terminated by 0".into()));
    }
    if cnf.len() != declared_clauses {
        return Err(DimacsError(format!(
            "header declares {declared_clauses} clauses, found {}",
            cnf.len()
        )));
    }
    Ok(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Cnf {
        let mut cnf = Cnf::new(3);
        cnf.push_lits(vec![Lit::pos(0), Lit::neg(1)]);
        cnf.push_lits(vec![Lit::pos(2)]);
        cnf
    }

    #[test]
    fn round_trip() {
        let cnf = sample();
        let text = to_dimacs(&cnf);
        assert!(text.starts_with("p cnf 3 2"));
        let back = from_dimacs(&text).unwrap();
        assert_eq!(back, cnf);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "c a comment\n\np cnf 2 1\nc another\n1 -2 0\n";
        let cnf = from_dimacs(text).unwrap();
        assert_eq!(cnf.len(), 1);
        assert_eq!(cnf.clauses()[0].lits(), &[Lit::pos(0), Lit::neg(1)]);
    }

    #[test]
    fn multiline_clause() {
        let text = "p cnf 3 1\n1 2\n3 0\n";
        let cnf = from_dimacs(text).unwrap();
        assert_eq!(cnf.clauses()[0].len(), 3);
    }

    #[test]
    fn errors_detected() {
        assert!(from_dimacs("1 2 0").is_err()); // clause before header
        assert!(from_dimacs("p cnf 1 1\n5 0\n").is_err()); // out of range
        assert!(from_dimacs("p cnf 1 1\n1\n").is_err()); // unterminated
        assert!(from_dimacs("p cnf 2 3\n1 0\n").is_err()); // count mismatch
        assert!(from_dimacs("p cnf x 1\n").is_err()); // bad header
    }

    #[test]
    fn model_count_preserved_through_format() {
        let cnf = sample();
        let back = from_dimacs(&to_dimacs(&cnf)).unwrap();
        assert_eq!(
            cnf.count_models_bruteforce(),
            back.count_models_bruteforce()
        );
    }
}
