//! Read-once factorization of monotone DNF lineages.
//!
//! A Boolean function is *read-once* if it has a formula in which every
//! variable appears exactly once. Read-once lineages are the sweet spot of
//! Shapley computation: the formula itself is already decomposable (all
//! gates have variable-disjoint children), so `#SAT_k` — and hence Algorithm
//! 1's sum — can be evaluated directly on it, with no knowledge compilation
//! at all. This matters in practice because hierarchical self-join-free CQs
//! (the tractable class of Livshits et al. that the paper's §3 discusses)
//! always produce read-once lineages, and so do many non-hierarchical
//! outputs — e.g. the complete-bipartite pattern `⋁ᵢⱼ (xᵢ ∧ yⱼ)` of the
//! running example's `q2`, which factors into `(⋁ᵢxᵢ) ∧ (⋁ⱼyⱼ)`.
//!
//! The factorization here is the classical co-occurrence-graph method
//! (Golumbic–Mintz–Rotics): a minimized monotone DNF is exactly the set of
//! prime implicants of the function, and
//!
//! * the function ∨-decomposes along the connected components of the
//!   co-occurrence graph (two variables adjacent iff they share a prime
//!   implicant), and
//! * it ∧-decomposes along the *co-components* (connected components of the
//!   complement graph), provided the implicant set is exactly the Cartesian
//!   product of its block projections — the normality check that rejects
//!   e.g. the majority function `xy ∨ yz ∨ xz`.
//!
//! A monotone function is read-once iff this recursion reaches single
//! variables, which [`factor`] decides in `O(|D|·|V|²)` time.

use crate::circuit::{Circuit, NodeId, VarId};
use crate::dnf::Dnf;
use shapdb_num::Bitset;
use std::fmt;

/// A read-once formula tree: every variable occurs in exactly one leaf, so
/// all `∧`/`∨` nodes have variable-disjoint children.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReadOnce {
    /// Constant true (the lineage of a certain tuple).
    True,
    /// Constant false (the empty lineage).
    False,
    /// A single fact.
    Var(VarId),
    /// Conjunction of variable-disjoint subtrees.
    And(Vec<ReadOnce>),
    /// Disjunction of variable-disjoint subtrees.
    Or(Vec<ReadOnce>),
}

impl ReadOnce {
    /// Distinct variables of the tree, sorted.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort_unstable();
        out
    }

    fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            ReadOnce::True | ReadOnce::False => {}
            ReadOnce::Var(v) => out.push(*v),
            ReadOnce::And(cs) | ReadOnce::Or(cs) => {
                for c in cs {
                    c.collect_vars(out);
                }
            }
        }
    }

    /// Number of tree nodes.
    pub fn len(&self) -> usize {
        match self {
            ReadOnce::True | ReadOnce::False | ReadOnce::Var(_) => 1,
            ReadOnce::And(cs) | ReadOnce::Or(cs) => 1 + cs.iter().map(ReadOnce::len).sum::<usize>(),
        }
    }

    /// True iff the tree is a single leaf.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Evaluates under a set of true variables.
    pub fn eval_set(&self, true_vars: &Bitset) -> bool {
        match self {
            ReadOnce::True => true,
            ReadOnce::False => false,
            ReadOnce::Var(v) => true_vars.contains(v.index()),
            ReadOnce::And(cs) => cs.iter().all(|c| c.eval_set(true_vars)),
            ReadOnce::Or(cs) => cs.iter().any(|c| c.eval_set(true_vars)),
        }
    }

    /// Builds the equivalent circuit and returns its root.
    pub fn to_circuit(&self, circuit: &mut Circuit) -> NodeId {
        match self {
            ReadOnce::True => circuit.constant(true),
            ReadOnce::False => circuit.constant(false),
            ReadOnce::Var(v) => circuit.var(*v),
            ReadOnce::And(cs) => {
                let kids: Vec<NodeId> = cs.iter().map(|c| c.to_circuit(circuit)).collect();
                circuit.and(kids)
            }
            ReadOnce::Or(cs) => {
                let kids: Vec<NodeId> = cs.iter().map(|c| c.to_circuit(circuit)).collect();
                circuit.or(kids)
            }
        }
    }

    /// Structural read-once check: every variable occurs exactly once.
    pub fn is_well_formed(&self) -> bool {
        let mut vars = Vec::new();
        self.collect_vars(&mut vars);
        let n = vars.len();
        vars.sort_unstable();
        vars.dedup();
        vars.len() == n
    }
}

impl fmt::Display for ReadOnce {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadOnce::True => write!(f, "⊤"),
            ReadOnce::False => write!(f, "⊥"),
            ReadOnce::Var(v) => write!(f, "x{}", v.0),
            ReadOnce::And(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            ReadOnce::Or(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Factors a monotone DNF into a read-once tree, or returns `None` if the
/// function is not read-once.
///
/// The input is minimized first (absorption), which for monotone DNFs yields
/// exactly the prime-implicant set the decomposition theory requires.
pub fn factor(dnf: &Dnf) -> Option<ReadOnce> {
    let mut d = dnf.clone();
    d.minimize();
    factor_minimized(&d)
}

/// [`factor`] for a lineage the caller has **already** absorption-minimized
/// (skips the clone + minimize pass). Feeding an unminimized DNF may miss
/// factorizations that minimization would have exposed.
pub fn factor_minimized(d: &Dnf) -> Option<ReadOnce> {
    shapdb_metrics::counters::CIRCUIT_FACTOR_PASSES.incr();
    if d.is_empty() {
        return Some(ReadOnce::False);
    }
    if d.conjuncts().iter().any(|c| c.is_empty()) {
        // An empty conjunct absorbs everything: the constant-true lineage of
        // a certain tuple.
        return Some(ReadOnce::True);
    }
    let conjuncts: Vec<Vec<VarId>> = d.conjuncts().to_vec();
    factor_rec(&conjuncts)
}

/// Recursive Or-split / And-split on a prime-implicant antichain.
fn factor_rec(conjuncts: &[Vec<VarId>]) -> Option<ReadOnce> {
    debug_assert!(!conjuncts.is_empty());
    // Single conjunct: a plain conjunction of distinct variables.
    if conjuncts.len() == 1 {
        let c = &conjuncts[0];
        return Some(if c.len() == 1 {
            ReadOnce::Var(c[0])
        } else {
            ReadOnce::And(c.iter().map(|&v| ReadOnce::Var(v)).collect())
        });
    }

    // ∨-split: connected components of the conjunct graph (two conjuncts
    // adjacent iff they share a variable). Union-find over conjuncts, keyed
    // by per-variable occurrence.
    let groups = or_components(conjuncts);
    if groups.len() > 1 {
        let mut kids = Vec::with_capacity(groups.len());
        for g in &groups {
            let sub: Vec<Vec<VarId>> = g.iter().map(|&i| conjuncts[i].clone()).collect();
            kids.push(factor_rec(&sub)?);
        }
        return Some(ReadOnce::Or(kids));
    }

    // ∧-split: co-components of the variable co-occurrence graph, validated
    // by the Cartesian-product (normality) check.
    let blocks = and_blocks(conjuncts)?;
    if blocks.len() <= 1 {
        return None; // Connected co-occurrence graph *and* connected complement.
    }
    let mut kids = Vec::with_capacity(blocks.len());
    let mut expected = 1usize;
    for block in &blocks {
        // Project the implicants onto the block and deduplicate.
        let mut proj: Vec<Vec<VarId>> = Vec::new();
        for c in conjuncts {
            let p: Vec<VarId> = c
                .iter()
                .copied()
                .filter(|v| block.contains(v.index()))
                .collect();
            if p.is_empty() {
                return None; // An implicant missing a block: not a clean ∧.
            }
            if !proj.contains(&p) {
                proj.push(p);
            }
        }
        expected = expected.checked_mul(proj.len())?;
        kids.push(factor_rec(&proj)?);
    }
    // Normality: the implicant set must be exactly the product of the block
    // projections (rejects e.g. majority: xy ∨ yz ∨ xz).
    if expected != conjuncts.len() {
        return None;
    }
    Some(ReadOnce::And(kids))
}

/// Connected components of the conjunct-sharing graph, as index groups.
fn or_components(conjuncts: &[Vec<VarId>]) -> Vec<Vec<usize>> {
    let n = conjuncts.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            r = parent[r];
        }
        let mut cur = x;
        while parent[cur] != r {
            let next = parent[cur];
            parent[cur] = r;
            cur = next;
        }
        r
    }
    // Group conjuncts by variable: all conjuncts containing v are merged.
    let mut by_var: std::collections::HashMap<VarId, usize> = std::collections::HashMap::new();
    for (i, c) in conjuncts.iter().enumerate() {
        for &v in c {
            match by_var.entry(v) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let a = find(&mut parent, *e.get());
                    let b = find(&mut parent, i);
                    parent[a] = b;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
            }
        }
    }
    let mut groups: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(i);
    }
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    // Deterministic order: by smallest conjunct index.
    out.sort_by_key(|g| g[0]);
    out
}

/// Co-components (connected components of the complement) of the variable
/// co-occurrence graph. Returns `None` on pathological overflow-sized input.
fn and_blocks(conjuncts: &[Vec<VarId>]) -> Option<Vec<Bitset>> {
    // Dense-rank the variables.
    let mut vars: Vec<VarId> = conjuncts.iter().flatten().copied().collect();
    vars.sort_unstable();
    vars.dedup();
    let n = vars.len();
    let rank = |v: VarId| vars.binary_search(&v).expect("ranked var");

    // Adjacency of the co-occurrence graph as bitset rows.
    let mut adj: Vec<Bitset> = (0..n).map(|_| Bitset::new(n)).collect();
    for c in conjuncts {
        for (i, &a) in c.iter().enumerate() {
            for &b in &c[i + 1..] {
                let (ra, rb) = (rank(a), rank(b));
                adj[ra].insert(rb);
                adj[rb].insert(ra);
            }
        }
    }

    // BFS on the complement graph: neighbors of u in Ḡ are the unvisited
    // vertices *not* adjacent to u.
    let mut unvisited: Vec<usize> = (0..n).collect();
    let mut blocks: Vec<Bitset> = Vec::new();
    while let Some(start) = unvisited.pop() {
        let mut block = Bitset::new(n);
        block.insert(start);
        let mut queue = vec![start];
        while let Some(u) = queue.pop() {
            let mut still = Vec::with_capacity(unvisited.len());
            for &w in &unvisited {
                if !adj[u].contains(w) {
                    block.insert(w);
                    queue.push(w);
                } else {
                    still.push(w);
                }
            }
            unvisited = still;
        }
        blocks.push(block);
    }

    // Map dense ranks back to the VarId space: callers test `contains(v.index())`.
    let cap = vars.last().map_or(1, |v| v.index() + 1);
    let mut out = Vec::with_capacity(blocks.len());
    for b in blocks {
        let mut s = Bitset::new(cap);
        for r in b.iter() {
            s.insert(vars[r].index());
        }
        out.push(s);
    }
    // Deterministic order: by smallest member.
    out.sort_by_key(|b| b.iter().next().unwrap_or(usize::MAX));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dnf(conjs: &[&[u32]]) -> Dnf {
        let mut d = Dnf::new();
        for c in conjs {
            d.add_conjunct(c.iter().map(|&v| VarId(v)).collect());
        }
        d
    }

    /// Brute-force equivalence of a tree and a DNF over vars `0..n`.
    fn equivalent(t: &ReadOnce, d: &Dnf, n: usize) -> bool {
        for mask in 0u64..(1 << n) {
            let mut s = Bitset::new(n.max(1));
            for i in 0..n {
                if mask >> i & 1 == 1 {
                    s.insert(i);
                }
            }
            if t.eval_set(&s) != d.eval_set(&s) {
                return false;
            }
        }
        true
    }

    #[test]
    fn single_variable() {
        let d = dnf(&[&[3]]);
        assert_eq!(factor(&d), Some(ReadOnce::Var(VarId(3))));
    }

    #[test]
    fn single_conjunct_is_and_of_vars() {
        let d = dnf(&[&[0, 1, 2]]);
        let t = factor(&d).unwrap();
        assert!(matches!(&t, ReadOnce::And(cs) if cs.len() == 3));
        assert!(t.is_well_formed());
        assert!(equivalent(&t, &d, 3));
    }

    #[test]
    fn constant_cases() {
        assert_eq!(factor(&Dnf::new()), Some(ReadOnce::False));
        let mut top = Dnf::new();
        top.add_conjunct(vec![]);
        assert_eq!(factor(&top), Some(ReadOnce::True));
    }

    #[test]
    fn complete_bipartite_factors_as_and_of_ors() {
        // q2's pattern: ⋁ᵢⱼ xᵢ∧yⱼ = (x₁∨x₂)∧(y₁∨y₂). Vars x={0,1}, y={2,3}.
        let d = dnf(&[&[0, 2], &[0, 3], &[1, 2], &[1, 3]]);
        let t = factor(&d).unwrap();
        assert!(t.is_well_formed());
        assert!(equivalent(&t, &d, 4));
        assert!(matches!(&t, ReadOnce::And(cs) if cs.len() == 2));
    }

    #[test]
    fn running_example_elin_is_read_once() {
        // a1 ∨ (a2∧a4) ∨ (a2∧a5) ∨ (a3∧a4) ∨ (a3∧a5) ∨ (a6∧a7)
        //   = a1 ∨ ((a2∨a3)∧(a4∨a5)) ∨ (a6∧a7).
        let d = dnf(&[&[0], &[1, 3], &[1, 4], &[2, 3], &[2, 4], &[5, 6]]);
        let t = factor(&d).unwrap();
        assert!(t.is_well_formed());
        assert!(equivalent(&t, &d, 7));
        assert!(matches!(&t, ReadOnce::Or(cs) if cs.len() == 3));
    }

    #[test]
    fn majority_is_not_read_once() {
        let d = dnf(&[&[0, 1], &[1, 2], &[0, 2]]);
        assert_eq!(factor(&d), None);
    }

    #[test]
    fn path_lineage_is_not_read_once() {
        // Non-hierarchical R(x),S(x,y),T(y) pattern over a 2×2 "zigzag":
        // r1 s11 t1 ∨ r1 s12 t2 ∨ r2 s22 t2 — vars r={0,1}, s={2,3,4}, t={5,6}.
        let d = dnf(&[&[0, 2, 5], &[0, 3, 6], &[1, 4, 6]]);
        assert_eq!(factor(&d), None);
    }

    #[test]
    fn absorption_is_applied_before_factoring() {
        // x ∨ (x∧y) minimizes to x: read-once trivially.
        let d = dnf(&[&[0], &[0, 1]]);
        assert_eq!(factor(&d), Some(ReadOnce::Var(VarId(0))));
    }

    #[test]
    fn nested_alternation() {
        // x ∧ (y ∨ (z ∧ w)): PIs = {x,y}, {x,z,w}.
        let d = dnf(&[&[0, 1], &[0, 2, 3]]);
        let t = factor(&d).unwrap();
        assert!(t.is_well_formed());
        assert!(equivalent(&t, &d, 4));
    }

    #[test]
    fn grid_16x16_factors_instantly() {
        // The case that is intractable for Tseytin+compile: 256 conjuncts.
        let mut d = Dnf::new();
        for i in 0..16u32 {
            for j in 0..16u32 {
                d.add_conjunct(vec![VarId(i), VarId(16 + j)]);
            }
        }
        let t = factor(&d).unwrap();
        assert!(t.is_well_formed());
        assert_eq!(t.vars().len(), 32);
        assert!(matches!(&t, ReadOnce::And(cs) if cs.len() == 2));
    }

    #[test]
    fn display_and_to_circuit_roundtrip() {
        let d = dnf(&[&[0], &[1, 2]]);
        let t = factor(&d).unwrap();
        let mut c = Circuit::new();
        let root = t.to_circuit(&mut c);
        for mask in 0u64..8 {
            let mut s = Bitset::new(3);
            for i in 0..3 {
                if mask >> i & 1 == 1 {
                    s.insert(i);
                }
            }
            assert_eq!(c.eval_set(root, &s), d.eval_set(&s));
        }
        assert!(!t.to_string().is_empty());
    }

    #[test]
    fn sparse_variable_ids_are_preserved() {
        // Non-dense var ids exercise the rank mapping.
        let d = dnf(&[&[100, 7], &[100, 900]]);
        let t = factor(&d).unwrap();
        assert!(t.is_well_formed());
        assert_eq!(t.vars(), vec![VarId(7), VarId(100), VarId(900)]);
    }
}
