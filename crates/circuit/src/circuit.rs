//! Arena-allocated, hash-consed Boolean circuits.

use shapdb_num::Bitset;
use std::collections::HashMap;

/// A Boolean variable of a circuit. For provenance circuits this is the
/// database fact-id index (`shapdb_data::FactId`); the circuit itself is
/// agnostic.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// The variable as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A gate handle inside a [`Circuit`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A gate. `And([])` is ⊤ and `Or([])` is ⊥, matching the paper's convention
/// for constant gates (footnote 2), though explicit `Const` gates are also
/// supported.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Gate {
    Const(bool),
    Var(VarId),
    Not(NodeId),
    And(Box<[NodeId]>),
    Or(Box<[NodeId]>),
}

/// A Boolean circuit: an arena of gates with structural sharing.
///
/// Construction goes through the builder methods ([`Circuit::var`],
/// [`Circuit::and`], …), which hash-cons: structurally identical gates get
/// the same [`NodeId`]. With `simplify` enabled (the default), constants are
/// folded, duplicate children dropped, and unary `∧/∨` gates collapsed to
/// their child. A *raw* mode ([`Circuit::new_raw`]) keeps unary gates, which
/// reproduces the exact Tseytin clause shapes discussed in Example 5.4 of
/// the paper.
#[derive(Clone, Debug)]
pub struct Circuit {
    gates: Vec<Gate>,
    dedup: HashMap<Gate, NodeId>,
    simplify: bool,
    root: Option<NodeId>,
}

impl Default for Circuit {
    fn default() -> Self {
        Circuit::new()
    }
}

impl Circuit {
    /// A new empty circuit with simplification enabled.
    pub fn new() -> Circuit {
        Circuit {
            gates: Vec::new(),
            dedup: HashMap::new(),
            simplify: true,
            root: None,
        }
    }

    /// A new empty circuit that performs no algebraic simplification
    /// (hash-consing still applies).
    pub fn new_raw() -> Circuit {
        Circuit {
            simplify: false,
            ..Circuit::new()
        }
    }

    /// Number of gates in the arena.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True iff the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate behind a node id.
    pub fn gate(&self, n: NodeId) -> &Gate {
        &self.gates[n.index()]
    }

    /// Sets the designated output gate.
    pub fn set_root(&mut self, root: NodeId) {
        self.root = Some(root);
    }

    /// The designated output gate.
    pub fn root(&self) -> NodeId {
        self.root.expect("circuit root not set")
    }

    fn intern(&mut self, gate: Gate) -> NodeId {
        if let Some(&id) = self.dedup.get(&gate) {
            return id;
        }
        let id = NodeId(self.gates.len() as u32);
        self.gates.push(gate.clone());
        self.dedup.insert(gate, id);
        id
    }

    /// A constant gate.
    pub fn constant(&mut self, v: bool) -> NodeId {
        self.intern(Gate::Const(v))
    }

    /// A variable gate.
    pub fn var(&mut self, v: VarId) -> NodeId {
        self.intern(Gate::Var(v))
    }

    /// A negation gate (simplifies `¬¬x → x` and `¬const`).
    pub fn not(&mut self, n: NodeId) -> NodeId {
        if self.simplify {
            match self.gates[n.index()] {
                Gate::Const(b) => return self.constant(!b),
                Gate::Not(inner) => return inner,
                _ => {}
            }
        }
        self.intern(Gate::Not(n))
    }

    /// A conjunction gate over the given children.
    pub fn and(&mut self, children: impl IntoIterator<Item = NodeId>) -> NodeId {
        let mut kids: Vec<NodeId> = children.into_iter().collect();
        if self.simplify {
            kids.retain(|&c| !matches!(self.gates[c.index()], Gate::Const(true)));
            if kids
                .iter()
                .any(|&c| matches!(self.gates[c.index()], Gate::Const(false)))
            {
                return self.constant(false);
            }
            kids.sort_unstable();
            kids.dedup();
            if kids.is_empty() {
                return self.constant(true);
            }
            if kids.len() == 1 {
                return kids[0];
            }
        }
        self.intern(Gate::And(kids.into_boxed_slice()))
    }

    /// A disjunction gate over the given children.
    pub fn or(&mut self, children: impl IntoIterator<Item = NodeId>) -> NodeId {
        let mut kids: Vec<NodeId> = children.into_iter().collect();
        if self.simplify {
            kids.retain(|&c| !matches!(self.gates[c.index()], Gate::Const(false)));
            if kids
                .iter()
                .any(|&c| matches!(self.gates[c.index()], Gate::Const(true)))
            {
                return self.constant(true);
            }
            kids.sort_unstable();
            kids.dedup();
            if kids.is_empty() {
                return self.constant(false);
            }
            if kids.len() == 1 {
                return kids[0];
            }
        }
        self.intern(Gate::Or(kids.into_boxed_slice()))
    }

    /// Evaluates the gate `n` under the given variable assignment.
    ///
    /// Iterative (explicit memo over the arena prefix), so deep circuits do
    /// not overflow the stack.
    pub fn eval(&self, n: NodeId, assignment: &impl Fn(VarId) -> bool) -> bool {
        // Gates only reference earlier gates, so a forward sweep suffices.
        let mut memo = vec![false; n.index() + 1];
        for (i, gate) in self.gates[..=n.index()].iter().enumerate() {
            memo[i] = match gate {
                Gate::Const(b) => *b,
                Gate::Var(v) => assignment(*v),
                Gate::Not(c) => !memo[c.index()],
                Gate::And(cs) => cs.iter().all(|c| memo[c.index()]),
                Gate::Or(cs) => cs.iter().any(|c| memo[c.index()]),
            };
        }
        memo[n.index()]
    }

    /// Evaluates under a set of true variables (all others false).
    pub fn eval_set(&self, n: NodeId, true_vars: &Bitset) -> bool {
        self.eval(n, &|v: VarId| true_vars.contains(v.index()))
    }

    /// The set of variables with a path to `n`, as a bitset over
    /// `0..var_capacity`.
    pub fn vars(&self, n: NodeId, var_capacity: usize) -> Bitset {
        let mut out = Bitset::new(var_capacity);
        for i in self.reachable(n).iter() {
            if let Gate::Var(v) = &self.gates[i] {
                out.insert(v.index());
            }
        }
        out
    }

    /// Sorted list of distinct variables under `n`.
    pub fn var_list(&self, n: NodeId) -> Vec<VarId> {
        let mut vars: Vec<VarId> = self
            .reachable(n)
            .iter()
            .filter_map(|i| match &self.gates[i] {
                Gate::Var(v) => Some(*v),
                _ => None,
            })
            .collect();
        vars.sort_unstable();
        vars
    }

    /// Bitset of arena indices reachable from `n` (including `n`).
    fn reachable(&self, n: NodeId) -> Bitset {
        let mut seen = Bitset::new(self.gates.len());
        let mut stack = vec![n];
        while let Some(cur) = stack.pop() {
            if seen.contains(cur.index()) {
                continue;
            }
            seen.insert(cur.index());
            match &self.gates[cur.index()] {
                Gate::Not(c) => stack.push(*c),
                Gate::And(cs) | Gate::Or(cs) => stack.extend(cs.iter().copied()),
                _ => {}
            }
        }
        seen
    }

    /// Number of gates reachable from `n`.
    pub fn dag_size(&self, n: NodeId) -> usize {
        self.reachable(n).len()
    }

    /// Rebuilds the sub-circuit under `n` with some variables replaced by
    /// constants. Returns the new circuit and its root.
    ///
    /// This is the "partial eval: set exo vars to 1" step of Figure 3 when
    /// called with the exogenous facts mapped to `true`.
    pub fn restrict(&self, n: NodeId, fixed: &impl Fn(VarId) -> Option<bool>) -> Circuit {
        let mut out = if self.simplify {
            Circuit::new()
        } else {
            Circuit::new_raw()
        };
        let mut map: Vec<Option<NodeId>> = vec![None; n.index() + 1];
        for i in 0..=n.index() {
            let new_id = match &self.gates[i] {
                Gate::Const(b) => out.constant(*b),
                Gate::Var(v) => match fixed(*v) {
                    Some(b) => out.constant(b),
                    None => out.var(*v),
                },
                Gate::Not(c) => {
                    let c = map[c.index()].unwrap();
                    out.not(c)
                }
                Gate::And(cs) => {
                    let kids: Vec<NodeId> = cs.iter().map(|c| map[c.index()].unwrap()).collect();
                    out.and(kids)
                }
                Gate::Or(cs) => {
                    let kids: Vec<NodeId> = cs.iter().map(|c| map[c.index()].unwrap()).collect();
                    out.or(kids)
                }
            };
            map[i] = Some(new_id);
        }
        out.set_root(map[n.index()].unwrap());
        out
    }

    /// Counts gates by kind under `n`: `(consts, vars, nots, ands, ors)`.
    pub fn gate_counts(&self, n: NodeId) -> (usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0);
        for i in self.reachable(n).iter() {
            match &self.gates[i] {
                Gate::Const(_) => c.0 += 1,
                Gate::Var(_) => c.1 += 1,
                Gate::Not(_) => c.2 += 1,
                Gate::And(_) => c.3 += 1,
                Gate::Or(_) => c.4 += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vset(vars: &[u32], cap: usize) -> Bitset {
        let mut b = Bitset::new(cap);
        for &v in vars {
            b.insert(v as usize);
        }
        b
    }

    #[test]
    fn build_and_eval() {
        let mut c = Circuit::new();
        let x = c.var(VarId(0));
        let y = c.var(VarId(1));
        let nx = c.not(x);
        let g = c.and([nx, y]);
        let root = c.or([g, x]);
        // Truth table of x ∨ (¬x ∧ y) = x ∨ y.
        assert!(!c.eval_set(root, &vset(&[], 2)));
        assert!(c.eval_set(root, &vset(&[0], 2)));
        assert!(c.eval_set(root, &vset(&[1], 2)));
        assert!(c.eval_set(root, &vset(&[0, 1], 2)));
    }

    #[test]
    fn hash_consing_shares_structure() {
        let mut c = Circuit::new();
        let x = c.var(VarId(0));
        let y = c.var(VarId(1));
        let a1 = c.and([x, y]);
        let a2 = c.and([y, x]); // sorted => identical
        assert_eq!(a1, a2);
        let before = c.len();
        let _a3 = c.and([x, y]);
        assert_eq!(c.len(), before);
    }

    #[test]
    fn simplification_rules() {
        let mut c = Circuit::new();
        let t = c.constant(true);
        let f = c.constant(false);
        let x = c.var(VarId(0));
        assert_eq!(c.and([x, t]), x); // unary collapse after const drop
        assert_eq!(c.and([x, f]), f);
        assert_eq!(c.or([x, f]), x);
        assert_eq!(c.or([x, t]), t);
        assert_eq!(c.and([]), t);
        assert_eq!(c.or([]), f);
        let nx = c.not(x);
        assert_eq!(c.not(nx), x);
        assert_eq!(c.and([x, x]), x);
    }

    #[test]
    fn raw_mode_keeps_unary_gates() {
        let mut c = Circuit::new_raw();
        let x = c.var(VarId(0));
        let a = c.and([x]);
        assert_ne!(a, x);
        assert!(matches!(c.gate(a), Gate::And(kids) if kids.len() == 1));
        // Still evaluates correctly.
        assert!(c.eval_set(a, &vset(&[0], 1)));
        assert!(!c.eval_set(a, &vset(&[], 1)));
    }

    #[test]
    fn vars_and_dag_size() {
        let mut c = Circuit::new();
        let x = c.var(VarId(3));
        let y = c.var(VarId(7));
        let g = c.and([x, y]);
        let root = c.or([g, x]);
        let vars = c.vars(root, 10);
        assert_eq!(vars.iter().collect::<Vec<_>>(), vec![3, 7]);
        assert_eq!(c.var_list(root), vec![VarId(3), VarId(7)]);
        assert_eq!(c.dag_size(root), 4); // x, y, and, or
    }

    #[test]
    fn restrict_sets_exogenous_to_true() {
        // ELin construction: (a1 ∧ b1 ∧ b8) ∨ (a2 ∧ a4 ∧ b2) with b* exogenous.
        let mut c = Circuit::new();
        let a1 = c.var(VarId(0));
        let a2 = c.var(VarId(1));
        let a4 = c.var(VarId(2));
        let b1 = c.var(VarId(10));
        let b8 = c.var(VarId(11));
        let b2 = c.var(VarId(12));
        let d1 = c.and([a1, b1, b8]);
        let d2 = c.and([a2, a4, b2]);
        let root = c.or([d1, d2]);
        let restricted = c.restrict(root, &|v| if v.0 >= 10 { Some(true) } else { None });
        let r = restricted.root();
        assert_eq!(restricted.var_list(r), vec![VarId(0), VarId(1), VarId(2)]);
        // a1 alone satisfies; a2 alone does not; {a2,a4} does.
        assert!(restricted.eval_set(r, &vset(&[0], 3)));
        assert!(!restricted.eval_set(r, &vset(&[1], 3)));
        assert!(restricted.eval_set(r, &vset(&[1, 2], 3)));
    }

    #[test]
    fn restrict_to_constant_root() {
        let mut c = Circuit::new();
        let x = c.var(VarId(0));
        let y = c.var(VarId(1));
        let root = c.or([x, y]);
        let all_true = c.restrict(root, &|_| Some(true));
        assert!(matches!(all_true.gate(all_true.root()), Gate::Const(true)));
    }

    #[test]
    fn gate_counts() {
        let mut c = Circuit::new();
        let x = c.var(VarId(0));
        let y = c.var(VarId(1));
        let nx = c.not(x);
        let g = c.and([nx, y]);
        let root = c.or([g, x]);
        let (consts, vars, nots, ands, ors) = c.gate_counts(root);
        assert_eq!((consts, vars, nots, ands, ors), (0, 2, 1, 1, 1));
    }
}
