//! Monotone DNF lineages.
//!
//! UCQ provenance is naturally a *monotone* DNF — a disjunction of
//! conjunctions of (positive) facts, as in Figure 1d of the paper. This type
//! is the bridge between query evaluation (which produces one conjunct per
//! derivation) and the circuit world.

use crate::circuit::{Circuit, NodeId, VarId};
use shapdb_num::Bitset;
use std::fmt;

/// A monotone DNF: a set of conjuncts, each a sorted set of variables.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Dnf {
    conjuncts: Vec<Vec<VarId>>,
}

impl Dnf {
    /// An empty DNF (the constant false).
    pub fn new() -> Dnf {
        Dnf::default()
    }

    /// Adds a conjunct (sorted + deduplicated; duplicate conjuncts and
    /// conjuncts subsumed syntactically by an identical one are dropped).
    pub fn add_conjunct(&mut self, mut vars: Vec<VarId>) {
        vars.sort_unstable();
        vars.dedup();
        if !self.conjuncts.contains(&vars) {
            self.conjuncts.push(vars);
        }
    }

    /// The conjuncts.
    pub fn conjuncts(&self) -> &[Vec<VarId>] {
        &self.conjuncts
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.conjuncts.len()
    }

    /// True iff the DNF is the constant false.
    pub fn is_empty(&self) -> bool {
        self.conjuncts.is_empty()
    }

    /// Distinct variables, sorted.
    pub fn vars(&self) -> Vec<VarId> {
        let mut vs: Vec<VarId> = self.conjuncts.iter().flatten().copied().collect();
        vs.sort_unstable();
        vs.dedup();
        vs
    }

    /// Evaluates under a set of true variables.
    pub fn eval_set(&self, true_vars: &Bitset) -> bool {
        self.conjuncts
            .iter()
            .any(|c| c.iter().all(|v| true_vars.contains(v.index())))
    }

    /// Removes conjuncts that are supersets of another conjunct (absorption:
    /// `x ∨ (x ∧ y) = x`) and sorts the survivors into canonical
    /// (lexicographic) order. Keeps the function identical while shrinking
    /// the representation.
    ///
    /// The canonical order makes the minimized form *unique*: the surviving
    /// conjuncts of a monotone DNF are its minimal conjuncts, a set that
    /// does not depend on insertion order — so two evaluation strategies
    /// that enumerate derivations in different orders (the materializing
    /// evaluator and the per-answer streaming extractor) produce
    /// bit-identical minimized lineages.
    ///
    /// Subsumption runs on dense [`Bitset`]s — one word-parallel subset test
    /// per pair, `O(conjuncts² · words)` — instead of per-pair merges over
    /// the sorted variable lists, which is what makes minimization of wide
    /// lineages (hundreds of variables per conjunct) cheap.
    pub fn minimize(&mut self) {
        shapdb_metrics::counters::CIRCUIT_MINIMIZE_PASSES.incr();
        let n = self.conjuncts.len();
        if n <= 1 {
            return;
        }
        // Dense variable space: fact ids are sparse, bitsets must not be.
        let vars = self.vars();
        let sets: Vec<Bitset> = self
            .conjuncts
            .iter()
            .map(|c| {
                let mut b = Bitset::new(vars.len());
                for v in c {
                    b.insert(vars.binary_search(v).expect("var in lineage"));
                }
                b
            })
            .collect();
        let mut keep = vec![true; n];
        for i in 0..n {
            if !keep[i] {
                continue;
            }
            for j in 0..n {
                if i != j
                    && keep[j]
                    && keep[i]
                    && sets[i].is_subset(&sets[j])
                    && (self.conjuncts[i].len() < self.conjuncts[j].len() || i < j)
                {
                    keep[j] = false;
                }
            }
        }
        let mut idx = 0;
        self.conjuncts.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
        self.conjuncts.sort_unstable();
    }

    /// Disjunction: the union of both conjunct sets (provenance of a
    /// duplicate-eliminating ∪ / π).
    pub fn or_with(&mut self, other: &Dnf) {
        for c in other.conjuncts() {
            self.add_conjunct(c.clone());
        }
    }

    /// Conjunction by distribution: every pair of conjuncts merges
    /// (provenance of ⋈). The size is the product of the inputs' sizes —
    /// fine for per-tuple lineages, which is what query evaluation builds.
    pub fn and_product(&self, other: &Dnf) -> Dnf {
        let mut out = Dnf::new();
        for a in self.conjuncts() {
            for b in other.conjuncts() {
                let mut merged = a.clone();
                merged.extend_from_slice(b);
                out.add_conjunct(merged);
            }
        }
        out
    }

    /// Remaps the DNF onto dense variables `0..k`, returning the dense DNF
    /// and the sorted original variables (dense index → original). The
    /// sampling/naive engines and the bench runner evaluate lineages over
    /// their own variables this way.
    pub fn densify(&self) -> (Dnf, Vec<VarId>) {
        let vars = self.vars();
        let index_of = |v: VarId| vars.binary_search(&v).expect("var in lineage") as u32;
        let mut dense = Dnf::new();
        for conj in self.conjuncts() {
            dense.add_conjunct(conj.iter().map(|&v| VarId(index_of(v))).collect());
        }
        (dense, vars)
    }

    /// Builds the equivalent circuit (`∨` of `∧` of variables) in `circuit`
    /// and returns the root.
    pub fn to_circuit(&self, circuit: &mut Circuit) -> NodeId {
        let disjuncts: Vec<NodeId> = self
            .conjuncts
            .iter()
            .map(|conj| {
                let lits: Vec<NodeId> = conj.iter().map(|&v| circuit.var(v)).collect();
                circuit.and(lits)
            })
            .collect();
        let root = circuit.or(disjuncts);
        circuit.set_root(root);
        root
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.conjuncts.is_empty() {
            return write!(f, "⊥");
        }
        for (i, c) in self.conjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "(")?;
            for (j, v) in c.iter().enumerate() {
                if j > 0 {
                    write!(f, " ∧ ")?;
                }
                write!(f, "f{}", v.0)?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(bits: &[usize], cap: usize) -> Bitset {
        let mut b = Bitset::new(cap);
        for &x in bits {
            b.insert(x);
        }
        b
    }

    fn v(ids: &[u32]) -> Vec<VarId> {
        ids.iter().map(|&i| VarId(i)).collect()
    }

    #[test]
    fn add_and_eval() {
        // a1 ∨ (a2 ∧ a4): the endogenous lineage shape of the running example.
        let mut d = Dnf::new();
        d.add_conjunct(v(&[0]));
        d.add_conjunct(v(&[1, 3]));
        assert_eq!(d.len(), 2);
        assert!(d.eval_set(&set(&[0], 4)));
        assert!(!d.eval_set(&set(&[1], 4)));
        assert!(d.eval_set(&set(&[1, 3], 4)));
        assert_eq!(d.vars(), v(&[0, 1, 3]));
    }

    #[test]
    fn duplicate_conjuncts_dropped() {
        let mut d = Dnf::new();
        d.add_conjunct(v(&[2, 1]));
        d.add_conjunct(v(&[1, 2]));
        d.add_conjunct(v(&[1, 2, 2]));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn minimize_absorbs_supersets() {
        let mut d = Dnf::new();
        d.add_conjunct(v(&[0]));
        d.add_conjunct(v(&[0, 1]));
        d.add_conjunct(v(&[2, 3]));
        d.minimize();
        assert_eq!(d.len(), 2);
        assert!(d.conjuncts().contains(&v(&[0])));
        assert!(d.conjuncts().contains(&v(&[2, 3])));
    }

    #[test]
    fn to_circuit_equivalence() {
        let mut d = Dnf::new();
        d.add_conjunct(v(&[0]));
        d.add_conjunct(v(&[1, 2]));
        let mut c = Circuit::new();
        let root = d.to_circuit(&mut c);
        for mask in 0u32..8 {
            let bits: Vec<usize> = (0..3).filter(|&i| mask >> i & 1 == 1).collect();
            let s = set(&bits, 3);
            assert_eq!(c.eval_set(root, &s), d.eval_set(&s), "mask {mask}");
        }
    }

    #[test]
    fn empty_dnf_is_false() {
        let d = Dnf::new();
        assert!(!d.eval_set(&set(&[], 1)));
        let mut c = Circuit::new();
        let root = d.to_circuit(&mut c);
        assert!(!c.eval_set(root, &set(&[], 1)));
    }

    #[test]
    fn display_matches_paper_style() {
        let mut d = Dnf::new();
        d.add_conjunct(v(&[0]));
        d.add_conjunct(v(&[1, 3]));
        assert_eq!(d.to_string(), "(f0) ∨ (f1 ∧ f3)");
    }
}
