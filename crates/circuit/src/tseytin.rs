//! The Tseytin transformation: Boolean circuit → equisatisfiable CNF.
//!
//! Knowledge compilers consume CNF, not circuits (§4.2 of the paper), so the
//! endogenous-lineage circuit `C'` is translated into `φ = Tseytin(C')` with
//! one auxiliary variable per internal gate. The produced CNF has the three
//! properties the paper's Lemma 4.6 relies on:
//!
//! 1. its variables are the circuit's variables plus auxiliary ones;
//! 2. every satisfying assignment of `C'` extends to **exactly one**
//!    satisfying assignment of `φ` (gate definitions are bi-implications);
//! 3. non-satisfying assignments of `C'` extend to none.
//!
//! CNF variables are dense: indices `0..num_inputs` are the circuit's
//! variables (in sorted [`VarId`] order), the rest are auxiliary.

use crate::circuit::{Circuit, Gate, NodeId, VarId};
use crate::cnf::{Cnf, Lit};
use std::collections::HashMap;

/// The result of the Tseytin transformation.
#[derive(Clone, Debug)]
pub struct TseytinCnf {
    /// The clauses (over inputs and auxiliary variables).
    pub cnf: Cnf,
    /// `input_vars[i]` is the circuit variable represented by CNF variable
    /// `i`; CNF variables `input_vars.len()..` are auxiliary.
    pub input_vars: Vec<VarId>,
}

impl TseytinCnf {
    /// Number of non-auxiliary (circuit input) variables.
    pub fn num_inputs(&self) -> usize {
        self.input_vars.len()
    }

    /// True iff CNF variable `v` is a Tseytin auxiliary variable.
    pub fn is_aux(&self, v: usize) -> bool {
        v >= self.input_vars.len()
    }

    /// CNF variable index of a circuit variable, if it occurs.
    pub fn input_index(&self, v: VarId) -> Option<usize> {
        self.input_vars.binary_search(&v).ok()
    }
}

/// Representation of a gate's value inside the CNF.
#[derive(Clone, Copy)]
enum Repr {
    Const(bool),
    Lit(Lit),
}

impl Repr {
    fn negate(self) -> Repr {
        match self {
            Repr::Const(b) => Repr::Const(!b),
            Repr::Lit(l) => Repr::Lit(l.negated()),
        }
    }
}

/// Transforms the sub-circuit rooted at `root` into CNF.
///
/// Every `∧`/`∨` gate with at least one non-constant child receives an
/// auxiliary variable and bi-implication clauses — including unary gates
/// (which only arise in [`Circuit::new_raw`] mode); this reproduces the exact
/// clause shapes of Examples 5.3 and 5.4 of the paper. A final unit clause
/// asserts the root.
pub fn tseytin(circuit: &Circuit, root: NodeId) -> TseytinCnf {
    // Dense input numbering in sorted VarId order.
    let input_vars = circuit.var_list(root);
    let input_index: HashMap<VarId, usize> = input_vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();

    // First pass: discover reachable gates (arena order is topological).
    let mut reachable = vec![false; root.0 as usize + 1];
    reachable[root.0 as usize] = true;
    for i in (0..=root.0 as usize).rev() {
        if !reachable[i] {
            continue;
        }
        match circuit.gate(NodeId(i as u32)) {
            Gate::Not(c) => reachable[c.0 as usize] = true,
            Gate::And(cs) | Gate::Or(cs) => {
                for c in cs.iter() {
                    reachable[c.0 as usize] = true;
                }
            }
            _ => {}
        }
    }

    // Count auxiliary variables needed: one per reachable And/Or gate whose
    // children are not all constants (determined during the main pass, so we
    // allocate lazily).
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut next_aux = input_vars.len();
    let mut reprs: Vec<Option<Repr>> = vec![None; root.0 as usize + 1];

    for i in 0..=root.0 as usize {
        if !reachable[i] {
            continue;
        }
        let repr = match circuit.gate(NodeId(i as u32)) {
            Gate::Const(b) => Repr::Const(*b),
            Gate::Var(v) => Repr::Lit(Lit::pos(input_index[v])),
            Gate::Not(c) => reprs[c.0 as usize].expect("child before parent").negate(),
            Gate::And(cs) => {
                let mut kid_lits = Vec::with_capacity(cs.len());
                let mut short_circuit = false;
                for c in cs.iter() {
                    match reprs[c.0 as usize].expect("child before parent") {
                        Repr::Const(false) => {
                            short_circuit = true;
                            break;
                        }
                        Repr::Const(true) => {}
                        Repr::Lit(l) => kid_lits.push(l),
                    }
                }
                if short_circuit {
                    Repr::Const(false)
                } else if kid_lits.is_empty() {
                    Repr::Const(true)
                } else {
                    let g = Lit::pos(next_aux);
                    next_aux += 1;
                    // g → l_j for each child; (∧ l_j) → g.
                    let mut back = vec![g];
                    for &l in &kid_lits {
                        clauses.push(vec![g.negated(), l]);
                        back.push(l.negated());
                    }
                    clauses.push(back);
                    Repr::Lit(g)
                }
            }
            Gate::Or(cs) => {
                let mut kid_lits = Vec::with_capacity(cs.len());
                let mut short_circuit = false;
                for c in cs.iter() {
                    match reprs[c.0 as usize].expect("child before parent") {
                        Repr::Const(true) => {
                            short_circuit = true;
                            break;
                        }
                        Repr::Const(false) => {}
                        Repr::Lit(l) => kid_lits.push(l),
                    }
                }
                if short_circuit {
                    Repr::Const(true)
                } else if kid_lits.is_empty() {
                    Repr::Const(false)
                } else {
                    let g = Lit::pos(next_aux);
                    next_aux += 1;
                    // l_j → g for each child; g → (∨ l_j).
                    let mut fwd = vec![g.negated()];
                    for &l in &kid_lits {
                        clauses.push(vec![g, l.negated()]);
                        fwd.push(l);
                    }
                    clauses.push(fwd);
                    Repr::Lit(g)
                }
            }
        };
        reprs[i] = Some(repr);
    }

    let mut cnf = Cnf::new(next_aux.max(1));
    match reprs[root.0 as usize].unwrap() {
        Repr::Const(true) => {}
        Repr::Const(false) => cnf.push_lits(vec![]), // empty clause: unsat
        Repr::Lit(l) => {
            for c in clauses {
                cnf.push_lits(c);
            }
            cnf.push_lits(vec![l]);
        }
    }
    TseytinCnf { cnf, input_vars }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnf::Dnf;
    use shapdb_num::Bitset;

    /// Checks properties (2)+(3): for every input assignment, the number of
    /// CNF extensions is 1 if the circuit accepts and 0 otherwise.
    fn check_extension_property(circuit: &Circuit, root: NodeId) {
        let t = tseytin(circuit, root);
        let n_in = t.num_inputs();
        let n_all = t.cnf.num_vars();
        assert!(n_all <= 22, "test circuit too large");
        for mask in 0u64..(1 << n_in) {
            let mut input_set = Bitset::new(n_all);
            for i in 0..n_in {
                if mask >> i & 1 == 1 {
                    input_set.insert(i);
                }
            }
            let accepts = circuit.eval(root, &|v| {
                t.input_index(v).is_some_and(|i| mask >> i & 1 == 1)
            });
            let mut extensions = 0;
            for aux_mask in 0u64..(1 << (n_all - n_in)) {
                let mut full = input_set.clone();
                for a in 0..(n_all - n_in) {
                    if aux_mask >> a & 1 == 1 {
                        full.insert(n_in + a);
                    }
                }
                if t.cnf.eval_set(&full) {
                    extensions += 1;
                }
            }
            assert_eq!(extensions, u64::from(accepts), "mask {mask:b}");
        }
    }

    #[test]
    fn simple_and_or() {
        let mut c = Circuit::new();
        let x = c.var(VarId(0));
        let y = c.var(VarId(1));
        let z = c.var(VarId(2));
        let a = c.and([x, y]);
        let root = c.or([a, z]);
        check_extension_property(&c, root);
    }

    #[test]
    fn with_negation() {
        let mut c = Circuit::new();
        let x = c.var(VarId(0));
        let y = c.var(VarId(1));
        let nx = c.not(x);
        let a = c.and([nx, y]);
        let root = c.or([a, x]);
        check_extension_property(&c, root);
    }

    #[test]
    fn constant_roots() {
        let mut c = Circuit::new();
        let t_root = c.constant(true);
        let tt = tseytin(&c, t_root);
        assert!(tt.cnf.is_empty()); // valid CNF
        let f_root = c.constant(false);
        let tf = tseytin(&c, f_root);
        assert_eq!(tf.cnf.len(), 1);
        assert!(tf.cnf.clauses()[0].is_empty()); // unsat CNF
    }

    #[test]
    fn example_5_3_clause_count() {
        // ELin(q2) = (a2∧a4) ∨ (a2∧a5) ∨ (a3∧a4) ∨ (a3∧a5) ∨ (a6∧a7):
        // the paper's Tseytin CNF has 6 aux vars and 22 clauses.
        let mut d = Dnf::new();
        for pair in [[2u32, 4], [2, 5], [3, 4], [3, 5], [6, 7]] {
            d.add_conjunct(pair.iter().map(|&v| VarId(v)).collect());
        }
        let mut c = Circuit::new();
        let root = d.to_circuit(&mut c);
        let t = tseytin(&c, root);
        assert_eq!(t.num_inputs(), 6);
        assert_eq!(t.cnf.num_vars(), 6 + 6); // a2..a7 plus z1..z6
        assert_eq!(t.cnf.len(), 22);
        // Clause shape census: 16 binary clauses, 5 ternary (AND back-clauses),
        // 1 senary (OR forward clause) — the unit root clause makes 22 total.
        let mut sizes = [0usize; 8];
        for cl in t.cnf.clauses() {
            sizes[cl.len()] += 1;
        }
        assert_eq!(sizes[1], 1);
        assert_eq!(sizes[2], 15);
        assert_eq!(sizes[3], 5);
        assert_eq!(sizes[6], 1);
    }

    #[test]
    fn example_5_4_raw_mode_gets_aux_for_singleton() {
        // ELin(q) = a1 ∨ (a2∧a4) ∨ … — built raw so the singleton disjunct
        // keeps its unary AND gate, which receives aux variable "z7" as in
        // Example 5.4 of the paper.
        let mut c = Circuit::new_raw();
        let disjuncts: Vec<NodeId> = [vec![1u32], vec![2, 4], vec![6, 7]]
            .iter()
            .map(|conj| {
                let lits: Vec<NodeId> = conj.iter().map(|&v| c.var(VarId(v))).collect();
                c.and(lits)
            })
            .collect();
        let root = c.or(disjuncts);
        let t = tseytin(&c, root);
        // 5 inputs + 3 AND aux + 1 OR aux.
        assert_eq!(t.cnf.num_vars(), 5 + 4);
        check_extension_property(&c, root);
        // In simplified mode the singleton AND collapses, so one fewer aux.
        let mut cs = Circuit::new();
        let a1 = cs.var(VarId(1));
        let d2a = cs.var(VarId(2));
        let d2b = cs.var(VarId(4));
        let d3a = cs.var(VarId(6));
        let d3b = cs.var(VarId(7));
        let d2 = cs.and([d2a, d2b]);
        let d3 = cs.and([d3a, d3b]);
        let sroot = cs.or([a1, d2, d3]);
        let ts = tseytin(&cs, sroot);
        assert_eq!(ts.cnf.num_vars(), 5 + 3);
        check_extension_property(&cs, sroot);
    }

    #[test]
    fn model_count_preserved() {
        // Random-ish nested circuit; #models(CNF) == #accepting inputs.
        let mut c = Circuit::new();
        let v: Vec<NodeId> = (0..4).map(|i| c.var(VarId(i))).collect();
        let n0 = c.not(v[0]);
        let a = c.and([n0, v[1]]);
        let b = c.and([v[2], v[3]]);
        let o = c.or([a, b]);
        let root = c.and([o, v[1]]);
        check_extension_property(&c, root);
        let t = tseytin(&c, root);
        let accepting = (0u32..16)
            .filter(|&m| c.eval(root, &|vv| m >> vv.0 & 1 == 1))
            .count() as u64;
        assert_eq!(t.cnf.count_models_bruteforce(), accepting);
    }
}
