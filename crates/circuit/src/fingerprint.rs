//! Canonical fingerprints of monotone DNF lineages, for structural dedup.
//!
//! Multi-answer workloads (TPC-H, IMDB/JOB) produce many output tuples whose
//! lineages are *structurally identical* — equal up to a renaming of the
//! facts. The Shapley value is equivariant under such renamings (it depends
//! only on the game, and relabeling players permutes the values the same
//! way), so a batch executor can compute each distinct structure **once**
//! and translate the values back through the renaming — the interning step
//! of the engine layer's `BatchExecutor`.
//!
//! [`fingerprint()`] canonicalizes a lineage: variables are renamed to dense
//! canonical indices `0..k`, and the conjunct set is sorted into a canonical
//! order. The resulting [`Fingerprint`] carries both the canonical conjunct
//! list (the hashable dedup key) and the canonical-index → original-fact
//! mapping. The canonical variable order comes from one of two routes:
//!
//! * **read-once lineages** (the bulk of real workload lineages — every
//!   hierarchical self-join-free answer, matchings, bipartite grids): the
//!   read-once ∧/∨ tree of a Boolean function is unique up to reordering of
//!   children, so AHU-style canonical sorting of the factorization tree
//!   yields a *complete* canonical labeling — isomorphic read-once lineages
//!   always share a fingerprint. Subtree isomorphism classes are interned
//!   into a process-global table of dense ids, so a shape repeated across
//!   the answers of a replay workload (or across service requests) is
//!   recognized with one hash lookup instead of rebuilding its encoding;
//! * **everything else**: Weisfeiler–Lehman-style color refinement on the
//!   variable/conjunct incidence structure, ties broken by original id —
//!   best-effort completeness (rare WL-indistinguishable asymmetric pairs
//!   may fingerprint apart, a missed dedup).
//!
//! **Soundness** (what correctness rests on): two lineages with equal keys
//! are both mapped onto the *same* canonical DNF by their respective
//! mappings, hence they are isomorphic to each other, and values computed on
//! the canonical DNF translate exactly through each mapping. This holds no
//! matter how ties are broken in either route.

use crate::circuit::VarId;
use crate::dnf::Dnf;
use crate::readonce::{factor_minimized, ReadOnce};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, OnceLock};

/// The dedup key: the canonical conjunct list over dense canonical variables
/// (each conjunct sorted, conjuncts sorted lexicographically).
pub type FingerprintKey = Vec<Vec<u32>>;

/// A lineage's canonical form plus the renaming back to its own facts.
///
/// Canonicalizing requires minimizing and (attempting to) factor the
/// lineage, so the fingerprint keeps the factoring verdict: when the
/// lineage is read-once, [`Fingerprint::tree`] is its factorization
/// relabeled onto the canonical variables. Downstream solvers (the engine
/// layer's planner and batch executor) consume the tree and the minimized
/// canonical DNF ([`Fingerprint::canonical_dnf`], rebuilt from the key on
/// demand — once per *distinct* structure, not stored per task) instead of
/// minimizing/factoring a second time.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Fingerprint {
    /// Shared so downstream cache keys clone an `Arc`, not the conjunct
    /// list (`Arc<T>` hashes and compares through to `T`).
    key: std::sync::Arc<FingerprintKey>,
    /// `vars[i]` = the original fact renamed to canonical variable `i`.
    vars: Vec<VarId>,
    /// The canonical read-once tree (leaves are canonical variables), when
    /// the lineage factors; `None` means the lineage is **not** read-once
    /// (factoring was attempted during canonicalization).
    tree: Option<ReadOnce>,
}

impl Fingerprint {
    /// The canonical conjunct list (the hashable dedup key).
    pub fn key(&self) -> &FingerprintKey {
        &self.key
    }

    /// The key behind a shared handle — what long-lived cache keys store
    /// (hashes/compares exactly like the plain key).
    pub fn shared_key(&self) -> std::sync::Arc<FingerprintKey> {
        std::sync::Arc::clone(&self.key)
    }

    /// Consumes the fingerprint, returning `(key, mapping)`.
    pub fn into_parts(self) -> (FingerprintKey, Vec<VarId>) {
        let key = std::sync::Arc::try_unwrap(self.key).unwrap_or_else(|a| (*a).clone());
        (key, self.vars)
    }

    /// Number of distinct variables of the (minimized) lineage.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The original fact behind canonical variable `canonical`.
    pub fn var_of(&self, canonical: u32) -> VarId {
        self.vars[canonical as usize]
    }

    /// Canonical-index → original-fact mapping.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// The minimized canonical DNF (over variables `0..num_vars()`),
    /// rebuilt from the key. Call once per distinct structure, not per
    /// task.
    pub fn canonical_dnf(&self) -> Dnf {
        let mut d = Dnf::new();
        for conj in self.key.iter() {
            d.add_conjunct(conj.iter().map(|&v| VarId(v)).collect());
        }
        d
    }

    /// The read-once factorization of the canonical DNF, if the lineage is
    /// read-once. `None` is authoritative: factoring was already attempted,
    /// so callers must not try again.
    pub fn tree(&self) -> Option<&ReadOnce> {
        self.tree.as_ref()
    }

    /// A 64-bit digest of the key (for compact reporting; dedup itself keys
    /// on the full canonical form, never on this hash).
    pub fn hash64(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.key.hash(&mut h);
        h.finish()
    }
}

fn mix(parts: &[u64]) -> u64 {
    let mut h = DefaultHasher::new();
    parts.hash(&mut h);
    h.finish()
}

/// Canonicalizes a monotone DNF lineage (see the module docs).
///
/// The lineage is minimized first, so absorption-equivalent inputs share a
/// fingerprint; constants fingerprint as the empty (`⊥`) or the
/// single-empty-conjunct (`⊤`) key with no variables.
pub fn fingerprint(lineage: &Dnf) -> Fingerprint {
    let mut d = lineage.clone();
    d.minimize();

    if let Some(tree) = factor_minimized(&d) {
        // Complete canonical labeling from the (unique) read-once tree.
        let ordered = canonical_leaf_order(&tree);
        return build(&d, ordered, Some(tree));
    }
    wl_fingerprint(&d)
}

/// The shape of one AHU subtree: the gate marker (`b'A'` / `b'O'`) plus
/// the class ids of its children in canonically sorted order. Two subtrees
/// have equal shapes iff they are isomorphic (given the children's ids are
/// already canonical classes) — interning shapes to dense ids makes the
/// isomorphism class of a subtree a single `u32` comparison.
type Shape = (u8, Vec<u32>);

/// Class ids of the leaf shapes, pre-seeded below `FIRST_GATE_CLASS`.
const TRUE_CLASS: u32 = 0;
const FALSE_CLASS: u32 = 1;
const VAR_CLASS: u32 = 2;
const FIRST_GATE_CLASS: u32 = 3;

/// Upper bound on interned gate shapes across all shards. Past its
/// per-shard slice a shard is cleared (the id counter is **not** reset —
/// see [`Interner::next`]): fingerprints computed after a clear may order
/// isomorphism classes differently than ones computed before it — a
/// one-off round of missed dedup (soundness is per-fingerprint and never
/// affected) in exchange for bounded memory in resident services.
const INTERN_CAP: usize = 1 << 20;

/// Lock shards: fingerprinting fans out across batch/service workers, so
/// the interner must not serialize them on one mutex. Same shape → same
/// shard → same id; distinct shards never hand out the same id (the
/// counter is shared and atomic).
const INTERN_SHARDS: usize = 16;

/// The process-global AHU shape interner. Shared across calls (and worker
/// threads) on purpose: multi-answer replay workloads repeat the same
/// subtrees thousands of times, and a shape seen in *any* earlier
/// fingerprint call is recognized with one hash lookup instead of
/// rebuilding and comparing an `O(subtree)` encoding.
struct Interner {
    shards: Vec<Mutex<HashMap<Shape, u32>>>,
    /// The next id to hand out. Monotone across shard clears on purpose: a
    /// thread mid-recursion may still hold pre-clear ids in its
    /// sorted-children scratch, and never reusing an id guarantees a
    /// post-clear shape can never collide with one of those (two distinct
    /// classes comparing equal would scramble that call's sibling order).
    next: std::sync::atomic::AtomicU32,
}

fn interner() -> &'static Interner {
    static INTERN: OnceLock<Interner> = OnceLock::new();
    INTERN.get_or_init(|| Interner {
        shards: (0..INTERN_SHARDS)
            .map(|_| Mutex::new(HashMap::new()))
            .collect(),
        next: std::sync::atomic::AtomicU32::new(FIRST_GATE_CLASS),
    })
}

/// Interns one gate shape, assigning the next id on first sight.
fn intern_shape(shape: Shape) -> u32 {
    let global = interner();
    let mut h = DefaultHasher::new();
    shape.hash(&mut h);
    let shard = &global.shards[h.finish() as usize % INTERN_SHARDS];
    let mut ids = shard.lock().expect("intern shard lock");
    if ids.len() > INTERN_CAP / INTERN_SHARDS {
        // Monotone ids make a clear safe at any point (no id reuse); see
        // `Interner::next`.
        ids.clear();
    }
    *ids.entry(shape).or_insert_with(|| {
        global
            .next
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    })
}

/// Total interned shapes (tests).
#[cfg(test)]
fn interned_shapes() -> usize {
    interner()
        .shards
        .iter()
        .map(|s| s.lock().expect("intern shard lock").len())
        .sum()
}

/// Leaves of the read-once tree in AHU-canonical traversal order: children
/// are sorted by the interned class id of their shape (variable names
/// ignored), so isomorphic trees traverse isomorphic leaves in the same
/// positions. Equal-class siblings keep their original order — they are
/// isomorphic subtrees, so either order yields the same canonical conjunct
/// set. Any fixed total order on isomorphism classes works here; interned
/// ids provide one that is consistent across every call of the process
/// (all callers share one table), replacing the old per-call `O(subtree²)`
/// byte-string encodings.
fn canonical_leaf_order(tree: &ReadOnce) -> Vec<VarId> {
    fn class(t: &ReadOnce, leaves: &mut Vec<VarId>) -> u32 {
        match t {
            ReadOnce::True => TRUE_CLASS,
            ReadOnce::False => FALSE_CLASS,
            ReadOnce::Var(v) => {
                leaves.push(*v);
                VAR_CLASS
            }
            ReadOnce::And(cs) | ReadOnce::Or(cs) => {
                let marker = if matches!(t, ReadOnce::And(_)) {
                    b'A'
                } else {
                    b'O'
                };
                let mut kids: Vec<(u32, Vec<VarId>)> = cs
                    .iter()
                    .map(|c| {
                        let mut sub = Vec::new();
                        let id = class(c, &mut sub);
                        (id, sub)
                    })
                    .collect();
                kids.sort_by_key(|k| k.0); // stable: ties keep original order
                for (_, k_leaves) in &kids {
                    leaves.extend(k_leaves.iter().copied());
                }
                intern_shape((marker, kids.into_iter().map(|k| k.0).collect()))
            }
        }
    }
    let mut leaves = Vec::new();
    class(tree, &mut leaves);
    leaves
}

/// Builds the fingerprint of a minimized DNF from a canonical variable
/// order (`ordered[i]` = the original fact renamed to canonical index `i`)
/// and the read-once tree over the *original* variables, when one exists.
fn build(d: &Dnf, ordered: Vec<VarId>, tree: Option<ReadOnce>) -> Fingerprint {
    let canonical_of: std::collections::HashMap<VarId, u32> = ordered
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let mut key: FingerprintKey = d
        .conjuncts()
        .iter()
        .map(|c| {
            let mut mapped: Vec<u32> = c.iter().map(|v| canonical_of[v]).collect();
            mapped.sort_unstable();
            mapped
        })
        .collect();
    key.sort_unstable();
    let tree = tree.map(|t| relabel(&t, &canonical_of));
    Fingerprint {
        key: std::sync::Arc::new(key),
        vars: ordered,
        tree,
    }
}

/// Relabels a read-once tree's leaves onto the canonical variables.
fn relabel(tree: &ReadOnce, canonical_of: &std::collections::HashMap<VarId, u32>) -> ReadOnce {
    match tree {
        ReadOnce::True => ReadOnce::True,
        ReadOnce::False => ReadOnce::False,
        ReadOnce::Var(v) => ReadOnce::Var(VarId(canonical_of[v])),
        ReadOnce::And(cs) => ReadOnce::And(cs.iter().map(|c| relabel(c, canonical_of)).collect()),
        ReadOnce::Or(cs) => ReadOnce::Or(cs.iter().map(|c| relabel(c, canonical_of)).collect()),
    }
}

/// The refinement fallback for non-read-once lineages.
fn wl_fingerprint(d: &Dnf) -> Fingerprint {
    let orig_vars = d.vars();
    let n = orig_vars.len();
    let rank = |v: VarId| orig_vars.binary_search(&v).expect("ranked var");
    // Dense conjuncts + per-variable occurrence lists.
    let conjs: Vec<Vec<usize>> = d
        .conjuncts()
        .iter()
        .map(|c| c.iter().map(|&v| rank(v)).collect())
        .collect();
    let mut occ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ci, c) in conjs.iter().enumerate() {
        for &v in c {
            occ[v].push(ci);
        }
    }

    // Initial color: the multiset of sizes of the conjuncts a variable
    // appears in (which already encodes its occurrence count).
    let mut color: Vec<u64> = (0..n)
        .map(|v| {
            let mut sizes: Vec<u64> = occ[v].iter().map(|&ci| conjs[ci].len() as u64).collect();
            sizes.sort_unstable();
            mix(&sizes)
        })
        .collect();

    // Refinement: a variable's color absorbs the color-multisets of the
    // conjuncts it appears in. Stop when the partition stops splitting.
    let mut classes = distinct_count(&color);
    loop {
        let conj_sig: Vec<u64> = conjs
            .iter()
            .map(|c| {
                let mut member_colors: Vec<u64> = c.iter().map(|&v| color[v]).collect();
                member_colors.sort_unstable();
                mix(&member_colors)
            })
            .collect();
        let next: Vec<u64> = (0..n)
            .map(|v| {
                let mut sigs: Vec<u64> = occ[v].iter().map(|&ci| conj_sig[ci]).collect();
                sigs.sort_unstable();
                sigs.push(color[v]);
                mix(&sigs)
            })
            .collect();
        let next_classes = distinct_count(&next);
        color = next;
        if next_classes <= classes || next_classes == n {
            classes = next_classes;
            break;
        }
        classes = next_classes;
    }
    let _ = classes;

    // Canonical order: by final color, ties by original id (deterministic;
    // fully symmetric variables produce the same key either way).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| (color[v], v));
    build(d, order.iter().map(|&v| orig_vars[v]).collect(), None)
}

fn distinct_count(colors: &[u64]) -> usize {
    let mut sorted = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::readonce::factor;
    use proptest::prelude::*;
    use shapdb_num::Bitset;

    fn dnf(conjs: &[&[u32]]) -> Dnf {
        let mut d = Dnf::new();
        for c in conjs {
            d.add_conjunct(c.iter().map(|&v| VarId(v)).collect());
        }
        d
    }

    /// The original lineage, evaluated through the fingerprint's mapping,
    /// must equal the canonical DNF on every assignment of canonical vars.
    fn mapping_is_isomorphism(original: &Dnf, fp: &Fingerprint) {
        let k = fp.num_vars();
        assert!(k <= 16, "test helper limited to 16 vars");
        let canonical = fp.canonical_dnf();
        let max_orig = original.vars().last().map_or(1, |v| v.index() + 1);
        for mask in 0u64..(1 << k) {
            let mut canon_set = Bitset::new(k.max(1));
            let mut orig_set = Bitset::new(max_orig);
            for i in 0..k {
                if mask >> i & 1 == 1 {
                    canon_set.insert(i);
                    orig_set.insert(fp.var_of(i as u32).index());
                }
            }
            assert_eq!(
                canonical.eval_set(&canon_set),
                original.eval_set(&orig_set),
                "mask {mask:b}"
            );
        }
    }

    #[test]
    fn renamed_running_example_shares_fingerprint() {
        let a = dnf(&[&[0], &[1, 3], &[1, 4], &[2, 3], &[2, 4], &[5, 6]]);
        // Same structure under the renaming 0..6 → 10,20,..,70 (shuffled).
        let b = dnf(&[&[70], &[40, 20], &[40, 60], &[10, 20], &[10, 60], &[30, 50]]);
        let fa = fingerprint(&a);
        let fb = fingerprint(&b);
        assert_eq!(fa.key(), fb.key());
        mapping_is_isomorphism(&a, &fa);
        mapping_is_isomorphism(&b, &fb);
    }

    #[test]
    fn different_structures_differ() {
        let majority = dnf(&[&[0, 1], &[1, 2], &[0, 2]]);
        let path = dnf(&[&[0, 1], &[1, 2]]);
        let chain = dnf(&[&[0, 1], &[2, 3]]);
        assert_ne!(fingerprint(&majority).key(), fingerprint(&path).key());
        assert_ne!(fingerprint(&path).key(), fingerprint(&chain).key());
    }

    #[test]
    fn absorption_equivalent_lineages_share_fingerprint() {
        let a = dnf(&[&[0], &[0, 1], &[2, 3]]);
        let b = dnf(&[&[5], &[8, 9]]);
        assert_eq!(fingerprint(&a).key(), fingerprint(&b).key());
    }

    #[test]
    fn constants() {
        let bot = Dnf::new();
        let mut top = Dnf::new();
        top.add_conjunct(vec![]);
        assert_eq!(fingerprint(&bot).key(), &Vec::<Vec<u32>>::new());
        assert_eq!(fingerprint(&top).key(), &vec![Vec::<u32>::new()]);
        assert_eq!(fingerprint(&bot).num_vars(), 0);
        assert_eq!(fingerprint(&top).num_vars(), 0);
        assert_ne!(fingerprint(&bot).key(), fingerprint(&top).key());
    }

    #[test]
    fn asymmetric_variables_map_consistently() {
        // x0 ∨ (x1 ∧ x2): the singleton variable must map to the same
        // canonical index in both copies so values transfer correctly.
        let a = dnf(&[&[7], &[3, 5]]);
        let b = dnf(&[&[100], &[900, 901]]);
        let fa = fingerprint(&a);
        let fb = fingerprint(&b);
        assert_eq!(fa.key(), fb.key());
        // The canonical index holding the singleton var:
        let singleton_a = fa.vars().iter().position(|&v| v == VarId(7)).unwrap();
        let singleton_b = fb.vars().iter().position(|&v| v == VarId(100)).unwrap();
        assert_eq!(singleton_a, singleton_b);
        mapping_is_isomorphism(&a, &fa);
        mapping_is_isomorphism(&b, &fb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_renaming_preserves_fingerprint(
            conjuncts in proptest::collection::vec(
                proptest::collection::vec(0u32..8, 1..4), 1..6),
            seed in any::<u64>(),
        ) {
            let mut a = Dnf::new();
            for c in &conjuncts {
                a.add_conjunct(c.iter().map(|&v| VarId(v)).collect());
            }
            // A deterministic pseudo-random permutation of the ids.
            let mut perm: Vec<u32> = (0..8).collect();
            let mut state = seed | 1;
            for i in (1..perm.len()).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                perm.swap(i, j);
            }
            let mut b = Dnf::new();
            for c in &conjuncts {
                b.add_conjunct(c.iter().map(|&v| VarId(perm[v as usize])).collect());
            }
            let fa = fingerprint(&a);
            let fb = fingerprint(&b);
            // Soundness holds unconditionally; key equality under renaming is
            // guaranteed for read-once lineages (the tree route is complete).
            mapping_is_isomorphism(&a, &fa);
            mapping_is_isomorphism(&b, &fb);
            if factor(&a).is_some() {
                prop_assert_eq!(fa.key(), fb.key());
            }
        }
    }

    #[test]
    fn carried_tree_and_canonical_dnf_agree() {
        // Read-once lineage: the fingerprint carries the factorization,
        // relabeled onto the canonical variables — the tree and the
        // canonical DNF must be the same Boolean function.
        let a = dnf(&[&[70], &[40, 20], &[40, 60], &[10, 20], &[10, 60], &[30, 50]]);
        let fp = fingerprint(&a);
        let tree = fp.tree().expect("read-once lineage carries its tree");
        assert!(tree.is_well_formed());
        let canonical = fp.canonical_dnf();
        let k = fp.num_vars();
        for mask in 0u64..(1 << k) {
            let mut set = Bitset::new(k);
            for i in 0..k {
                if mask >> i & 1 == 1 {
                    set.insert(i);
                }
            }
            assert_eq!(
                tree.eval_set(&set),
                canonical.eval_set(&set),
                "mask {mask:b}"
            );
        }
        // Non-read-once lineages carry no tree — and that `None` is
        // authoritative (majority really does not factor).
        let majority = dnf(&[&[0, 1], &[1, 2], &[0, 2]]);
        assert!(fingerprint(&majority).tree().is_none());
    }

    #[test]
    fn interned_shapes_are_reused_across_calls() {
        // Two isomorphic copies of a two-level structure: the second call
        // must re-use the first call's interned gate shapes instead of
        // growing the table — "repeated subtrees canonicalize once".
        let a = dnf(&[&[0], &[1, 3], &[1, 4], &[2, 3], &[2, 4], &[5, 6]]);
        let b = dnf(&[&[70], &[40, 20], &[40, 60], &[10, 20], &[10, 60], &[30, 50]]);
        let _ = fingerprint(&a); // populate
        let before = interned_shapes();
        let fb = fingerprint(&b);
        let after = interned_shapes();
        assert_eq!(before, after, "no new shapes for an isomorphic lineage");
        assert_eq!(fingerprint(&a).key(), fb.key());
    }

    #[test]
    fn interned_ordering_is_consistent_across_threads() {
        // Isomorphic trees fingerprinted concurrently must agree on the
        // canonical key no matter which thread interns a shape first: the
        // shared table makes every racer see the same ids.
        let copies: Vec<Dnf> = (0..8u32)
            .map(|i| {
                let base = i * 100;
                dnf(&[
                    &[base],
                    &[base + 1, base + 3],
                    &[base + 1, base + 4],
                    &[base + 2, base + 3],
                    &[base + 2, base + 4],
                    &[base + 5, base + 6],
                ])
            })
            .collect();
        let keys: Vec<FingerprintKey> = std::thread::scope(|s| {
            let handles: Vec<_> = copies
                .iter()
                .map(|d| s.spawn(move || fingerprint(d).key().clone()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for k in &keys[1..] {
            assert_eq!(k, &keys[0]);
        }
        for (d, fp) in copies.iter().map(|d| (d, fingerprint(d))) {
            mapping_is_isomorphism(d, &fp);
        }
    }

    #[test]
    fn matching_with_crossed_pairing_dedups() {
        // (r0∧s0)∨(r1∧s1) vs a copy whose pairing crosses the id order —
        // the case a naive id-tie-break canonicalization misses.
        let a = dnf(&[&[0, 10], &[1, 11]]);
        let b = dnf(&[&[0, 21], &[1, 20]]);
        let fa = fingerprint(&a);
        let fb = fingerprint(&b);
        assert_eq!(fa.key(), fb.key());
        mapping_is_isomorphism(&a, &fa);
        mapping_is_isomorphism(&b, &fb);
    }

    #[test]
    fn non_read_once_symmetric_renaming_dedups() {
        // Majority is not read-once; its full symmetry makes the WL route
        // complete here.
        let a = dnf(&[&[0, 1], &[1, 2], &[0, 2]]);
        let b = dnf(&[&[7, 5], &[5, 9], &[9, 7]]);
        let fa = fingerprint(&a);
        let fb = fingerprint(&b);
        assert_eq!(fa.key(), fb.key());
        mapping_is_isomorphism(&a, &fa);
        mapping_is_isomorphism(&b, &fb);
    }
}
