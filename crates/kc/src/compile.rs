//! The CNF → d-DNNF compiler.
//!
//! An exhaustive DPLL search that *records* its trace as a d-DNNF (the
//! classic c2d/Dsharp recipe the paper's pipeline invokes externally):
//!
//! * **unit propagation** forces literals, which become children of a
//!   decomposable ∧;
//! * **connected components** of the residual clause set share no variables
//!   and are compiled independently — their conjunction is decomposable;
//! * **branching** on a variable yields a *decision* ∨ node
//!   `(v ∧ C|v) ∨ (¬v ∧ C|¬v)`, deterministic by construction;
//! * **component caching** keyed by the residual clause ids plus the
//!   component's variables (a canonical encoding — a residual clause is its
//!   original literals restricted to the component's unassigned variables),
//!   pre-hashed so lookups never re-hash the whole key, makes equal
//!   sub-formulas compile once.
//!
//! There is no theoretical guarantee of efficiency — compiling CNF to d-DNNF
//! is `FP^{#P}`-hard in general, as the paper notes — so compilation takes a
//! [`Budget`] (deadline and node cap) and fails gracefully; the hybrid engine
//! (§6.3) turns that failure into a CNF-Proxy fallback.

use crate::ddnnf::{Ddnnf, DdnnfBuilder, NodeIdx};
use crate::project::project;
use crate::scratch::EpochScratch;
use shapdb_circuit::{tseytin, Circuit, Cnf, Lit, NodeId, TseytinCnf, VarId};
use std::collections::HashMap;
use std::time::Instant;

/// Resource limits for compilation.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Hard wall-clock deadline (checked cooperatively).
    pub deadline: Option<Instant>,
    /// Maximum number of d-DNNF nodes to allocate.
    pub max_nodes: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            deadline: None,
            max_nodes: usize::MAX,
        }
    }
}

impl Budget {
    /// No limits.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A deadline `timeout` from now.
    pub fn with_timeout(timeout: std::time::Duration) -> Budget {
        Budget {
            deadline: Some(Instant::now() + timeout),
            max_nodes: usize::MAX,
        }
    }

    /// A node cap.
    pub fn with_max_nodes(max_nodes: usize) -> Budget {
        Budget {
            deadline: None,
            max_nodes,
        }
    }
}

/// Why compilation was aborted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// The [`Budget::deadline`] passed.
    Timeout,
    /// More than [`Budget::max_nodes`] nodes were needed.
    NodeLimit,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Timeout => write!(f, "knowledge compilation timed out"),
            CompileError::NodeLimit => write!(f, "knowledge compilation hit the node limit"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Counters describing a compilation run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompileStats {
    /// d-DNNF nodes in the result arena.
    pub nodes: usize,
    /// Component-cache hits (compilation-local, clause-id-keyed).
    pub cache_hits: u64,
    /// Branching decisions taken.
    pub decisions: u64,
    /// Literals forced by unit propagation.
    pub propagations: u64,
    /// Canonical component-cache hits (top-down compiler only): components
    /// answered from a stored fragment — possibly one compiled under a
    /// *different* lineage when the cache is shared across a batch.
    pub shared_hits: u64,
}

/// Variable-selection strategy for decision branching.
///
/// The default (`MaxOccurrence`) picks the variable with the most
/// occurrences in the residual component — cheap and effective on Tseytin
/// CNFs, whose auxiliary variables dominate occurrence counts and propagate
/// eagerly. `Vsads` additionally weighs clause sizes — the VSADS recipe of
/// the model-counting literature (sharpSAT, D4), minus the conflict-clause
/// activity term our trace compiler has no source for; it wins on dense
/// grid-style formulas (the `kc` bench's Figure 4 grids compile ~1.6×
/// faster than under the pre-occurrence-index compiler, and a few percent
/// faster than `MaxOccurrence`) but loses a little on the TPC-H/IMDB
/// replay, so it stays opt-in. `JeroslowWang` weights occurrences by
/// `2^{-|clause|}`; `MinIndex` (lowest variable id) is the naive baseline
/// the ablation bench measures the others against.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BranchHeuristic {
    /// Occurrence count plus a short-clause bonus: the score is
    /// `Σ_clauses (1 + 8·2^{-|clause|})`, a VSADS-style blend of the
    /// dynamic occurrence count and the Jeroslow–Wang size weight.
    Vsads,
    /// Most occurrences in the component (the default).
    #[default]
    MaxOccurrence,
    /// Jeroslow–Wang: `Σ 2^{-|clause|}` over the variable's occurrences.
    JeroslowWang,
    /// Smallest variable index (ablation baseline).
    MinIndex,
}

const UNASSIGNED: i8 = -1;

/// What one clause looks like under the current assignment.
enum ClauseState {
    Satisfied,
    Conflict,
    Unit(Lit),
    Open,
}

/// One component-cache bucket: every (canonical key, node) pair whose key
/// hashes to the bucket's precomputed hash.
type CacheBucket = Vec<(Box<[u32]>, NodeIdx)>;

struct Compiler<'a> {
    clauses: Vec<Vec<Lit>>,
    assign: Vec<i8>,
    builder: DdnnfBuilder,
    /// Component cache, keyed by a cheap precomputed hash of the canonical
    /// component encoding; hits verify the full key against the bucket
    /// (hash collisions must never conflate two functions).
    cache: HashMap<u64, CacheBucket>,
    stats: CompileStats,
    budget: &'a Budget,
    heuristic: BranchHeuristic,
    ticks: u32,
    /// Variable → ids of the clauses containing it (over the whole CNF);
    /// unit propagation re-examines only these instead of rescanning the
    /// entire scoped clause set per fixpoint pass.
    occurs: Vec<Vec<u32>>,
    /// Epoch-stamped per-variable/per-clause phase state (shared idiom with
    /// the top-down compiler — see [`EpochScratch`]).
    scratch: EpochScratch,
}

impl<'a> Compiler<'a> {
    fn new(cnf: &Cnf, budget: &'a Budget, heuristic: BranchHeuristic) -> Compiler<'a> {
        let clauses: Vec<Vec<Lit>> = cnf.clauses().iter().map(|c| c.lits().to_vec()).collect();
        let n_vars = cnf.num_vars();
        let mut occurs: Vec<Vec<u32>> = vec![Vec::new(); n_vars];
        for (cid, lits) in clauses.iter().enumerate() {
            for l in lits {
                occurs[l.var()].push(cid as u32);
            }
        }
        Compiler {
            assign: vec![UNASSIGNED; n_vars],
            builder: DdnnfBuilder::new(),
            cache: HashMap::new(),
            stats: CompileStats::default(),
            budget,
            heuristic,
            ticks: 0,
            occurs,
            scratch: EpochScratch::new(clauses.len(), n_vars),
            clauses,
        }
    }

    fn check_budget(&mut self) -> Result<(), CompileError> {
        if self.builder.len() > self.budget.max_nodes {
            return Err(CompileError::NodeLimit);
        }
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks.is_multiple_of(256) {
            if let Some(d) = self.budget.deadline {
                if Instant::now() > d {
                    return Err(CompileError::Timeout);
                }
            }
        }
        Ok(())
    }

    fn lit_value(&self, l: Lit) -> i8 {
        match self.assign[l.var()] {
            UNASSIGNED => UNASSIGNED,
            v => i8::from(l.satisfied_by(v == 1)),
        }
    }

    fn examine(&self, cid: u32) -> ClauseState {
        let mut unassigned: Option<Lit> = None;
        let mut n_unassigned = 0;
        for &l in &self.clauses[cid as usize] {
            match self.lit_value(l) {
                1 => return ClauseState::Satisfied,
                0 => {}
                _ => {
                    n_unassigned += 1;
                    unassigned = Some(l);
                }
            }
        }
        match n_unassigned {
            0 => ClauseState::Conflict,
            1 => ClauseState::Unit(unassigned.unwrap()),
            _ => ClauseState::Open,
        }
    }

    /// Unit propagation over the scoped clause set, driven by the
    /// variable→clause occurrence index: after one seeding scan, only
    /// clauses containing a freshly assigned variable are re-examined
    /// (instead of re-scanning the whole scope until fixpoint). Assignments
    /// are pushed onto `trail` (which doubles as the propagation queue);
    /// returns `true` on conflict, leaving the trail for the caller to
    /// unwind.
    fn propagate(
        &mut self,
        clause_ids: &[u32],
        trail: &mut Vec<usize>,
    ) -> Result<bool, CompileError> {
        let epoch = self.scratch.begin_phase();
        for &cid in clause_ids {
            self.scratch.clause_stamp[cid as usize] = epoch;
        }
        let assign_unit = |me: &mut Self, l: Lit, trail: &mut Vec<usize>| {
            me.assign[l.var()] = i8::from(l.is_positive());
            trail.push(l.var());
            me.stats.propagations += 1;
        };
        // Seed: one scan of the scope for already-unit clauses.
        for &cid in clause_ids {
            self.check_budget()?;
            match self.examine(cid) {
                ClauseState::Conflict => return Ok(true),
                ClauseState::Unit(l) => assign_unit(self, l, trail),
                _ => {}
            }
        }
        // Drain: each new assignment re-examines only its own clauses.
        let mut queue = 0;
        while queue < trail.len() {
            let v = trail[queue];
            queue += 1;
            self.check_budget()?;
            for idx in 0..self.occurs[v].len() {
                let cid = self.occurs[v][idx];
                if self.scratch.clause_stamp[cid as usize] != epoch {
                    continue; // not in the current scope
                }
                match self.examine(cid) {
                    ClauseState::Conflict => return Ok(true),
                    ClauseState::Unit(l) => assign_unit(self, l, trail),
                    _ => {}
                }
            }
        }
        Ok(false)
    }

    /// Compiles the conjunction of `clause_ids` under the current assignment.
    fn compile_clauses(&mut self, clause_ids: &[u32]) -> Result<NodeIdx, CompileError> {
        self.check_budget()?;

        // --- Unit propagation (with a local trail for undo). ---
        let mut trail: Vec<usize> = Vec::new();
        let conflict = match self.propagate(clause_ids, &mut trail) {
            Ok(c) => c,
            Err(e) => {
                for v in trail {
                    self.assign[v] = UNASSIGNED;
                }
                return Err(e);
            }
        };
        if conflict {
            for v in trail {
                self.assign[v] = UNASSIGNED;
            }
            return Ok(self.builder.false_node());
        }

        // --- Residual (active) clauses with their unassigned literals. ---
        let mut active: Vec<(u32, Vec<Lit>)> = Vec::new();
        'outer: for &cid in clause_ids {
            let mut rest = Vec::new();
            for &l in &self.clauses[cid as usize] {
                match self.lit_value(l) {
                    1 => continue 'outer,
                    0 => {}
                    _ => rest.push(l),
                }
            }
            debug_assert!(rest.len() >= 2, "units handled by propagation");
            active.push((cid, rest));
        }

        // The forced literals are part of the result function.
        let unit_nodes: Vec<NodeIdx> = trail
            .iter()
            .map(|&v| {
                let lit = if self.assign[v] == 1 {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                };
                self.builder.lit(lit)
            })
            .collect();

        let result = if active.is_empty() {
            self.builder.and(unit_nodes)
        } else {
            // --- Connected components over shared variables. ---
            let comps = self.split_components(&active);
            let mut parts = unit_nodes;
            let mut failed = None;
            for comp in comps {
                match self.compile_component(&comp) {
                    Ok(n) => parts.push(n),
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = failed {
                for v in trail {
                    self.assign[v] = UNASSIGNED;
                }
                return Err(e);
            }
            self.builder.and(parts)
        };

        for v in trail {
            self.assign[v] = UNASSIGNED;
        }
        Ok(result)
    }

    /// Selects the decision variable of a component per the configured
    /// heuristic, scoring into epoch-stamped per-variable arrays (no
    /// per-call maps). Ties break toward the smaller variable id so
    /// compilations are deterministic.
    fn pick_branch_var(&mut self, comp: &[(u32, Vec<Lit>)]) -> usize {
        if self.heuristic == BranchHeuristic::MinIndex {
            return comp
                .iter()
                .flat_map(|(_, lits)| lits.iter().map(|l| l.var()))
                .min()
                .expect("non-empty component");
        }
        let epoch = self.scratch.begin_phase();
        self.scratch.vars_scratch.clear();
        for (_, lits) in comp {
            let w = match self.heuristic {
                BranchHeuristic::MaxOccurrence => 1.0,
                BranchHeuristic::JeroslowWang => (-(lits.len() as f64)).exp2(),
                // VSADS blend: every occurrence counts 1, short clauses add
                // a bonus of up to 8·2^{-|clause|} (so a binary-clause
                // occurrence outweighs two long-clause ones).
                BranchHeuristic::Vsads => 1.0 + 8.0 * (-(lits.len() as f64)).exp2(),
                BranchHeuristic::MinIndex => unreachable!(),
            };
            for l in lits {
                let v = l.var();
                if self.scratch.var_stamp[v] != epoch {
                    self.scratch.var_stamp[v] = epoch;
                    self.scratch.var_score[v] = 0.0;
                    self.scratch.vars_scratch.push(v as u32);
                }
                self.scratch.var_score[v] += w;
            }
        }
        let mut best = self.scratch.vars_scratch[0] as usize;
        for &v in &self.scratch.vars_scratch[1..] {
            let v = v as usize;
            match self.scratch.var_score[v].total_cmp(&self.scratch.var_score[best]) {
                std::cmp::Ordering::Greater => best = v,
                std::cmp::Ordering::Equal if v < best => best = v,
                _ => {}
            }
        }
        best
    }

    /// Canonical component-cache key: the (ascending) residual clause ids,
    /// a separator, then the component's sorted variables. Sound because a
    /// residual clause is exactly its original literals restricted to the
    /// component's (unassigned) variables — two states agreeing on both
    /// lists denote the same Boolean function. Much cheaper to build than
    /// the old literal-level encoding (no per-clause literal sort), and
    /// hashed once with FNV-1a so probes never re-hash the whole key.
    fn component_key(&mut self, comp: &[(u32, Vec<Lit>)]) -> (u64, Box<[u32]>) {
        let mut key: Vec<u32> = Vec::with_capacity(comp.len() * 3);
        for (cid, _) in comp {
            key.push(*cid);
        }
        key.push(u32::MAX); // separator (no clause id is MAX)
        let epoch = self.scratch.begin_phase();
        let vstart = key.len();
        for (_, lits) in comp {
            for l in lits {
                let v = l.var();
                if self.scratch.var_stamp[v] != epoch {
                    self.scratch.var_stamp[v] = epoch;
                    key.push(v as u32);
                }
            }
        }
        key[vstart..].sort_unstable();
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for &x in &key {
            h = (h ^ x as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h, key.into_boxed_slice())
    }

    /// Compiles one connected component (given as residual clauses), with
    /// caching and branching.
    fn compile_component(&mut self, comp: &[(u32, Vec<Lit>)]) -> Result<NodeIdx, CompileError> {
        let (hash, key) = self.component_key(comp);
        if let Some(bucket) = self.cache.get(&hash) {
            // Collision verification: a matching hash only counts when the
            // full canonical key matches.
            if let Some(&(_, hit)) = bucket.iter().find(|(k, _)| **k == *key) {
                self.stats.cache_hits += 1;
                return Ok(hit);
            }
        }

        let branch_var = self.pick_branch_var(comp);
        self.stats.decisions += 1;

        let clause_ids: Vec<u32> = comp.iter().map(|(cid, _)| *cid).collect();

        self.assign[branch_var] = 1;
        let hi_sub = self.compile_clauses(&clause_ids);
        self.assign[branch_var] = UNASSIGNED;
        let hi_sub = hi_sub?;

        self.assign[branch_var] = 0;
        let lo_sub = self.compile_clauses(&clause_ids);
        self.assign[branch_var] = UNASSIGNED;
        let lo_sub = lo_sub?;

        let pos = self.builder.lit(Lit::pos(branch_var));
        let neg = self.builder.lit(Lit::neg(branch_var));
        let hi = self.builder.and([pos, hi_sub]);
        let lo = self.builder.and([neg, lo_sub]);
        let node = self.builder.decision(branch_var, hi, lo);
        self.cache.entry(hash).or_default().push((key, node));
        Ok(node)
    }

    /// Splits residual clauses into variable-connected components (see
    /// [`EpochScratch::split_components`]).
    fn split_components(&mut self, active: &[(u32, Vec<Lit>)]) -> Vec<Vec<(u32, Vec<Lit>)>> {
        self.scratch.split_components(active)
    }
}

/// Compiles a CNF into a d-DNNF over the same variable space.
pub fn compile(cnf: &Cnf, budget: &Budget) -> Result<(Ddnnf, CompileStats), CompileError> {
    compile_with(cnf, budget, BranchHeuristic::default())
}

/// [`compile`] with an explicit branching heuristic (ablation entry point).
pub fn compile_with(
    cnf: &Cnf,
    budget: &Budget,
    heuristic: BranchHeuristic,
) -> Result<(Ddnnf, CompileStats), CompileError> {
    let mut c = Compiler::new(cnf, budget, heuristic);
    // An empty clause makes the whole formula unsatisfiable.
    let root = if cnf.clauses().iter().any(|cl| cl.is_empty()) {
        c.builder.false_node()
    } else {
        let ids: Vec<u32> = (0..cnf.len() as u32).collect();
        c.compile_clauses(&ids)?
    };
    let mut stats = c.stats;
    stats.nodes = c.builder.len();
    Ok((c.builder.finish(root, cnf.num_vars()), stats))
}

/// Result of compiling a lineage circuit end-to-end (Figure 3 middle path).
#[derive(Debug)]
pub struct CircuitCompilation {
    /// d-DNNF over the circuit's input variables (auxiliaries eliminated).
    pub ddnnf: Ddnnf,
    /// `fact_vars[i]` is the circuit variable of d-DNNF variable `i`.
    pub fact_vars: Vec<VarId>,
    /// The intermediate Tseytin CNF (consumed by CNF Proxy as well).
    pub tseytin: TseytinCnf,
    /// d-DNNF size before auxiliary-variable elimination.
    pub unprojected_size: usize,
    /// Compiler counters.
    pub stats: CompileStats,
}

/// Circuit → Tseytin CNF → d-DNNF → project (Lemma 4.6).
pub fn compile_circuit(
    circuit: &Circuit,
    root: NodeId,
    budget: &Budget,
) -> Result<CircuitCompilation, CompileError> {
    let t = tseytin(circuit, root);
    let (full, stats) = compile(&t.cnf, budget)?;
    let unprojected_size = full.len();
    let ddnnf = project(&full, t.num_inputs());
    Ok(CircuitCompilation {
        ddnnf,
        fact_vars: t.input_vars.clone(),
        tseytin: t,
        unprojected_size,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_compiled(cnf: &Cnf) {
        let (d, _) = compile(cnf, &Budget::unlimited()).unwrap();
        d.verify_decomposable().unwrap();
        d.verify_decisions().unwrap();
        d.check_determinism_sampled(50, 11).unwrap();
        assert_eq!(
            d.count_models().to_u64().unwrap(),
            cnf.count_models_bruteforce(),
            "model count mismatch for {cnf}"
        );
    }

    #[test]
    fn empty_cnf_is_valid() {
        let cnf = Cnf::new(3);
        let (d, _) = compile(&cnf, &Budget::unlimited()).unwrap();
        assert_eq!(d.count_models().to_u64(), Some(8));
    }

    #[test]
    fn unsat_cnf() {
        let mut cnf = Cnf::new(2);
        cnf.push_lits(vec![Lit::pos(0)]);
        cnf.push_lits(vec![Lit::neg(0)]);
        let (d, _) = compile(&cnf, &Budget::unlimited()).unwrap();
        assert_eq!(d.count_models().to_u64(), Some(0));
    }

    #[test]
    fn example_5_1_formula() {
        // (x0 ∨ x1) ∧ (x0 ∨ x2 ∨ x3): 11 models.
        let mut cnf = Cnf::new(4);
        cnf.push_lits(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.push_lits(vec![Lit::pos(0), Lit::pos(2), Lit::pos(3)]);
        check_compiled(&cnf);
    }

    #[test]
    fn component_decomposition_produces_decomposable_and() {
        // Two independent sub-formulas: (x0∨x1) ∧ (x2∨x3).
        let mut cnf = Cnf::new(4);
        cnf.push_lits(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.push_lits(vec![Lit::pos(2), Lit::pos(3)]);
        let (d, stats) = compile(&cnf, &Budget::unlimited()).unwrap();
        assert_eq!(d.count_models().to_u64(), Some(9));
        // Splitting means at most 2 decisions (one per component).
        assert!(stats.decisions <= 2, "components not split: {stats:?}");
        check_compiled(&cnf);
    }

    #[test]
    fn unit_propagation_chains() {
        // x0 forced, then x1, then x2: single model over 3 vars.
        let mut cnf = Cnf::new(3);
        cnf.push_lits(vec![Lit::pos(0)]);
        cnf.push_lits(vec![Lit::neg(0), Lit::pos(1)]);
        cnf.push_lits(vec![Lit::neg(1), Lit::pos(2)]);
        let (d, stats) = compile(&cnf, &Budget::unlimited()).unwrap();
        assert_eq!(d.count_models().to_u64(), Some(1));
        assert_eq!(stats.decisions, 0);
        assert_eq!(stats.propagations, 3);
    }

    #[test]
    fn cache_hits_on_repeated_components() {
        // (x0 ∨ x1) ∧ (x0 ∨ x2) ∧ (x3 ∨ x4) — after branching x0 the residual
        // (x3∨x4) component recurs and should be cached.
        let mut cnf = Cnf::new(5);
        cnf.push_lits(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.push_lits(vec![Lit::pos(0), Lit::pos(2)]);
        cnf.push_lits(vec![Lit::pos(3), Lit::pos(4)]);
        let (d, _) = compile(&cnf, &Budget::unlimited()).unwrap();
        assert_eq!(
            d.count_models().to_u64(),
            Some(cnf.count_models_bruteforce())
        );
    }

    #[test]
    fn node_limit_enforced() {
        // A formula with no small representation under our heuristic still
        // compiles; set an absurdly small cap to force the error path.
        let mut cnf = Cnf::new(12);
        for i in 0..6 {
            cnf.push_lits(vec![Lit::pos(2 * i), Lit::pos(2 * i + 1)]);
            cnf.push_lits(vec![Lit::neg(2 * i), Lit::pos((2 * i + 3) % 12)]);
        }
        let err = compile(&cnf, &Budget::with_max_nodes(3)).unwrap_err();
        assert_eq!(err, CompileError::NodeLimit);
    }

    #[test]
    fn deadline_in_past_times_out() {
        let mut cnf = Cnf::new(30);
        // Pairwise chains to make propagation non-trivial.
        for i in 0..29 {
            cnf.push_lits(vec![Lit::pos(i), Lit::pos(i + 1)]);
        }
        let budget = Budget {
            deadline: Some(Instant::now() - std::time::Duration::from_secs(1)),
            max_nodes: usize::MAX,
        };
        // The check fires every 256 budget ticks, so a big enough formula
        // must hit it; retry with a pigeonhole formula if not.
        match compile(&cnf, &budget) {
            Err(CompileError::Timeout) => {}
            Ok(_) => {
                // Compilation may legitimately finish before the first tick
                // window; that is acceptable behaviour for tiny inputs.
            }
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn tautological_clause_handled() {
        let mut cnf = Cnf::new(2);
        cnf.push_lits(vec![Lit::pos(0), Lit::neg(0)]);
        cnf.push_lits(vec![Lit::pos(1)]);
        let (d, _) = compile(&cnf, &Budget::unlimited()).unwrap();
        assert_eq!(
            d.count_models().to_u64(),
            Some(cnf.count_models_bruteforce())
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_model_count_matches_bruteforce(
            clauses in proptest::collection::vec(
                proptest::collection::vec((0usize..10, any::<bool>()), 1..4),
                0..12,
            )
        ) {
            let mut cnf = Cnf::new(10);
            for c in &clauses {
                cnf.push_lits(
                    c.iter().map(|&(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) }).collect(),
                );
            }
            let (d, _) = compile(&cnf, &Budget::unlimited()).unwrap();
            prop_assert_eq!(d.count_models().to_u64().unwrap(), cnf.count_models_bruteforce());
            prop_assert!(d.verify_decomposable().is_ok());
            prop_assert!(d.verify_decisions().is_ok());
            prop_assert!(d.check_determinism_sampled(20, 5).is_ok());
        }

        #[test]
        fn prop_heuristics_agree_on_model_count(
            clauses in proptest::collection::vec(
                proptest::collection::vec((0usize..8, any::<bool>()), 1..4),
                0..10,
            )
        ) {
            // Different branch orders yield different circuits but must
            // represent the same function.
            let mut cnf = Cnf::new(8);
            for c in &clauses {
                cnf.push_lits(
                    c.iter().map(|&(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) }).collect(),
                );
            }
            let expect = cnf.count_models_bruteforce();
            for h in [
                BranchHeuristic::Vsads,
                BranchHeuristic::MaxOccurrence,
                BranchHeuristic::JeroslowWang,
                BranchHeuristic::MinIndex,
            ] {
                let (d, _) = compile_with(&cnf, &Budget::unlimited(), h).unwrap();
                prop_assert_eq!(d.count_models().to_u64().unwrap(), expect, "{:?}", h);
                prop_assert!(d.verify_decomposable().is_ok());
            }
        }
    }
}
