//! The CNF → d-DNNF compiler.
//!
//! An exhaustive DPLL search that *records* its trace as a d-DNNF (the
//! classic c2d/Dsharp recipe the paper's pipeline invokes externally):
//!
//! * **unit propagation** forces literals, which become children of a
//!   decomposable ∧;
//! * **connected components** of the residual clause set share no variables
//!   and are compiled independently — their conjunction is decomposable;
//! * **branching** on a variable yields a *decision* ∨ node
//!   `(v ∧ C|v) ∨ (¬v ∧ C|¬v)`, deterministic by construction;
//! * **component caching** keyed by the residual clauses (literal-level
//!   canonical encoding) makes equal sub-formulas compile once.
//!
//! There is no theoretical guarantee of efficiency — compiling CNF to d-DNNF
//! is `FP^{#P}`-hard in general, as the paper notes — so compilation takes a
//! [`Budget`] (deadline and node cap) and fails gracefully; the hybrid engine
//! (§6.3) turns that failure into a CNF-Proxy fallback.

use crate::ddnnf::{Ddnnf, DdnnfBuilder, NodeIdx};
use crate::project::project;
use shapdb_circuit::{tseytin, Circuit, Cnf, Lit, NodeId, TseytinCnf, VarId};
use std::collections::HashMap;
use std::time::Instant;

/// Resource limits for compilation.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Hard wall-clock deadline (checked cooperatively).
    pub deadline: Option<Instant>,
    /// Maximum number of d-DNNF nodes to allocate.
    pub max_nodes: usize,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            deadline: None,
            max_nodes: usize::MAX,
        }
    }
}

impl Budget {
    /// No limits.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// A deadline `timeout` from now.
    pub fn with_timeout(timeout: std::time::Duration) -> Budget {
        Budget {
            deadline: Some(Instant::now() + timeout),
            max_nodes: usize::MAX,
        }
    }

    /// A node cap.
    pub fn with_max_nodes(max_nodes: usize) -> Budget {
        Budget {
            deadline: None,
            max_nodes,
        }
    }
}

/// Why compilation was aborted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// The [`Budget::deadline`] passed.
    Timeout,
    /// More than [`Budget::max_nodes`] nodes were needed.
    NodeLimit,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Timeout => write!(f, "knowledge compilation timed out"),
            CompileError::NodeLimit => write!(f, "knowledge compilation hit the node limit"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Counters describing a compilation run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompileStats {
    /// d-DNNF nodes in the result arena.
    pub nodes: usize,
    /// Component-cache hits.
    pub cache_hits: u64,
    /// Branching decisions taken.
    pub decisions: u64,
    /// Literals forced by unit propagation.
    pub propagations: u64,
}

/// Variable-selection strategy for decision branching.
///
/// The default (`MaxOccurrence`) picks the variable with the most occurrences
/// in the residual component — cheap and effective on Tseytin CNFs, whose
/// auxiliary variables dominate occurrence counts and propagate eagerly.
/// `JeroslowWang` weights occurrences by `2^{-|clause|}`, preferring
/// variables in short clauses; `MinIndex` (lowest variable id) is the naive
/// baseline the ablation bench measures the others against.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum BranchHeuristic {
    /// Most occurrences in the component (the default).
    #[default]
    MaxOccurrence,
    /// Jeroslow–Wang: `Σ 2^{-|clause|}` over the variable's occurrences.
    JeroslowWang,
    /// Smallest variable index (ablation baseline).
    MinIndex,
}

const UNASSIGNED: i8 = -1;

struct Compiler<'a> {
    clauses: Vec<Vec<Lit>>,
    assign: Vec<i8>,
    builder: DdnnfBuilder,
    cache: HashMap<Vec<i32>, NodeIdx>,
    stats: CompileStats,
    budget: &'a Budget,
    heuristic: BranchHeuristic,
    ticks: u32,
}

impl<'a> Compiler<'a> {
    fn new(cnf: &Cnf, budget: &'a Budget, heuristic: BranchHeuristic) -> Compiler<'a> {
        Compiler {
            clauses: cnf.clauses().iter().map(|c| c.lits().to_vec()).collect(),
            assign: vec![UNASSIGNED; cnf.num_vars()],
            builder: DdnnfBuilder::new(),
            cache: HashMap::new(),
            stats: CompileStats::default(),
            budget,
            heuristic,
            ticks: 0,
        }
    }

    fn check_budget(&mut self) -> Result<(), CompileError> {
        if self.builder.len() > self.budget.max_nodes {
            return Err(CompileError::NodeLimit);
        }
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks.is_multiple_of(256) {
            if let Some(d) = self.budget.deadline {
                if Instant::now() > d {
                    return Err(CompileError::Timeout);
                }
            }
        }
        Ok(())
    }

    fn lit_value(&self, l: Lit) -> i8 {
        match self.assign[l.var()] {
            UNASSIGNED => UNASSIGNED,
            v => i8::from(l.satisfied_by(v == 1)),
        }
    }

    /// Compiles the conjunction of `clause_ids` under the current assignment.
    fn compile_clauses(&mut self, clause_ids: &[u32]) -> Result<NodeIdx, CompileError> {
        self.check_budget()?;

        // --- Unit propagation (with a local trail for undo). ---
        let mut trail: Vec<usize> = Vec::new();
        let mut conflict = false;
        loop {
            // Long unit-propagation chains over large clause sets must also
            // observe the deadline, not only recursive entries.
            if let Err(e) = self.check_budget() {
                for v in trail {
                    self.assign[v] = UNASSIGNED;
                }
                return Err(e);
            }
            let mut changed = false;
            'clauses: for &cid in clause_ids {
                let mut unassigned: Option<Lit> = None;
                let mut n_unassigned = 0;
                for &l in &self.clauses[cid as usize] {
                    match self.lit_value(l) {
                        1 => continue 'clauses, // satisfied
                        0 => {}
                        _ => {
                            n_unassigned += 1;
                            unassigned = Some(l);
                        }
                    }
                }
                match n_unassigned {
                    0 => {
                        conflict = true;
                        break;
                    }
                    1 => {
                        let l = unassigned.unwrap();
                        self.assign[l.var()] = i8::from(l.is_positive());
                        trail.push(l.var());
                        self.stats.propagations += 1;
                        changed = true;
                    }
                    _ => {}
                }
            }
            if conflict || !changed {
                break;
            }
        }
        if conflict {
            for v in trail {
                self.assign[v] = UNASSIGNED;
            }
            return Ok(self.builder.false_node());
        }

        // --- Residual (active) clauses with their unassigned literals. ---
        let mut active: Vec<(u32, Vec<Lit>)> = Vec::new();
        'outer: for &cid in clause_ids {
            let mut rest = Vec::new();
            for &l in &self.clauses[cid as usize] {
                match self.lit_value(l) {
                    1 => continue 'outer,
                    0 => {}
                    _ => rest.push(l),
                }
            }
            debug_assert!(rest.len() >= 2, "units handled by propagation");
            active.push((cid, rest));
        }

        // The forced literals are part of the result function.
        let unit_nodes: Vec<NodeIdx> = trail
            .iter()
            .map(|&v| {
                let lit = if self.assign[v] == 1 {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                };
                self.builder.lit(lit)
            })
            .collect();

        let result = if active.is_empty() {
            self.builder.and(unit_nodes)
        } else {
            // --- Connected components over shared variables. ---
            let comps = split_components(&active);
            let mut parts = unit_nodes;
            let mut failed = None;
            for comp in comps {
                match self.compile_component(&comp) {
                    Ok(n) => parts.push(n),
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = failed {
                for v in trail {
                    self.assign[v] = UNASSIGNED;
                }
                return Err(e);
            }
            self.builder.and(parts)
        };

        for v in trail {
            self.assign[v] = UNASSIGNED;
        }
        Ok(result)
    }

    /// Selects the decision variable of a component per the configured
    /// heuristic. Ties break toward the smaller variable id so compilations
    /// are deterministic.
    fn pick_branch_var(&self, comp: &[(u32, Vec<Lit>)]) -> usize {
        match self.heuristic {
            BranchHeuristic::MaxOccurrence => {
                let mut occ: HashMap<usize, u32> = HashMap::new();
                for (_, lits) in comp {
                    for l in lits {
                        *occ.entry(l.var()).or_insert(0) += 1;
                    }
                }
                let (&var, _) = occ
                    .iter()
                    .max_by_key(|(&v, &c)| (c, std::cmp::Reverse(v)))
                    .expect("non-empty component");
                var
            }
            BranchHeuristic::JeroslowWang => {
                let mut score: HashMap<usize, f64> = HashMap::new();
                for (_, lits) in comp {
                    let w = (-(lits.len() as f64)).exp2();
                    for l in lits {
                        *score.entry(l.var()).or_insert(0.0) += w;
                    }
                }
                let (&var, _) = score
                    .iter()
                    .max_by(|(va, sa), (vb, sb)| sa.total_cmp(sb).then(vb.cmp(va)))
                    .expect("non-empty component");
                var
            }
            BranchHeuristic::MinIndex => comp
                .iter()
                .flat_map(|(_, lits)| lits.iter().map(|l| l.var()))
                .min()
                .expect("non-empty component"),
        }
    }

    /// Compiles one connected component (given as residual clauses), with
    /// caching and branching.
    fn compile_component(&mut self, comp: &[(u32, Vec<Lit>)]) -> Result<NodeIdx, CompileError> {
        let key = encode_component(comp);
        if let Some(&hit) = self.cache.get(&key) {
            self.stats.cache_hits += 1;
            return Ok(hit);
        }

        let branch_var = self.pick_branch_var(comp);
        self.stats.decisions += 1;

        let clause_ids: Vec<u32> = comp.iter().map(|(cid, _)| *cid).collect();

        self.assign[branch_var] = 1;
        let hi_sub = self.compile_clauses(&clause_ids);
        self.assign[branch_var] = UNASSIGNED;
        let hi_sub = hi_sub?;

        self.assign[branch_var] = 0;
        let lo_sub = self.compile_clauses(&clause_ids);
        self.assign[branch_var] = UNASSIGNED;
        let lo_sub = lo_sub?;

        let pos = self.builder.lit(Lit::pos(branch_var));
        let neg = self.builder.lit(Lit::neg(branch_var));
        let hi = self.builder.and([pos, hi_sub]);
        let lo = self.builder.and([neg, lo_sub]);
        let node = self.builder.decision(branch_var, hi, lo);
        self.cache.insert(key, node);
        Ok(node)
    }
}

/// Canonical encoding of a residual component: clauses as sorted literal
/// lists (`±(var+1)`), sorted lexicographically, 0-separated. Two states with
/// the same encoding denote the same Boolean function.
fn encode_component(comp: &[(u32, Vec<Lit>)]) -> Vec<i32> {
    let mut clauses: Vec<Vec<i32>> = comp
        .iter()
        .map(|(_, lits)| {
            let mut c: Vec<i32> = lits
                .iter()
                .map(|l| {
                    let v = l.var() as i32 + 1;
                    if l.is_positive() {
                        v
                    } else {
                        -v
                    }
                })
                .collect();
            c.sort_unstable();
            c
        })
        .collect();
    clauses.sort_unstable();
    let mut key = Vec::with_capacity(comp.len() * 4);
    for c in clauses {
        key.extend(c);
        key.push(0);
    }
    key
}

/// Splits residual clauses into variable-connected components.
fn split_components(active: &[(u32, Vec<Lit>)]) -> Vec<Vec<(u32, Vec<Lit>)>> {
    // Union-find over clause indices, joined through shared variables.
    let n = active.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut var_to_clause: HashMap<usize, usize> = HashMap::new();
    for (i, (_, lits)) in active.iter().enumerate() {
        for l in lits {
            match var_to_clause.entry(l.var()) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    let a = find(&mut parent, *e.get());
                    let b = find(&mut parent, i);
                    if a != b {
                        parent[a] = b;
                    }
                }
            }
        }
    }
    let mut groups: HashMap<usize, Vec<(u32, Vec<Lit>)>> = HashMap::new();
    for (i, entry) in active.iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(entry.clone());
    }
    let mut out: Vec<Vec<(u32, Vec<Lit>)>> = groups.into_values().collect();
    // Deterministic order (by first clause id) for reproducible circuits.
    out.sort_by_key(|g| g[0].0);
    out
}

/// Compiles a CNF into a d-DNNF over the same variable space.
pub fn compile(cnf: &Cnf, budget: &Budget) -> Result<(Ddnnf, CompileStats), CompileError> {
    compile_with(cnf, budget, BranchHeuristic::default())
}

/// [`compile`] with an explicit branching heuristic (ablation entry point).
pub fn compile_with(
    cnf: &Cnf,
    budget: &Budget,
    heuristic: BranchHeuristic,
) -> Result<(Ddnnf, CompileStats), CompileError> {
    let mut c = Compiler::new(cnf, budget, heuristic);
    // An empty clause makes the whole formula unsatisfiable.
    let root = if cnf.clauses().iter().any(|cl| cl.is_empty()) {
        c.builder.false_node()
    } else {
        let ids: Vec<u32> = (0..cnf.len() as u32).collect();
        c.compile_clauses(&ids)?
    };
    let mut stats = c.stats;
    stats.nodes = c.builder.len();
    Ok((c.builder.finish(root, cnf.num_vars()), stats))
}

/// Result of compiling a lineage circuit end-to-end (Figure 3 middle path).
#[derive(Debug)]
pub struct CircuitCompilation {
    /// d-DNNF over the circuit's input variables (auxiliaries eliminated).
    pub ddnnf: Ddnnf,
    /// `fact_vars[i]` is the circuit variable of d-DNNF variable `i`.
    pub fact_vars: Vec<VarId>,
    /// The intermediate Tseytin CNF (consumed by CNF Proxy as well).
    pub tseytin: TseytinCnf,
    /// d-DNNF size before auxiliary-variable elimination.
    pub unprojected_size: usize,
    /// Compiler counters.
    pub stats: CompileStats,
}

/// Circuit → Tseytin CNF → d-DNNF → project (Lemma 4.6).
pub fn compile_circuit(
    circuit: &Circuit,
    root: NodeId,
    budget: &Budget,
) -> Result<CircuitCompilation, CompileError> {
    let t = tseytin(circuit, root);
    let (full, stats) = compile(&t.cnf, budget)?;
    let unprojected_size = full.len();
    let ddnnf = project(&full, t.num_inputs());
    Ok(CircuitCompilation {
        ddnnf,
        fact_vars: t.input_vars.clone(),
        tseytin: t,
        unprojected_size,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_compiled(cnf: &Cnf) {
        let (d, _) = compile(cnf, &Budget::unlimited()).unwrap();
        d.verify_decomposable().unwrap();
        d.verify_decisions().unwrap();
        d.check_determinism_sampled(50, 11).unwrap();
        assert_eq!(
            d.count_models().to_u64().unwrap(),
            cnf.count_models_bruteforce(),
            "model count mismatch for {cnf}"
        );
    }

    #[test]
    fn empty_cnf_is_valid() {
        let cnf = Cnf::new(3);
        let (d, _) = compile(&cnf, &Budget::unlimited()).unwrap();
        assert_eq!(d.count_models().to_u64(), Some(8));
    }

    #[test]
    fn unsat_cnf() {
        let mut cnf = Cnf::new(2);
        cnf.push_lits(vec![Lit::pos(0)]);
        cnf.push_lits(vec![Lit::neg(0)]);
        let (d, _) = compile(&cnf, &Budget::unlimited()).unwrap();
        assert_eq!(d.count_models().to_u64(), Some(0));
    }

    #[test]
    fn example_5_1_formula() {
        // (x0 ∨ x1) ∧ (x0 ∨ x2 ∨ x3): 11 models.
        let mut cnf = Cnf::new(4);
        cnf.push_lits(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.push_lits(vec![Lit::pos(0), Lit::pos(2), Lit::pos(3)]);
        check_compiled(&cnf);
    }

    #[test]
    fn component_decomposition_produces_decomposable_and() {
        // Two independent sub-formulas: (x0∨x1) ∧ (x2∨x3).
        let mut cnf = Cnf::new(4);
        cnf.push_lits(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.push_lits(vec![Lit::pos(2), Lit::pos(3)]);
        let (d, stats) = compile(&cnf, &Budget::unlimited()).unwrap();
        assert_eq!(d.count_models().to_u64(), Some(9));
        // Splitting means at most 2 decisions (one per component).
        assert!(stats.decisions <= 2, "components not split: {stats:?}");
        check_compiled(&cnf);
    }

    #[test]
    fn unit_propagation_chains() {
        // x0 forced, then x1, then x2: single model over 3 vars.
        let mut cnf = Cnf::new(3);
        cnf.push_lits(vec![Lit::pos(0)]);
        cnf.push_lits(vec![Lit::neg(0), Lit::pos(1)]);
        cnf.push_lits(vec![Lit::neg(1), Lit::pos(2)]);
        let (d, stats) = compile(&cnf, &Budget::unlimited()).unwrap();
        assert_eq!(d.count_models().to_u64(), Some(1));
        assert_eq!(stats.decisions, 0);
        assert_eq!(stats.propagations, 3);
    }

    #[test]
    fn cache_hits_on_repeated_components() {
        // (x0 ∨ x1) ∧ (x0 ∨ x2) ∧ (x3 ∨ x4) — after branching x0 the residual
        // (x3∨x4) component recurs and should be cached.
        let mut cnf = Cnf::new(5);
        cnf.push_lits(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.push_lits(vec![Lit::pos(0), Lit::pos(2)]);
        cnf.push_lits(vec![Lit::pos(3), Lit::pos(4)]);
        let (d, _) = compile(&cnf, &Budget::unlimited()).unwrap();
        assert_eq!(
            d.count_models().to_u64(),
            Some(cnf.count_models_bruteforce())
        );
    }

    #[test]
    fn node_limit_enforced() {
        // A formula with no small representation under our heuristic still
        // compiles; set an absurdly small cap to force the error path.
        let mut cnf = Cnf::new(12);
        for i in 0..6 {
            cnf.push_lits(vec![Lit::pos(2 * i), Lit::pos(2 * i + 1)]);
            cnf.push_lits(vec![Lit::neg(2 * i), Lit::pos((2 * i + 3) % 12)]);
        }
        let err = compile(&cnf, &Budget::with_max_nodes(3)).unwrap_err();
        assert_eq!(err, CompileError::NodeLimit);
    }

    #[test]
    fn deadline_in_past_times_out() {
        let mut cnf = Cnf::new(30);
        // Pairwise chains to make propagation non-trivial.
        for i in 0..29 {
            cnf.push_lits(vec![Lit::pos(i), Lit::pos(i + 1)]);
        }
        let budget = Budget {
            deadline: Some(Instant::now() - std::time::Duration::from_secs(1)),
            max_nodes: usize::MAX,
        };
        // The check fires every 256 budget ticks, so a big enough formula
        // must hit it; retry with a pigeonhole formula if not.
        match compile(&cnf, &budget) {
            Err(CompileError::Timeout) => {}
            Ok(_) => {
                // Compilation may legitimately finish before the first tick
                // window; that is acceptable behaviour for tiny inputs.
            }
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn tautological_clause_handled() {
        let mut cnf = Cnf::new(2);
        cnf.push_lits(vec![Lit::pos(0), Lit::neg(0)]);
        cnf.push_lits(vec![Lit::pos(1)]);
        let (d, _) = compile(&cnf, &Budget::unlimited()).unwrap();
        assert_eq!(
            d.count_models().to_u64(),
            Some(cnf.count_models_bruteforce())
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_model_count_matches_bruteforce(
            clauses in proptest::collection::vec(
                proptest::collection::vec((0usize..10, any::<bool>()), 1..4),
                0..12,
            )
        ) {
            let mut cnf = Cnf::new(10);
            for c in &clauses {
                cnf.push_lits(
                    c.iter().map(|&(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) }).collect(),
                );
            }
            let (d, _) = compile(&cnf, &Budget::unlimited()).unwrap();
            prop_assert_eq!(d.count_models().to_u64().unwrap(), cnf.count_models_bruteforce());
            prop_assert!(d.verify_decomposable().is_ok());
            prop_assert!(d.verify_decisions().is_ok());
            prop_assert!(d.check_determinism_sampled(20, 5).is_ok());
        }

        #[test]
        fn prop_heuristics_agree_on_model_count(
            clauses in proptest::collection::vec(
                proptest::collection::vec((0usize..8, any::<bool>()), 1..4),
                0..10,
            )
        ) {
            // Different branch orders yield different circuits but must
            // represent the same function.
            let mut cnf = Cnf::new(8);
            for c in &clauses {
                cnf.push_lits(
                    c.iter().map(|&(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) }).collect(),
                );
            }
            let expect = cnf.count_models_bruteforce();
            for h in [
                BranchHeuristic::MaxOccurrence,
                BranchHeuristic::JeroslowWang,
                BranchHeuristic::MinIndex,
            ] {
                let (d, _) = compile_with(&cnf, &Budget::unlimited(), h).unwrap();
                prop_assert_eq!(d.count_models().to_u64().unwrap(), expect, "{:?}", h);
                prop_assert!(d.verify_decomposable().is_ok());
            }
        }
    }
}
