//! # shapdb-kc — knowledge compilation to d-DNNF
//!
//! The paper's exact algorithm (§4) runs on *deterministic and decomposable*
//! Boolean circuits. Its implementation compiles the Tseytin CNF of the
//! endogenous lineage into a d-DNNF with the external `c2d` compiler; this
//! crate plays that role from scratch:
//!
//! * [`Ddnnf`] — the compiled representation (NNF arena with decision-∨
//!   nodes), with model counting, weighted model counting (probability), and
//!   structural verification;
//! * [`compile()`](compile()) — an exhaustive-DPLL compiler (unit propagation, connected-
//!   component decomposition, component caching, branching) with cooperative
//!   deadline / node budgets so the hybrid engine (§6.3) can time out;
//! * [`project()`](project()) — the auxiliary-variable elimination of Lemma 4.6, turning a
//!   d-DNNF over `vars(C') ∪ Z` into one over `vars(C')` only;
//! * [`compile_circuit()`](compile_circuit) — the full middle path of Figure 3
//!   (circuit → Tseytin → compile → project);
//! * [`compile_topdown()`](compile_topdown()) — the sharpSAT/GANAK-style
//!   top-down compiler for wide non-read-once lineages, with VSADS
//!   branching over conflict activity and a [`ComponentCache`] keyed by the
//!   canonical residual-component encoding that can be **shared across
//!   lineages** ([`compile_topdown_shared`], [`compile_circuit_topdown`]).
//!
//! The compilers deliberately do **not** use the pure-literal rule: it
//! preserves satisfiability but not equivalence, and knowledge compilation
//! needs equivalence (all of model counting would silently break).

pub mod compile;
pub mod compile_topdown;
pub mod ddnnf;
pub mod nnf_format;
pub mod project;
mod scratch;
pub mod smooth;

pub use compile::{
    compile, compile_circuit, compile_with, BranchHeuristic, Budget, CircuitCompilation,
    CompileError, CompileStats,
};
pub use compile_topdown::{
    compile_circuit_topdown, compile_topdown, compile_topdown_shared, ComponentCache,
    ComponentCacheStats,
};
pub use ddnnf::{DNode, Ddnnf, DdnnfBuilder, NodeIdx};
pub use nnf_format::{from_nnf, to_nnf, NnfError};
pub use project::project;
pub use smooth::{count_models_smooth, is_smooth, smooth};
