//! Auxiliary-variable elimination (Lemma 4.6 of the paper).
//!
//! The compiled d-DNNF ranges over the circuit's input variables *plus* the
//! Tseytin auxiliaries `Z`. Because every satisfying assignment of the
//! original circuit extends to **exactly one** assignment of `Z`, projecting
//! the d-DNNF onto the inputs is possible in linear time:
//!
//! 1. mark satisfiable nodes bottom-up (on a decomposable circuit an ∧ is
//!    satisfiable iff all children are; a deterministic ∨ iff some child is);
//! 2. drop unsatisfiable ∨-children;
//! 3. replace every auxiliary literal by ⊤.
//!
//! The result is equivalent to the original circuit over the inputs and is
//! still deterministic and decomposable (determinism of ∨ nodes whose
//! decision variable was an auxiliary follows from the exactly-one-extension
//! property; `check_determinism_sampled` spot-checks it in tests).

use crate::ddnnf::{DNode, Ddnnf, DdnnfBuilder, NodeIdx};

/// Projects `d` onto variables `0..num_inputs` (all variables `>= num_inputs`
/// are treated as Tseytin auxiliaries and eliminated).
pub fn project(d: &Ddnnf, num_inputs: usize) -> Ddnnf {
    // Pass 1: satisfiability flags (valid thanks to decomposability /
    // determinism).
    let nodes = d.nodes();
    let mut sat = vec![false; nodes.len()];
    for (i, n) in nodes.iter().enumerate() {
        sat[i] = match n {
            DNode::True | DNode::Lit(_) => true,
            DNode::False => false,
            DNode::And(cs) => cs.iter().all(|c| sat[c.index()]),
            DNode::Or(cs, _) => cs.iter().any(|c| sat[c.index()]),
        };
    }

    // Pass 2: rebuild with unsat Or-children removed and aux literals ⊤-ed.
    let mut b = DdnnfBuilder::new();
    let mut map: Vec<NodeIdx> = Vec::with_capacity(nodes.len());
    for (i, n) in nodes.iter().enumerate() {
        let new = match n {
            DNode::True => b.true_node(),
            DNode::False => b.false_node(),
            DNode::Lit(l) => {
                if l.var() >= num_inputs {
                    b.true_node()
                } else {
                    b.lit(*l)
                }
            }
            DNode::And(cs) => {
                if sat[i] {
                    let kids: Vec<NodeIdx> = cs.iter().map(|c| map[c.index()]).collect();
                    b.and(kids)
                } else {
                    b.false_node()
                }
            }
            DNode::Or(cs, decision) => {
                let kids: Vec<NodeIdx> = cs
                    .iter()
                    .filter(|c| sat[c.index()])
                    .map(|c| map[c.index()])
                    .collect();
                // Keep the decision annotation only if the variable survives.
                match decision {
                    Some(v) if (*v as usize) < num_inputs && kids.len() == 2 => {
                        b.decision(*v as usize, kids[0], kids[1])
                    }
                    _ => b.or(kids),
                }
            }
        };
        map.push(new);
    }
    b.finish(map[d.root().index()], num_inputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, Budget};
    use shapdb_circuit::{tseytin, Circuit, VarId};
    use shapdb_num::Bitset;

    /// End-to-end: circuit → Tseytin → compile → project must preserve the
    /// Boolean function over the circuit inputs.
    fn check_roundtrip(circuit: &Circuit, root: shapdb_circuit::NodeId) {
        let t = tseytin(circuit, root);
        let (full, _) = compile(&t.cnf, &Budget::unlimited()).unwrap();
        let proj = project(&full, t.num_inputs());
        assert_eq!(proj.num_vars(), t.num_inputs());
        proj.verify_decomposable().unwrap();
        proj.check_determinism_sampled(100, 13).unwrap();
        let n = t.num_inputs();
        assert!(n <= 16);
        for mask in 0u32..(1 << n) {
            let mut s = Bitset::new(n.max(1));
            for i in 0..n {
                if mask >> i & 1 == 1 {
                    s.insert(i);
                }
            }
            let expect = circuit.eval(root, &|v| {
                t.input_index(v).is_some_and(|i| mask >> i & 1 == 1)
            });
            assert_eq!(proj.eval_set(&s), expect, "mask {mask:b}");
        }
    }

    #[test]
    fn running_example_elin_q() {
        // ELin(q) = a1 ∨ (a2∧a4) ∨ (a2∧a5) ∨ (a3∧a4) ∨ (a3∧a5) ∨ (a6∧a7).
        let mut c = Circuit::new();
        let a: Vec<_> = (1..=7).map(|i| c.var(VarId(i))).collect();
        let pairs = [
            c.and([a[1], a[3]]),
            c.and([a[1], a[4]]),
            c.and([a[2], a[3]]),
            c.and([a[2], a[4]]),
            c.and([a[5], a[6]]),
        ];
        let mut disjuncts = vec![a[0]];
        disjuncts.extend(pairs);
        let root = c.or(disjuncts);
        check_roundtrip(&c, root);
    }

    #[test]
    fn with_negations() {
        let mut c = Circuit::new();
        let x = c.var(VarId(0));
        let y = c.var(VarId(1));
        let z = c.var(VarId(2));
        let nx = c.not(x);
        let g1 = c.and([nx, y]);
        let g2 = c.and([x, z]);
        let root = c.or([g1, g2]);
        check_roundtrip(&c, root);
    }

    #[test]
    fn constant_circuits() {
        let mut c = Circuit::new();
        let t = c.constant(true);
        check_roundtrip(&c, t);
        let f = c.constant(false);
        check_roundtrip(&c, f);
    }

    #[test]
    fn projected_model_count_matches_circuit() {
        // Model count over inputs must equal the number of accepting input
        // assignments (aux variables contribute exactly one extension each).
        let mut c = Circuit::new();
        let vs: Vec<_> = (0..5).map(|i| c.var(VarId(i))).collect();
        let g1 = c.and([vs[0], vs[1]]);
        let g2 = c.and([vs[2], vs[3], vs[4]]);
        let g3 = c.and([vs[0], vs[4]]);
        let root = c.or([g1, g2, g3]);
        let t = tseytin(&c, root);
        let (full, _) = compile(&t.cnf, &Budget::unlimited()).unwrap();
        let proj = project(&full, t.num_inputs());
        let accepting = (0u32..32)
            .filter(|&m| c.eval(root, &|v| m >> v.0 & 1 == 1))
            .count();
        assert_eq!(proj.count_models().to_u64(), Some(accepting as u64));
        // Pre-projection the count is identical (1:1 extensions).
        assert_eq!(full.count_models().to_u64(), Some(accepting as u64));
    }

    #[test]
    fn deep_nested_circuit() {
        let mut c = Circuit::new();
        let vs: Vec<_> = (0..8).map(|i| c.var(VarId(i))).collect();
        let mut acc = vs[0];
        for (i, &v) in vs.iter().enumerate().skip(1) {
            acc = if i % 2 == 0 {
                c.and([acc, v])
            } else {
                c.or([acc, v])
            };
        }
        check_roundtrip(&c, acc);
    }
}
