//! d-DNNF smoothing — the textbook alternative to arithmetic gap-completion.
//!
//! A d-DNNF is *smooth* when every `∨` gate's children mention exactly the
//! gate's variable set. Standard treatments (and the paper's Line 1 of
//! Algorithm 1, which conjoins `f' ∨ ¬f'` for missing variables) smooth the
//! circuit *structurally*, after which model counting degenerates to
//! sum-at-∨ / product-at-∧ with literal count 1. This repository's
//! counting and Shapley DPs instead handle variable gaps *arithmetically*
//! (binomial expansion at `∨`, closed-form completion weights), which keeps
//! circuits small; this module provides the structural transformation anyway:
//!
//! * as an executable specification that the arithmetic shortcut is
//!   equivalent (tested: `count_models` on the original = smooth-count on
//!   the smoothed circuit), and
//! * to quantify what smoothing costs in circuit size (ablation bench) —
//!   the reason the shortcut is the default.
//!
//! Smoothing wraps each gap variable `v` in a decision gate `(v ∨ ¬v)`;
//! those gates are shared across all gaps, so the blow-up is
//! `O(|C| + (#gaps) + num_vars)` nodes.

use crate::ddnnf::{DNode, Ddnnf, DdnnfBuilder, NodeIdx};
use shapdb_circuit::Lit;
use shapdb_num::BigUint;

/// Structurally smooths a d-DNNF: every `∨` child is conjoined with
/// `(v ∨ ¬v)` for each variable of the gate it lacks, and the root is
/// completed to mention all `num_vars` variables.
pub fn smooth(d: &Ddnnf) -> Ddnnf {
    let sets = d.var_sets();
    let mut b = DdnnfBuilder::new();
    // Tautology gate per variable, created on demand and shared.
    let mut taut: Vec<Option<NodeIdx>> = vec![None; d.num_vars()];
    let tautology = |b: &mut DdnnfBuilder, v: usize, taut: &mut Vec<Option<NodeIdx>>| {
        if let Some(t) = taut[v] {
            return t;
        }
        let hi = b.lit(Lit::pos(v));
        let lo = b.lit(Lit::neg(v));
        let t = b.decision(v, hi, lo);
        taut[v] = Some(t);
        t
    };

    let mut map: Vec<NodeIdx> = Vec::with_capacity(d.len());
    for (g, node) in d.nodes().iter().enumerate() {
        let mapped = match node {
            DNode::True => b.true_node(),
            DNode::False => b.false_node(),
            DNode::Lit(l) => b.lit(*l),
            DNode::And(cs) => {
                let kids: Vec<NodeIdx> = cs.iter().map(|c| map[c.index()]).collect();
                b.and(kids)
            }
            DNode::Or(cs, dec) => {
                let mut kids: Vec<NodeIdx> = Vec::with_capacity(cs.len());
                for c in cs.iter() {
                    let mut parts = vec![map[c.index()]];
                    // Conjoin (v ∨ ¬v) for every variable of the gate the
                    // child does not mention.
                    for v in sets[g].iter() {
                        if !sets[c.index()].contains(v) {
                            parts.push(tautology(&mut b, v, &mut taut));
                        }
                    }
                    kids.push(b.and(parts));
                }
                match dec {
                    Some(v) if kids.len() == 2 => b.decision(*v as usize, kids[0], kids[1]),
                    _ => b.or(kids),
                }
            }
        };
        map.push(mapped);
    }

    // Complete the root over the full variable space.
    let root_idx = d.root().index();
    let mut parts = vec![map[root_idx]];
    for v in 0..d.num_vars() {
        if !sets[root_idx].contains(v) {
            parts.push(tautology(&mut b, v, &mut taut));
        }
    }
    let root = b.and(parts);
    b.finish(root, d.num_vars())
}

/// True iff every `∨` gate's children all mention the gate's variable set
/// and the root mentions every variable. The unsatisfiable circuit (root ⊥)
/// is smooth by convention — ⊥ cannot structurally mention anything.
pub fn is_smooth(d: &Ddnnf) -> bool {
    if matches!(d.nodes()[d.root().index()], DNode::False) {
        return true;
    }
    let sets = d.var_sets();
    for (g, node) in d.nodes().iter().enumerate() {
        if let DNode::Or(cs, _) = node {
            for c in cs.iter() {
                if sets[c.index()] != sets[g] {
                    return false;
                }
            }
        }
    }
    sets[d.root().index()].len() == d.num_vars()
}

/// Model count valid **only on smooth circuits**: literal → 1, `∨` → sum,
/// `∧` → product — no gap correction anywhere. Exposed to demonstrate that
/// [`smooth`] + this simple recurrence equals
/// [`Ddnnf::count_models`]'s arithmetic shortcut on the original circuit.
pub fn count_models_smooth(d: &Ddnnf) -> BigUint {
    debug_assert!(
        is_smooth(d),
        "count_models_smooth requires a smooth circuit"
    );
    let mut counts: Vec<BigUint> = Vec::with_capacity(d.len());
    for node in d.nodes() {
        let c = match node {
            DNode::True => BigUint::one(),
            DNode::False => BigUint::zero(),
            DNode::Lit(_) => BigUint::one(),
            DNode::And(cs) => {
                let mut acc = BigUint::one();
                for ch in cs.iter() {
                    acc = &acc * &counts[ch.index()];
                }
                acc
            }
            DNode::Or(cs, _) => {
                let mut acc = BigUint::zero();
                for ch in cs.iter() {
                    acc += &counts[ch.index()];
                }
                acc
            }
        };
        counts.push(c);
    }
    counts[d.root().index()].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, Budget};
    use proptest::prelude::*;
    use shapdb_circuit::Cnf;

    fn cnf_of(clauses: &[&[(usize, bool)]], num_vars: usize) -> Cnf {
        let mut cnf = Cnf::new(num_vars);
        for c in clauses {
            cnf.push_lits(
                c.iter()
                    .map(|&(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) })
                    .collect(),
            );
        }
        cnf
    }

    #[test]
    fn smoothing_fixes_gaps_and_preserves_count() {
        // (x0 ∨ x1) ∧ x2 over 5 vars: vars 3, 4 are gaps at the root.
        let cnf = cnf_of(&[&[(0, true), (1, true)], &[(2, true)]], 5);
        let (d, _) = compile(&cnf, &Budget::unlimited()).unwrap();
        assert!(!is_smooth(&d), "root gap expected");
        let s = smooth(&d);
        assert!(is_smooth(&s));
        assert_eq!(count_models_smooth(&s), d.count_models());
        assert_eq!(s.count_models(), d.count_models());
    }

    #[test]
    fn already_smooth_is_idempotent_in_function() {
        let cnf = cnf_of(&[&[(0, true), (1, false)]], 2);
        let (d, _) = compile(&cnf, &Budget::unlimited()).unwrap();
        let s1 = smooth(&d);
        let s2 = smooth(&s1);
        assert!(is_smooth(&s1) && is_smooth(&s2));
        assert_eq!(count_models_smooth(&s1), count_models_smooth(&s2));
    }

    #[test]
    fn constant_circuits() {
        let cnf = cnf_of(&[], 3); // ⊤ over 3 vars
        let (d, _) = compile(&cnf, &Budget::unlimited()).unwrap();
        let s = smooth(&d);
        assert!(is_smooth(&s));
        assert_eq!(count_models_smooth(&s).to_u64(), Some(8));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_smooth_count_equals_arithmetic_count(
            clauses in proptest::collection::vec(
                proptest::collection::vec((0usize..8, any::<bool>()), 1..4),
                0..10,
            )
        ) {
            let mut cnf = Cnf::new(8);
            for c in &clauses {
                cnf.push_lits(
                    c.iter().map(|&(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) }).collect(),
                );
            }
            let (d, _) = compile(&cnf, &Budget::unlimited()).unwrap();
            let s = smooth(&d);
            prop_assert!(is_smooth(&s));
            prop_assert!(s.verify_decomposable().is_ok());
            prop_assert_eq!(count_models_smooth(&s), d.count_models());
            // Smoothing never shrinks the circuit.
            prop_assert!(s.len() + 2 >= d.len());
        }
    }
}
