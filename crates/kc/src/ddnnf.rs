//! Deterministic decomposable NNF representation, counting, and verification.

use shapdb_circuit::Lit;
use shapdb_num::{BigUint, Bitset, Rational};

/// Index of a node in a [`Ddnnf`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeIdx(pub u32);

impl NodeIdx {
    /// The index as usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A d-DNNF node.
///
/// `Or` nodes carry an optional *decision variable*: compiler-produced
/// disjunctions branch on a variable (children imply `v` and `¬v`
/// respectively), which makes determinism a structural property. Projection
/// (Lemma 4.6) can erase the decision variable; such nodes remain
/// deterministic by the Tseytin exactly-one-extension argument, and
/// [`Ddnnf::check_determinism_sampled`] can spot-check them.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum DNode {
    True,
    False,
    Lit(Lit),
    /// Decomposable conjunction (children have pairwise disjoint variables).
    And(Box<[NodeIdx]>),
    /// Deterministic disjunction; `Some(v)` if it is a decision on `v`.
    Or(Box<[NodeIdx]>, Option<u32>),
}

/// A deterministic and decomposable NNF circuit over variables
/// `0..num_vars`.
#[derive(Clone, Debug)]
pub struct Ddnnf {
    nodes: Vec<DNode>,
    root: NodeIdx,
    num_vars: usize,
}

impl Ddnnf {
    /// Assembles a d-DNNF from an arena (children must precede parents).
    pub fn new(nodes: Vec<DNode>, root: NodeIdx, num_vars: usize) -> Ddnnf {
        assert!(root.index() < nodes.len(), "root out of range");
        Ddnnf {
            nodes,
            root,
            num_vars,
        }
    }

    /// The node arena (children precede parents).
    pub fn nodes(&self) -> &[DNode] {
        &self.nodes
    }

    /// The root node.
    pub fn root(&self) -> NodeIdx {
        self.root
    }

    /// Number of variables in the ambient variable space.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of nodes (the `|C|` of the paper's complexity bounds).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Evaluates under a total assignment.
    pub fn eval_set(&self, true_vars: &Bitset) -> bool {
        let mut memo = vec![false; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            memo[i] = match n {
                DNode::True => true,
                DNode::False => false,
                DNode::Lit(l) => l.satisfied_by(true_vars.contains(l.var())),
                DNode::And(cs) => cs.iter().all(|c| memo[c.index()]),
                DNode::Or(cs, _) => cs.iter().any(|c| memo[c.index()]),
            };
        }
        memo[self.root.index()]
    }

    /// Per-node variable sets (`Vars(g)` in the paper).
    pub fn var_sets(&self) -> Vec<Bitset> {
        let mut sets: Vec<Bitset> = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            let mut s = Bitset::new(self.num_vars);
            match n {
                DNode::True | DNode::False => {}
                DNode::Lit(l) => s.insert(l.var()),
                DNode::And(cs) | DNode::Or(cs, _) => {
                    for c in cs.iter() {
                        s.union_with(&sets[c.index()]);
                    }
                }
            }
            sets.push(s);
        }
        sets
    }

    /// Exact model count over all `num_vars` variables.
    ///
    /// Uses per-node counts over `Vars(g)` and multiplies by `2^gap` at ∨
    /// children and at the root (the "smoothing" correction done
    /// arithmetically instead of by rewriting the circuit).
    pub fn count_models(&self) -> BigUint {
        let sets = self.var_sets();
        let mut counts: Vec<BigUint> = Vec::with_capacity(self.nodes.len());
        for (i, n) in self.nodes.iter().enumerate() {
            let c = match n {
                DNode::True => BigUint::one(),
                DNode::False => BigUint::zero(),
                DNode::Lit(_) => BigUint::one(),
                DNode::And(cs) => {
                    let mut acc = BigUint::one();
                    for ch in cs.iter() {
                        acc = &acc * &counts[ch.index()];
                    }
                    acc
                }
                DNode::Or(cs, _) => {
                    let mut acc = BigUint::zero();
                    for ch in cs.iter() {
                        let gap = sets[i].difference_len(&sets[ch.index()]);
                        acc += &(counts[ch.index()].clone() << gap);
                    }
                    acc
                }
            };
            counts.push(c);
        }
        let root_gap = self.num_vars - sets[self.root.index()].len();
        counts[self.root.index()].clone() << root_gap
    }

    /// Probability that the circuit is satisfied when each variable `v` is
    /// independently true with probability `p[v]` (f64).
    ///
    /// Correct on non-smooth d-DNNFs because `p + (1-p) = 1` makes gap
    /// variables contribute a factor of one.
    pub fn probability_f64(&self, p: &[f64]) -> f64 {
        assert_eq!(p.len(), self.num_vars);
        let mut probs = vec![0.0f64; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            probs[i] = match n {
                DNode::True => 1.0,
                DNode::False => 0.0,
                DNode::Lit(l) => {
                    if l.is_positive() {
                        p[l.var()]
                    } else {
                        1.0 - p[l.var()]
                    }
                }
                DNode::And(cs) => cs.iter().map(|c| probs[c.index()]).product(),
                DNode::Or(cs, _) => cs.iter().map(|c| probs[c.index()]).sum(),
            };
        }
        probs[self.root.index()]
    }

    /// Exact-rational version of [`Ddnnf::probability_f64`]; this is the PQE
    /// oracle used by the Proposition 3.1 reduction.
    pub fn probability_rational(&self, p: &[Rational]) -> Rational {
        assert_eq!(p.len(), self.num_vars);
        let one = Rational::one();
        let mut probs: Vec<Rational> = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            let v = match n {
                DNode::True => one.clone(),
                DNode::False => Rational::zero(),
                DNode::Lit(l) => {
                    if l.is_positive() {
                        p[l.var()].clone()
                    } else {
                        &one - &p[l.var()]
                    }
                }
                DNode::And(cs) => {
                    let mut acc = one.clone();
                    for c in cs.iter() {
                        acc = &acc * &probs[c.index()];
                    }
                    acc
                }
                DNode::Or(cs, _) => {
                    let mut acc = Rational::zero();
                    for c in cs.iter() {
                        acc += &probs[c.index()];
                    }
                    acc
                }
            };
            probs.push(v);
        }
        probs[self.root.index()].clone()
    }

    /// Checks decomposability structurally: every ∧ node's children have
    /// pairwise disjoint variable sets. Returns a description of the first
    /// violation.
    pub fn verify_decomposable(&self) -> Result<(), String> {
        let sets = self.var_sets();
        for (i, n) in self.nodes.iter().enumerate() {
            if let DNode::And(cs) = n {
                let mut acc = Bitset::new(self.num_vars);
                for c in cs.iter() {
                    if !acc.is_disjoint(&sets[c.index()]) {
                        return Err(format!("And node {i} has overlapping children"));
                    }
                    acc.union_with(&sets[c.index()]);
                }
            }
        }
        Ok(())
    }

    /// Checks the structural determinism of decision nodes: the two branches
    /// of a decision on `v` must force `v` and `¬v`.
    pub fn verify_decisions(&self) -> Result<(), String> {
        // A branch forces v (resp. ¬v) if it is the literal itself or an And
        // containing it.
        let forces = |node: NodeIdx, lit: Lit| -> bool {
            match &self.nodes[node.index()] {
                DNode::Lit(l) => *l == lit,
                DNode::And(cs) => cs
                    .iter()
                    .any(|c| matches!(&self.nodes[c.index()], DNode::Lit(l) if *l == lit)),
                DNode::False => true, // vacuously deterministic
                _ => false,
            }
        };
        for (i, n) in self.nodes.iter().enumerate() {
            if let DNode::Or(cs, Some(v)) = n {
                if cs.len() != 2 {
                    return Err(format!("decision node {i} has {} children", cs.len()));
                }
                if !forces(cs[0], Lit::pos(*v as usize)) || !forces(cs[1], Lit::neg(*v as usize)) {
                    return Err(format!("decision node {i} branches do not force x{v}"));
                }
            }
        }
        Ok(())
    }

    /// Probabilistic determinism check for ∨ nodes whose decision variable
    /// was erased (by projection): samples random assignments and verifies
    /// that at most one child of every ∨ node is satisfied.
    pub fn check_determinism_sampled(&self, trials: usize, seed: u64) -> Result<(), String> {
        // Simple xorshift so the crate needs no RNG dependency.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for t in 0..trials {
            let mut assignment = Bitset::new(self.num_vars.max(1));
            for v in 0..self.num_vars {
                if next() & 1 == 1 {
                    assignment.insert(v);
                }
            }
            let mut memo = vec![false; self.nodes.len()];
            for (i, n) in self.nodes.iter().enumerate() {
                memo[i] = match n {
                    DNode::True => true,
                    DNode::False => false,
                    DNode::Lit(l) => l.satisfied_by(assignment.contains(l.var())),
                    DNode::And(cs) => cs.iter().all(|c| memo[c.index()]),
                    DNode::Or(cs, _) => {
                        let sat = cs.iter().filter(|c| memo[c.index()]).count();
                        if sat > 1 {
                            return Err(format!(
                                "Or node {i} has {sat} satisfied children (trial {t})"
                            ));
                        }
                        sat == 1
                    }
                };
            }
        }
        Ok(())
    }
}

/// Arena builder with hash-consing for d-DNNF construction.
#[derive(Default)]
pub struct DdnnfBuilder {
    nodes: Vec<DNode>,
    dedup: std::collections::HashMap<DNode, NodeIdx>,
}

impl DdnnfBuilder {
    /// A fresh builder.
    pub fn new() -> DdnnfBuilder {
        DdnnfBuilder::default()
    }

    /// Current number of nodes (used for node-budget checks).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff no nodes yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn intern(&mut self, n: DNode) -> NodeIdx {
        if let Some(&id) = self.dedup.get(&n) {
            return id;
        }
        let id = NodeIdx(self.nodes.len() as u32);
        self.nodes.push(n.clone());
        self.dedup.insert(n, id);
        id
    }

    /// The node stored at `idx` (compiler-internal: the component cache
    /// walks built sub-DAGs to extract portable fragments).
    pub(crate) fn node(&self, idx: NodeIdx) -> &DNode {
        &self.nodes[idx.index()]
    }

    /// Interns an already-normalized node verbatim (compiler-internal: the
    /// component cache re-instantiates fragments whose structure was
    /// normalized by this builder's own `and`/`decision` when first built).
    /// Children must already be interned.
    pub(crate) fn intern_node(&mut self, n: DNode) -> NodeIdx {
        self.intern(n)
    }

    /// The ⊤ node.
    pub fn true_node(&mut self) -> NodeIdx {
        self.intern(DNode::True)
    }

    /// The ⊥ node.
    pub fn false_node(&mut self) -> NodeIdx {
        self.intern(DNode::False)
    }

    /// A literal node.
    pub fn lit(&mut self, l: Lit) -> NodeIdx {
        self.intern(DNode::Lit(l))
    }

    /// A decomposable conjunction (flattens ⊤, propagates ⊥, collapses unary).
    pub fn and(&mut self, children: impl IntoIterator<Item = NodeIdx>) -> NodeIdx {
        let mut kids: Vec<NodeIdx> = Vec::new();
        for c in children {
            match &self.nodes[c.index()] {
                DNode::True => {}
                DNode::False => return self.false_node(),
                _ => kids.push(c),
            }
        }
        kids.sort_unstable();
        kids.dedup();
        match kids.len() {
            0 => self.true_node(),
            1 => kids[0],
            _ => self.intern(DNode::And(kids.into_boxed_slice())),
        }
    }

    /// A decision disjunction on `var` with the given branches (which must
    /// force `var` / `¬var`; enforced by the compiler). ⊥ branches collapse.
    pub fn decision(&mut self, var: usize, hi: NodeIdx, lo: NodeIdx) -> NodeIdx {
        let hi_false = matches!(self.nodes[hi.index()], DNode::False);
        let lo_false = matches!(self.nodes[lo.index()], DNode::False);
        match (hi_false, lo_false) {
            (true, true) => self.false_node(),
            (true, false) => lo,
            (false, true) => hi,
            (false, false) => {
                self.intern(DNode::Or(vec![hi, lo].into_boxed_slice(), Some(var as u32)))
            }
        }
    }

    /// A general deterministic disjunction (used by projection).
    pub fn or(&mut self, children: impl IntoIterator<Item = NodeIdx>) -> NodeIdx {
        let mut kids: Vec<NodeIdx> = Vec::new();
        for c in children {
            match &self.nodes[c.index()] {
                DNode::False => {}
                _ => kids.push(c),
            }
        }
        match kids.len() {
            0 => self.false_node(),
            1 => kids[0],
            _ => self.intern(DNode::Or(kids.into_boxed_slice(), None)),
        }
    }

    /// Finalizes into a [`Ddnnf`].
    pub fn finish(self, root: NodeIdx, num_vars: usize) -> Ddnnf {
        Ddnnf::new(self.nodes, root, num_vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(bits: &[usize], cap: usize) -> Bitset {
        let mut b = Bitset::new(cap);
        for &x in bits {
            b.insert(x);
        }
        b
    }

    /// Hand-built d-DNNF for x0 ∨ (¬x0 ∧ x1): decision on x0.
    fn or_of_two() -> Ddnnf {
        let mut b = DdnnfBuilder::new();
        let x0 = b.lit(Lit::pos(0));
        let nx0 = b.lit(Lit::neg(0));
        let x1 = b.lit(Lit::pos(1));
        let lo = b.and([nx0, x1]);
        let root = b.decision(0, x0, lo);
        b.finish(root, 2)
    }

    #[test]
    fn eval_and_count() {
        let d = or_of_two();
        assert!(d.eval_set(&set(&[0], 2)));
        assert!(d.eval_set(&set(&[1], 2)));
        assert!(!d.eval_set(&set(&[], 2)));
        // Models of x0 ∨ x1 over 2 vars: 3.
        assert_eq!(d.count_models().to_u64(), Some(3));
    }

    #[test]
    fn count_handles_gap_vars() {
        // Same function but declared over 4 variables: 3 * 2^2 = 12 models.
        let mut b = DdnnfBuilder::new();
        let x0 = b.lit(Lit::pos(0));
        let nx0 = b.lit(Lit::neg(0));
        let x1 = b.lit(Lit::pos(1));
        let lo = b.and([nx0, x1]);
        let root = b.decision(0, x0, lo);
        let d = b.finish(root, 4);
        assert_eq!(d.count_models().to_u64(), Some(12));
    }

    #[test]
    fn probability_matches_inclusion_exclusion() {
        let d = or_of_two();
        let p = [0.3, 0.5];
        // P(x0 ∨ x1) = 0.3 + 0.5 - 0.15 = 0.65.
        assert!((d.probability_f64(&p) - 0.65).abs() < 1e-12);
        let pr = [Rational::from_ratio(3, 10), Rational::from_ratio(1, 2)];
        assert_eq!(d.probability_rational(&pr), Rational::from_ratio(13, 20));
    }

    #[test]
    fn verification_passes_on_valid() {
        let d = or_of_two();
        d.verify_decomposable().unwrap();
        d.verify_decisions().unwrap();
        d.check_determinism_sampled(100, 7).unwrap();
    }

    #[test]
    fn verification_catches_overlap() {
        // And(x0, x0∧x1) is not decomposable.
        let mut b = DdnnfBuilder::new();
        let x0 = b.lit(Lit::pos(0));
        let x1 = b.lit(Lit::pos(1));
        let inner = b.and([x0, x1]);
        let root = b.intern(DNode::And(vec![x0, inner].into_boxed_slice()));
        let d = b.finish(root, 2);
        assert!(d.verify_decomposable().is_err());
    }

    #[test]
    fn sampled_determinism_catches_overlapping_or() {
        // Or(x0, x0 ∧ x1) is not deterministic: both true when x0=x1=1.
        let mut b = DdnnfBuilder::new();
        let x0 = b.lit(Lit::pos(0));
        let x1 = b.lit(Lit::pos(1));
        let a = b.and([x0, x1]);
        let root = b.intern(DNode::Or(vec![x0, a].into_boxed_slice(), None));
        let d = b.finish(root, 2);
        assert!(d.check_determinism_sampled(200, 3).is_err());
    }

    #[test]
    fn builder_simplifications() {
        let mut b = DdnnfBuilder::new();
        let t = b.true_node();
        let f = b.false_node();
        let x = b.lit(Lit::pos(0));
        assert_eq!(b.and([x, t]), x);
        assert_eq!(b.and([x, f]), f);
        assert_eq!(b.or([x, f]), x);
        assert_eq!(b.decision(0, f, f), f);
        let y = b.lit(Lit::pos(1));
        assert_eq!(b.and([x, y]), b.and([y, x]));
    }
}
