//! The c2d `.nnf` file format.
//!
//! `c2d` (the compiler the paper invokes) emits d-DNNFs in a simple textual
//! format:
//!
//! ```text
//! nnf <#nodes> <#edges> <#vars>
//! L <lit>                  (literal node; DIMACS-style 1-based literal)
//! A <k> <child...>         (AND node)
//! O <decision-var> <k> <child...>   (OR node; 0 when no decision variable)
//! ```
//!
//! Nodes are listed children-first; the last node is the root. `A 0` is ⊤
//! and `O 0 0` is ⊥. Supporting the format means our Algorithm 1 can consume
//! circuits produced by the original toolchain, and our compiler's output
//! can be checked by external d-DNNF reasoners.

use crate::ddnnf::{DNode, Ddnnf, DdnnfBuilder, NodeIdx};
use shapdb_circuit::Lit;
use std::fmt::Write as _;

/// Serializes a d-DNNF in c2d `.nnf` format.
pub fn to_nnf(d: &Ddnnf) -> String {
    let mut out = String::new();
    let edges: usize = d
        .nodes()
        .iter()
        .map(|n| match n {
            DNode::And(cs) | DNode::Or(cs, _) => cs.len(),
            _ => 0,
        })
        .sum();
    writeln!(out, "nnf {} {} {}", d.nodes().len(), edges, d.num_vars()).unwrap();
    for n in d.nodes() {
        match n {
            DNode::True => writeln!(out, "A 0").unwrap(),
            DNode::False => writeln!(out, "O 0 0").unwrap(),
            DNode::Lit(l) => {
                let v = l.var() as i64 + 1;
                writeln!(out, "L {}", if l.is_positive() { v } else { -v }).unwrap();
            }
            DNode::And(cs) => {
                write!(out, "A {}", cs.len()).unwrap();
                for c in cs.iter() {
                    write!(out, " {}", c.0).unwrap();
                }
                writeln!(out).unwrap();
            }
            DNode::Or(cs, decision) => {
                let dv = decision.map_or(0, |v| v as i64 + 1);
                write!(out, "O {} {}", dv, cs.len()).unwrap();
                for c in cs.iter() {
                    write!(out, " {}", c.0).unwrap();
                }
                writeln!(out).unwrap();
            }
        }
    }
    out
}

/// An `.nnf` parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NnfError(pub String);

impl std::fmt::Display for NnfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NNF error: {}", self.0)
    }
}

impl std::error::Error for NnfError {}

/// Parses a c2d `.nnf` file into a [`Ddnnf`] (the last node is the root).
///
/// Structural constraints (children before parents, indices in range) are
/// validated; decomposability/determinism can be checked afterwards with the
/// [`Ddnnf`] verifiers — external files are untrusted input.
pub fn from_nnf(text: &str) -> Result<Ddnnf, NnfError> {
    let mut lines = text.lines().filter(|l| {
        let t = l.trim();
        !t.is_empty() && !t.starts_with('c')
    });
    let header = lines.next().ok_or_else(|| NnfError("empty file".into()))?;
    let mut hp = header.split_whitespace();
    if hp.next() != Some("nnf") {
        return Err(NnfError("missing `nnf` header".into()));
    }
    let declared_nodes: usize = hp
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| NnfError("bad node count".into()))?;
    let _edges: usize = hp
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| NnfError("bad edge count".into()))?;
    let num_vars: usize = hp
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| NnfError("bad var count".into()))?;

    let mut b = DdnnfBuilder::new();
    // The builder hash-conses, so file node ids are remapped.
    let mut map: Vec<NodeIdx> = Vec::new();
    for line in lines {
        let mut p = line.split_whitespace();
        let kind = p.next().ok_or_else(|| NnfError("empty node line".into()))?;
        let node = match kind {
            "L" => {
                let v: i64 = p
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| NnfError("bad literal".into()))?;
                if v == 0 || v.unsigned_abs() as usize > num_vars {
                    return Err(NnfError(format!("literal {v} out of range")));
                }
                let var = v.unsigned_abs() as usize - 1;
                b.lit(if v > 0 { Lit::pos(var) } else { Lit::neg(var) })
            }
            "A" => {
                let k: usize = p
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| NnfError("bad AND arity".into()))?;
                let kids = parse_children(&mut p, k, map.len())?;
                if k == 0 {
                    b.true_node()
                } else {
                    b.and(kids.into_iter().map(|i| map[i]))
                }
            }
            "O" => {
                let dv: usize = p
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| NnfError("bad decision var".into()))?;
                let k: usize = p
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| NnfError("bad OR arity".into()))?;
                let kids = parse_children(&mut p, k, map.len())?;
                if k == 0 {
                    b.false_node()
                } else if dv > 0 && k == 2 {
                    b.decision(dv - 1, map[kids[0]], map[kids[1]])
                } else {
                    b.or(kids.into_iter().map(|i| map[i]))
                }
            }
            other => return Err(NnfError(format!("unknown node kind `{other}`"))),
        };
        map.push(node);
    }
    if map.len() != declared_nodes {
        return Err(NnfError(format!(
            "header declares {declared_nodes} nodes, found {}",
            map.len()
        )));
    }
    let root = *map.last().ok_or_else(|| NnfError("no nodes".into()))?;
    Ok(b.finish(root, num_vars))
}

fn parse_children<'a>(
    p: &mut impl Iterator<Item = &'a str>,
    k: usize,
    limit: usize,
) -> Result<Vec<usize>, NnfError> {
    let mut kids = Vec::with_capacity(k);
    for _ in 0..k {
        let c: usize = p
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| NnfError("missing child".into()))?;
        if c >= limit {
            return Err(NnfError(format!("forward reference to node {c}")));
        }
        kids.push(c);
    }
    Ok(kids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, Budget};
    use shapdb_circuit::Cnf;

    fn sample_ddnnf() -> Ddnnf {
        let mut cnf = Cnf::new(4);
        cnf.push_lits(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.push_lits(vec![Lit::pos(0), Lit::pos(2), Lit::pos(3)]);
        compile(&cnf, &Budget::unlimited()).unwrap().0
    }

    #[test]
    fn round_trip_preserves_function() {
        let d = sample_ddnnf();
        let text = to_nnf(&d);
        let back = from_nnf(&text).unwrap();
        assert_eq!(back.num_vars(), d.num_vars());
        assert_eq!(back.count_models(), d.count_models());
        back.verify_decomposable().unwrap();
        back.check_determinism_sampled(100, 17).unwrap();
    }

    #[test]
    fn constants_round_trip() {
        let mut b = DdnnfBuilder::new();
        let t = b.true_node();
        let d = b.finish(t, 2);
        let back = from_nnf(&to_nnf(&d)).unwrap();
        assert_eq!(back.count_models().to_u64(), Some(4));
    }

    #[test]
    fn handcrafted_c2d_style_input() {
        // (x1 ∧ x2) as c2d would print it.
        let text = "nnf 3 2 2\nL 1\nL 2\nA 2 0 1\n";
        let d = from_nnf(text).unwrap();
        assert_eq!(d.count_models().to_u64(), Some(1));
    }

    #[test]
    fn errors_detected() {
        assert!(from_nnf("").is_err());
        assert!(from_nnf("cnf 1 0 1\nL 1\n").is_err()); // wrong magic
        assert!(from_nnf("nnf 1 0 1\nL 5\n").is_err()); // var out of range
        assert!(from_nnf("nnf 2 1 1\nA 1 5\nL 1\n").is_err()); // forward ref
        assert!(from_nnf("nnf 3 0 1\nL 1\n").is_err()); // node count mismatch
        assert!(from_nnf("nnf 1 0 1\nX 1\n").is_err()); // unknown kind
    }

    #[test]
    fn wmc_agrees_on_imported_nnf() {
        // An imported circuit flows into the same downstream pipeline; WMC
        // (which Algorithm 1 builds on) must agree exactly.
        let d = sample_ddnnf();
        let imported = from_nnf(&to_nnf(&d)).unwrap();
        let direct = d.probability_f64(&[0.5; 4]);
        let via_import = imported.probability_f64(&[0.5; 4]);
        assert!((direct - via_import).abs() < 1e-12);
    }
}
