//! Epoch-stamped per-variable/per-clause scratch shared by the two CNF
//! compilers.
//!
//! Both the bottom-up trace compiler ([`crate::compile`]) and the top-down
//! compiler ([`crate::compile_topdown`]) run many short phases per
//! recursive call — propagation scoping, component splitting, cache-key
//! building, branch scoring — each needing "have I seen this variable /
//! clause this phase?" state. Allocating per-call maps dominates on small
//! components, so the state lives in flat arrays stamped with a phase
//! *epoch*: bumping the epoch invalidates every stamp at once, with no
//! clearing pass. Each phase runs entirely between recursive calls, so one
//! shared epoch suffices.

use shapdb_circuit::Lit;

/// The shared scratch arrays (sized once per compilation).
pub(crate) struct EpochScratch {
    /// Phase epoch for the stamp arrays below.
    pub epoch: u64,
    /// Clause id → epoch when it was last in the propagation scope.
    pub clause_stamp: Vec<u64>,
    /// Variable → epoch when it was last seen by the current phase.
    pub var_stamp: Vec<u64>,
    /// Variable → phase-local slot (component representative, local id, …).
    pub var_slot: Vec<u32>,
    /// Variable → branch-heuristic score (valid when stamped).
    pub var_score: Vec<f64>,
    /// Distinct variables of the current phase, in first-seen order.
    pub vars_scratch: Vec<u32>,
}

impl EpochScratch {
    /// Fresh scratch for `n_clauses` clauses over `n_vars` variables.
    pub fn new(n_clauses: usize, n_vars: usize) -> EpochScratch {
        EpochScratch {
            epoch: 0,
            clause_stamp: vec![0; n_clauses],
            var_stamp: vec![0; n_vars],
            var_slot: vec![0; n_vars],
            var_score: vec![0.0; n_vars],
            vars_scratch: Vec::new(),
        }
    }

    /// Starts a new phase: every existing stamp becomes stale.
    #[inline]
    pub fn begin_phase(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Splits residual clauses into variable-connected components:
    /// union-find over clause indices, joined through epoch-stamped
    /// per-variable representatives (no per-call map). Components come out
    /// ordered by first clause id (`active` is id-ordered) — reproducible
    /// circuits.
    pub fn split_components(&mut self, active: &[(u32, Vec<Lit>)]) -> Vec<Vec<(u32, Vec<Lit>)>> {
        let n = active.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        let epoch = self.begin_phase();
        for (i, (_, lits)) in active.iter().enumerate() {
            for l in lits {
                let v = l.var();
                if self.var_stamp[v] == epoch {
                    let a = find(&mut parent, self.var_slot[v] as usize);
                    let b = find(&mut parent, i);
                    if a != b {
                        parent[a] = b;
                    }
                } else {
                    self.var_stamp[v] = epoch;
                    self.var_slot[v] = i as u32;
                }
            }
        }
        // Group in first-appearance order (ascending first clause id).
        let mut group_of_root: Vec<usize> = vec![usize::MAX; n];
        let mut out: Vec<Vec<(u32, Vec<Lit>)>> = Vec::new();
        for (i, entry) in active.iter().enumerate() {
            let root = find(&mut parent, i);
            if group_of_root[root] == usize::MAX {
                group_of_root[root] = out.len();
                out.push(Vec::new());
            }
            out[group_of_root[root]].push(entry.clone());
        }
        out
    }
}
