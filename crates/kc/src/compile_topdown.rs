//! Top-down decision-DNNF compilation with a cross-lineage component cache.
//!
//! The bottom-up trace compiler (`crate::compile`) keys its component
//! cache by *residual clause ids*, which is cheap and sound but strictly
//! compilation-local: clause ids mean nothing outside one CNF. This module
//! is the sharpSAT/GANAK-style successor built for wide lineages:
//!
//! * **dynamic component decomposition** after every propagation fixpoint,
//!   over the same epoch-stamped union-find scratch
//!   (`crate::scratch::EpochScratch`) the bottom-up compiler uses;
//! * **VSADS branching with conflict-driven activity**: the static
//!   occurrence/clause-size blend of the model-counting literature, plus a
//!   dynamic activity term bumped on every propagation conflict and decayed
//!   periodically — the CDCL signal enters through branch *ordering*, which
//!   can never change the compiled function;
//! * **nogood learning as canonical caching**: a residual component that
//!   refutes (compiles to ⊥) is stored under its canonical encoding like
//!   any other, so every branch — in this compilation or any later one
//!   sharing the cache — that regenerates an isomorphic UNSAT component
//!   short-circuits without search. This is the GANAK view that component
//!   caching subsumes nogood learning. Full CDCL *clause* learning is
//!   deliberately excluded: a learned clause is implied by the conjunction
//!   of **all** components, so letting it prune inside one component can
//!   undercount when a sibling component is unsatisfiable, and the wrong
//!   count would be cached and reused where the sibling is satisfiable
//!   (the classic unsoundness Sang et al. had to patch in sharpSAT).
//!   Exactness is the contract here — Algorithm 1 consumes these circuits
//!   as ground truth — so only order-affecting learning is admitted;
//! * the headline: a **[`ComponentCache`] keyed by the canonical residual
//!   component encoding**, independent of clause ids and variable names,
//!   holding portable d-DNNF fragments. Isomorphic subcomponents recur
//!   across the answers of one query (the same join gadget instantiated
//!   per answer) exactly like whole lineages recur across the PR-2
//!   fingerprint dedup — but at sub-lineage granularity, where fingerprint
//!   equality fails. Shared behind an `Arc` through the planner, one cache
//!   serves the batch, sequential, and service paths.
//!
//! # The canonical encoding
//!
//! A residual component is its clauses' unassigned literals, clauses in
//! ascending original-id order. Variables are renamed to `0..k` in first-
//! occurrence order of that scan; each clause is emitted as a length prefix
//! followed by `local·2+sign` codes. Two components get equal encodings iff
//! they are identical up to a variable renaming that preserves first-
//! occurrence order — which is exactly how Tseytin numbering shifts the
//! same sub-circuit between lineages (and between offsets within one
//! lineage). This is not full isomorphism canonization (that is
//! GI-complete); it is the cheap normal form that catches the recurrence
//! actually present in query-answer corpora.
//!
//! Hits instantiate the stored fragment into the current builder (local →
//! component variables), so a hit costs O(fragment) node interning instead
//! of exponential search. Entries are additionally keyed by a caller
//! *context* digest (`n_endo`, planner policy) so results never travel
//! between incompatible solve configurations — see
//! `ComponentCache::lookup`.

use crate::compile::{Budget, CircuitCompilation, CompileError, CompileStats};
use crate::ddnnf::{DNode, Ddnnf, DdnnfBuilder, NodeIdx};
use crate::project::project;
use crate::scratch::EpochScratch;
use shapdb_circuit::{tseytin, Circuit, Cnf, Lit, NodeId};
use shapdb_metrics::counters::{KC_COMP_CACHE_EVICTIONS, KC_COMP_CACHE_HITS, KC_COMP_CACHE_MISSES};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Fragments larger than this are not stored (a single pathological
/// component must not evict the whole cache's worth of useful entries).
const MAX_FRAGMENT_NODES: usize = 1 << 14;

/// Default total node capacity of a [`ComponentCache`] (~48 MB worst case
/// at ~24 bytes a node plus child boxes).
const DEFAULT_CAPACITY_NODES: usize = 1 << 21;

/// A portable d-DNNF node over component-local variables.
#[derive(Clone, Debug)]
enum PNode {
    True,
    False,
    Lit {
        local: u32,
        positive: bool,
    },
    And(Box<[u32]>),
    Or {
        children: Box<[u32]>,
        decision: Option<u32>,
    },
}

/// A self-contained d-DNNF fragment: nodes over local variables `0..k`
/// (children precede parents; the root is the last node).
#[derive(Debug)]
struct Fragment {
    nodes: Box<[PNode]>,
}

struct CacheEntry {
    context: u64,
    key: Box<[u32]>,
    fragment: Arc<Fragment>,
    last_used: u64,
}

struct CacheInner {
    /// Buckets by FNV-1a pre-hash of `(context, key)`; hits verify the full
    /// key (hash collisions must never conflate two functions).
    buckets: HashMap<u64, Vec<CacheEntry>>,
    stored_nodes: usize,
    entries: usize,
    tick: u64,
}

/// Point-in-time statistics of one [`ComponentCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComponentCacheStats {
    /// Probes answered with a stored fragment.
    pub hits: u64,
    /// Probes that found no entry.
    pub misses: u64,
    /// Entries evicted (LRU) to stay under the node capacity.
    pub evictions: u64,
    /// Stored entries whose fragment is ⊥ — learned nogoods.
    pub nogoods: u64,
    /// Live entries.
    pub entries: usize,
    /// Total fragment nodes held.
    pub stored_nodes: usize,
}

/// The cross-lineage component cache: canonical residual-component encoding
/// → portable d-DNNF fragment, shareable (`Sync`) across the threads of a
/// batch or service. See the module docs for the encoding and soundness
/// story; probes and stores also feed the process-wide
/// `kc.comp_cache_{hits,misses,evictions}` counters.
#[derive(Debug)]
pub struct ComponentCache {
    inner: Mutex<CacheInner>,
    capacity_nodes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    nogoods: AtomicU64,
}

impl std::fmt::Debug for CacheInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheInner")
            .field("entries", &self.entries)
            .field("stored_nodes", &self.stored_nodes)
            .finish()
    }
}

impl Default for ComponentCache {
    fn default() -> Self {
        ComponentCache::new()
    }
}

impl ComponentCache {
    /// A cache with the default node capacity.
    pub fn new() -> ComponentCache {
        ComponentCache::with_capacity_nodes(DEFAULT_CAPACITY_NODES)
    }

    /// A cache holding at most `capacity_nodes` fragment nodes in total.
    pub fn with_capacity_nodes(capacity_nodes: usize) -> ComponentCache {
        ComponentCache {
            inner: Mutex::new(CacheInner {
                buckets: HashMap::new(),
                stored_nodes: 0,
                entries: 0,
                tick: 0,
            }),
            capacity_nodes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            nogoods: AtomicU64::new(0),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> ComponentCacheStats {
        let inner = self.lock();
        ComponentCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            nogoods: self.nogoods.load(Ordering::Relaxed),
            entries: inner.entries,
            stored_nodes: inner.stored_nodes,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn prehash(context: u64, key: &[u32]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for part in [context as u32, (context >> 32) as u32] {
            h = (h ^ part as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        for &x in key {
            h = (h ^ x as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Probes for a fragment compiled from a component with this canonical
    /// `key` under the same caller `context`. Contexts partition the cache:
    /// a fragment stored under one `n_endo`/policy digest is invisible to
    /// every other, so results never cross solve configurations.
    fn lookup(&self, context: u64, key: &[u32]) -> Option<Arc<Fragment>> {
        let h = Self::prehash(context, key);
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let found = inner.buckets.get_mut(&h).and_then(|bucket| {
            bucket
                .iter_mut()
                .find(|e| e.context == context && *e.key == *key)
        });
        match found {
            Some(e) => {
                e.last_used = tick;
                let frag = Arc::clone(&e.fragment);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                KC_COMP_CACHE_HITS.incr();
                Some(frag)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                KC_COMP_CACHE_MISSES.incr();
                None
            }
        }
    }

    /// Stores a fragment, evicting least-recently-used entries down to half
    /// capacity when full (batch eviction keeps the O(entries) scan rare).
    /// Oversized fragments and duplicate keys (two threads compiling the
    /// same component concurrently) are dropped.
    fn insert(&self, context: u64, key: Box<[u32]>, fragment: Arc<Fragment>) {
        let n = fragment.nodes.len();
        if n > MAX_FRAGMENT_NODES || n > self.capacity_nodes {
            return;
        }
        let is_nogood = matches!(fragment.nodes.last(), Some(PNode::False));
        let h = Self::prehash(context, &key);
        let mut inner = self.lock();
        if let Some(bucket) = inner.buckets.get(&h) {
            if bucket
                .iter()
                .any(|e| e.context == context && *e.key == *key)
            {
                return; // concurrent duplicate
            }
        }
        if inner.stored_nodes + n > self.capacity_nodes {
            let evicted = Self::evict_lru(&mut inner, self.capacity_nodes / 2);
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            KC_COMP_CACHE_EVICTIONS.add(evicted);
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.stored_nodes += n;
        inner.entries += 1;
        inner.buckets.entry(h).or_default().push(CacheEntry {
            context,
            key,
            fragment,
            last_used: tick,
        });
        drop(inner);
        if is_nogood {
            self.nogoods.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Evicts least-recently-used entries until at most `target_nodes`
    /// remain; returns how many entries were dropped.
    fn evict_lru(inner: &mut CacheInner, target_nodes: usize) -> u64 {
        let mut stamps: Vec<u64> = inner
            .buckets
            .values()
            .flat_map(|b| b.iter().map(|e| e.last_used))
            .collect();
        stamps.sort_unstable();
        // Find the stamp cutoff that frees enough nodes: walk oldest-first
        // summing sizes is entry-order-dependent, so instead drop entries
        // oldest-first until under target by two passes over the stamps.
        let mut evicted = 0u64;
        for &cutoff in &stamps {
            if inner.stored_nodes <= target_nodes {
                break;
            }
            for bucket in inner.buckets.values_mut() {
                if let Some(pos) = bucket.iter().position(|e| e.last_used == cutoff) {
                    let e = bucket.swap_remove(pos);
                    inner.stored_nodes -= e.fragment.nodes.len();
                    inner.entries -= 1;
                    evicted += 1;
                    break;
                }
            }
        }
        inner.buckets.retain(|_, b| !b.is_empty());
        evicted
    }
}

/// One component-cache bucket of the compilation-local (clause-id-keyed)
/// cache, as in the bottom-up compiler.
type LocalBucket = Vec<(Box<[u32]>, NodeIdx)>;

const UNASSIGNED: i8 = -1;

/// Conflict-activity decay period (conflicts between halvings).
const ACTIVITY_DECAY_PERIOD: u64 = 128;

struct TopDownCompiler<'a> {
    clauses: Vec<Vec<Lit>>,
    assign: Vec<i8>,
    builder: DdnnfBuilder,
    /// Compilation-local component cache (cheap clause-id keys), probed
    /// before the shared canonical cache.
    local: HashMap<u64, LocalBucket>,
    /// The cross-lineage cache and the caller's context digest, if shared.
    shared: Option<(&'a ComponentCache, u64)>,
    stats: CompileStats,
    budget: &'a Budget,
    ticks: u32,
    /// Variable → ids of the clauses containing it.
    occurs: Vec<Vec<u32>>,
    /// Epoch-stamped phase state shared with the bottom-up compiler.
    scratch: EpochScratch,
    /// Conflict-driven branching activity per variable (VSADS dynamic
    /// term): bumped for every variable of a conflicting clause, halved
    /// every [`ACTIVITY_DECAY_PERIOD`] conflicts. Order-only: activity
    /// never changes the compiled function, so exactness is untouched.
    activity: Vec<u64>,
    conflicts: u64,
    /// Variables `>= aux_from` are Tseytin gate variables and are branched
    /// in preference to inputs (order-only; see [`Self::pick_branch_var`]).
    aux_from: usize,
}

impl<'a> TopDownCompiler<'a> {
    fn new(
        cnf: &Cnf,
        budget: &'a Budget,
        shared: Option<(&'a ComponentCache, u64)>,
        aux_from: usize,
    ) -> TopDownCompiler<'a> {
        let clauses: Vec<Vec<Lit>> = cnf.clauses().iter().map(|c| c.lits().to_vec()).collect();
        let n_vars = cnf.num_vars();
        let mut occurs: Vec<Vec<u32>> = vec![Vec::new(); n_vars];
        for (cid, lits) in clauses.iter().enumerate() {
            for l in lits {
                occurs[l.var()].push(cid as u32);
            }
        }
        TopDownCompiler {
            assign: vec![UNASSIGNED; n_vars],
            builder: DdnnfBuilder::new(),
            local: HashMap::new(),
            shared,
            stats: CompileStats::default(),
            budget,
            ticks: 0,
            occurs,
            scratch: EpochScratch::new(clauses.len(), n_vars),
            activity: vec![0; n_vars],
            conflicts: 0,
            aux_from,
            clauses,
        }
    }

    fn check_budget(&mut self) -> Result<(), CompileError> {
        if self.builder.len() > self.budget.max_nodes {
            return Err(CompileError::NodeLimit);
        }
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks.is_multiple_of(256) {
            if let Some(d) = self.budget.deadline {
                if Instant::now() > d {
                    return Err(CompileError::Timeout);
                }
            }
        }
        Ok(())
    }

    fn lit_value(&self, l: Lit) -> i8 {
        match self.assign[l.var()] {
            UNASSIGNED => UNASSIGNED,
            v => i8::from(l.satisfied_by(v == 1)),
        }
    }

    /// `(satisfied?, unit literal if exactly one unassigned, count)`.
    fn examine(&self, cid: u32) -> (bool, Option<Lit>, usize) {
        let mut unassigned: Option<Lit> = None;
        let mut n_unassigned = 0;
        for &l in &self.clauses[cid as usize] {
            match self.lit_value(l) {
                1 => return (true, None, 0),
                0 => {}
                _ => {
                    n_unassigned += 1;
                    unassigned = Some(l);
                }
            }
        }
        (
            false,
            unassigned.filter(|_| n_unassigned == 1),
            n_unassigned,
        )
    }

    /// Unit propagation over the scoped clause set (occurrence-index
    /// driven, trail doubles as the queue — same scheme as the bottom-up
    /// compiler). Returns the id of a conflicting clause, if any, leaving
    /// the trail for the caller to unwind.
    fn propagate(
        &mut self,
        clause_ids: &[u32],
        trail: &mut Vec<usize>,
    ) -> Result<Option<u32>, CompileError> {
        let epoch = self.scratch.begin_phase();
        for &cid in clause_ids {
            self.scratch.clause_stamp[cid as usize] = epoch;
        }
        let assign_unit = |me: &mut Self, l: Lit, trail: &mut Vec<usize>| {
            me.assign[l.var()] = i8::from(l.is_positive());
            trail.push(l.var());
            me.stats.propagations += 1;
        };
        for &cid in clause_ids {
            self.check_budget()?;
            match self.examine(cid) {
                (false, _, 0) => return Ok(Some(cid)),
                (false, Some(l), _) => assign_unit(self, l, trail),
                _ => {}
            }
        }
        let mut queue = 0;
        while queue < trail.len() {
            let v = trail[queue];
            queue += 1;
            self.check_budget()?;
            for idx in 0..self.occurs[v].len() {
                let cid = self.occurs[v][idx];
                if self.scratch.clause_stamp[cid as usize] != epoch {
                    continue; // not in the current scope
                }
                match self.examine(cid) {
                    (false, _, 0) => return Ok(Some(cid)),
                    (false, Some(l), _) => assign_unit(self, l, trail),
                    _ => {}
                }
            }
        }
        Ok(None)
    }

    /// Conflict-driven activity bump: every variable of the conflicting
    /// clause gains activity; periodic halving ages out stale conflicts.
    fn bump_conflict(&mut self, cid: u32) {
        self.conflicts += 1;
        if self.conflicts.is_multiple_of(ACTIVITY_DECAY_PERIOD) {
            for a in &mut self.activity {
                *a >>= 1;
            }
        }
        for i in 0..self.clauses[cid as usize].len() {
            let v = self.clauses[cid as usize][i].var();
            self.activity[v] += 1;
        }
    }

    /// Compiles the conjunction of `clause_ids` under the current
    /// assignment (propagate → decompose → per-component compile).
    fn compile_clauses(&mut self, clause_ids: &[u32]) -> Result<NodeIdx, CompileError> {
        self.check_budget()?;

        let mut trail: Vec<usize> = Vec::new();
        let conflict = match self.propagate(clause_ids, &mut trail) {
            Ok(c) => c,
            Err(e) => {
                for v in trail {
                    self.assign[v] = UNASSIGNED;
                }
                return Err(e);
            }
        };
        if let Some(cid) = conflict {
            self.bump_conflict(cid);
            for v in trail {
                self.assign[v] = UNASSIGNED;
            }
            return Ok(self.builder.false_node());
        }

        // Residual (active) clauses with their unassigned literals.
        let mut active: Vec<(u32, Vec<Lit>)> = Vec::new();
        'outer: for &cid in clause_ids {
            let mut rest = Vec::new();
            for &l in &self.clauses[cid as usize] {
                match self.lit_value(l) {
                    1 => continue 'outer,
                    0 => {}
                    _ => rest.push(l),
                }
            }
            debug_assert!(rest.len() >= 2, "units handled by propagation");
            active.push((cid, rest));
        }

        let unit_nodes: Vec<NodeIdx> = trail
            .iter()
            .map(|&v| {
                let lit = if self.assign[v] == 1 {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                };
                self.builder.lit(lit)
            })
            .collect();

        let result = if active.is_empty() {
            self.builder.and(unit_nodes)
        } else {
            let comps = self.scratch.split_components(&active);
            let mut parts = unit_nodes;
            let mut failed = None;
            for comp in comps {
                match self.compile_component(&comp) {
                    Ok(n) => parts.push(n),
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
            if let Some(e) = failed {
                for v in trail {
                    self.assign[v] = UNASSIGNED;
                }
                return Err(e);
            }
            self.builder.and(parts)
        };

        for v in trail {
            self.assign[v] = UNASSIGNED;
        }
        Ok(result)
    }

    /// VSADS with conflict activity: per occurrence `1 + 8·2^{-|clause|}`
    /// (the static blend the bottom-up compiler's `Vsads` uses), plus the
    /// variable's conflict activity. Ties break toward the smaller id, so a
    /// given compilation is deterministic.
    ///
    /// Tseytin gate variables (`>= aux_from`) are branched in strict
    /// preference to inputs. A lineage CNF is the Tseytin encoding of an
    /// OR-of-conjuncts, so the root clause spans every conjunct's gate
    /// variable and keeps the whole formula one component until it is
    /// satisfied. Deciding a gate true satisfies that clause at once and
    /// the residual falls apart into per-conjunct components (which the
    /// canonical cache then collapses); deciding it false just shortens
    /// the clause. Branching on inputs instead strands half-decided
    /// conjuncts whose residual states multiply across the component —
    /// observed super-polynomial (~4^blocks) on disjoint-block lineages.
    /// Order-only: any branch variable is sound, so exactness is
    /// untouched.
    fn pick_branch_var(&mut self, comp: &[(u32, Vec<Lit>)]) -> usize {
        let epoch = self.scratch.begin_phase();
        self.scratch.vars_scratch.clear();
        for (_, lits) in comp {
            let w = 1.0 + 8.0 * (-(lits.len() as f64)).exp2();
            for l in lits {
                let v = l.var();
                if self.scratch.var_stamp[v] != epoch {
                    self.scratch.var_stamp[v] = epoch;
                    self.scratch.var_score[v] = self.activity[v] as f64;
                    self.scratch.vars_scratch.push(v as u32);
                }
                self.scratch.var_score[v] += w;
            }
        }
        let mut best: Option<usize> = None;
        let mut best_aux: Option<usize> = None;
        for &v in &self.scratch.vars_scratch {
            let v = v as usize;
            let slot = if v >= self.aux_from {
                &mut best_aux
            } else {
                &mut best
            };
            match *slot {
                None => *slot = Some(v),
                Some(b) => match self.scratch.var_score[v].total_cmp(&self.scratch.var_score[b]) {
                    std::cmp::Ordering::Greater => *slot = Some(v),
                    std::cmp::Ordering::Equal if v < b => *slot = Some(v),
                    _ => {}
                },
            }
        }
        best_aux.or(best).expect("components are never empty")
    }

    /// Compilation-local cache key: ascending residual clause ids, a
    /// separator, the component's sorted variables (same scheme as the
    /// bottom-up compiler — sound because a residual clause is its original
    /// literals restricted to the unassigned variables).
    fn local_key(&mut self, comp: &[(u32, Vec<Lit>)]) -> (u64, Box<[u32]>) {
        let mut key: Vec<u32> = Vec::with_capacity(comp.len() * 3);
        for (cid, _) in comp {
            key.push(*cid);
        }
        key.push(u32::MAX); // separator (no clause id is MAX)
        let epoch = self.scratch.begin_phase();
        let vstart = key.len();
        for (_, lits) in comp {
            for l in lits {
                let v = l.var();
                if self.scratch.var_stamp[v] != epoch {
                    self.scratch.var_stamp[v] = epoch;
                    key.push(v as u32);
                }
            }
        }
        key[vstart..].sort_unstable();
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for &x in &key {
            h = (h ^ x as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h, key.into_boxed_slice())
    }

    /// The canonical clause-id-independent encoding (module docs) plus the
    /// component's variables in first-occurrence order — the local-to-
    /// global variable map fragments are stored and instantiated through.
    fn canonical_encoding(&mut self, comp: &[(u32, Vec<Lit>)]) -> (Box<[u32]>, Vec<u32>) {
        let epoch = self.scratch.begin_phase();
        let mut vars: Vec<u32> = Vec::new();
        let mut enc: Vec<u32> = Vec::with_capacity(comp.len() * 4);
        for (_, lits) in comp {
            enc.push(lits.len() as u32);
            for l in lits {
                let v = l.var();
                if self.scratch.var_stamp[v] != epoch {
                    self.scratch.var_stamp[v] = epoch;
                    self.scratch.var_slot[v] = vars.len() as u32;
                    vars.push(v as u32);
                }
                enc.push(self.scratch.var_slot[v] << 1 | u32::from(l.is_positive()));
            }
        }
        (enc.into_boxed_slice(), vars)
    }

    /// Extracts the sub-DAG rooted at `root` as a portable fragment over
    /// the component's local numbering (`vars[i]` ↔ local `i`); `None` when
    /// it exceeds the per-entry size cap.
    fn extract_fragment(&mut self, root: NodeIdx, vars: &[u32]) -> Option<Fragment> {
        let epoch = self.scratch.begin_phase();
        for (i, &v) in vars.iter().enumerate() {
            self.scratch.var_stamp[v as usize] = epoch;
            self.scratch.var_slot[v as usize] = i as u32;
        }
        let mut map: HashMap<NodeIdx, u32> = HashMap::new();
        let mut out: Vec<PNode> = Vec::new();
        let mut stack: Vec<(NodeIdx, bool)> = vec![(root, false)];
        while let Some((n, expanded)) = stack.pop() {
            if map.contains_key(&n) {
                continue;
            }
            if expanded {
                let pn = match self.builder.node(n) {
                    DNode::True => PNode::True,
                    DNode::False => PNode::False,
                    DNode::Lit(l) => {
                        debug_assert_eq!(
                            self.scratch.var_stamp[l.var()],
                            epoch,
                            "fragment literal outside component scope"
                        );
                        PNode::Lit {
                            local: self.scratch.var_slot[l.var()],
                            positive: l.is_positive(),
                        }
                    }
                    DNode::And(cs) => PNode::And(cs.iter().map(|c| map[c]).collect()),
                    DNode::Or(cs, dec) => PNode::Or {
                        children: cs.iter().map(|c| map[c]).collect(),
                        decision: dec.map(|v| self.scratch.var_slot[v as usize]),
                    },
                };
                if out.len() >= MAX_FRAGMENT_NODES {
                    return None;
                }
                map.insert(n, out.len() as u32);
                out.push(pn);
            } else {
                stack.push((n, true));
                if let DNode::And(cs) | DNode::Or(cs, _) = self.builder.node(n) {
                    for &c in cs.iter() {
                        if !map.contains_key(&c) {
                            stack.push((c, false));
                        }
                    }
                }
            }
        }
        Some(Fragment {
            nodes: out.into_boxed_slice(),
        })
    }

    /// Replays a stored fragment into this compilation's builder, mapping
    /// local variables through `vars`. Nodes were normalized by the builder
    /// that first compiled them, so raw interning preserves every
    /// structural invariant; hash-consing dedups against nodes this
    /// compilation already built.
    fn instantiate_fragment(&mut self, frag: &Fragment, vars: &[u32]) -> NodeIdx {
        let mut ids: Vec<NodeIdx> = Vec::with_capacity(frag.nodes.len());
        for pn in frag.nodes.iter() {
            let id = match pn {
                PNode::True => self.builder.true_node(),
                PNode::False => self.builder.false_node(),
                PNode::Lit { local, positive } => {
                    let v = vars[*local as usize] as usize;
                    self.builder
                        .lit(if *positive { Lit::pos(v) } else { Lit::neg(v) })
                }
                PNode::And(cs) => {
                    let kids: Box<[NodeIdx]> = cs.iter().map(|&c| ids[c as usize]).collect();
                    self.builder.intern_node(DNode::And(kids))
                }
                PNode::Or { children, decision } => {
                    let kids: Box<[NodeIdx]> = children.iter().map(|&c| ids[c as usize]).collect();
                    let dec = decision.map(|d| vars[d as usize]);
                    self.builder.intern_node(DNode::Or(kids, dec))
                }
            };
            ids.push(id);
        }
        *ids.last().expect("fragments are never empty")
    }

    /// Compiles one connected component: local cache → shared canonical
    /// cache → VSADS branch; results land in both caches.
    fn compile_component(&mut self, comp: &[(u32, Vec<Lit>)]) -> Result<NodeIdx, CompileError> {
        let (hash, key) = self.local_key(comp);
        if let Some(bucket) = self.local.get(&hash) {
            if let Some(&(_, hit)) = bucket.iter().find(|(k, _)| **k == *key) {
                self.stats.cache_hits += 1;
                return Ok(hit);
            }
        }

        let canon = if self.shared.is_some() {
            Some(self.canonical_encoding(comp))
        } else {
            None
        };
        if let (Some((cache, context)), Some((enc, vars))) = (self.shared, &canon) {
            if let Some(frag) = cache.lookup(context, enc) {
                let node = self.instantiate_fragment(&frag, vars);
                self.check_budget()?;
                self.stats.shared_hits += 1;
                self.local.entry(hash).or_default().push((key, node));
                return Ok(node);
            }
        }

        let branch_var = self.pick_branch_var(comp);
        self.stats.decisions += 1;

        let clause_ids: Vec<u32> = comp.iter().map(|(cid, _)| *cid).collect();

        self.assign[branch_var] = 1;
        let hi_sub = self.compile_clauses(&clause_ids);
        self.assign[branch_var] = UNASSIGNED;
        let hi_sub = hi_sub?;

        self.assign[branch_var] = 0;
        let lo_sub = self.compile_clauses(&clause_ids);
        self.assign[branch_var] = UNASSIGNED;
        let lo_sub = lo_sub?;

        let pos = self.builder.lit(Lit::pos(branch_var));
        let neg = self.builder.lit(Lit::neg(branch_var));
        let hi = self.builder.and([pos, hi_sub]);
        let lo = self.builder.and([neg, lo_sub]);
        let node = self.builder.decision(branch_var, hi, lo);
        self.local.entry(hash).or_default().push((key, node));

        if let (Some((cache, context)), Some((enc, vars))) = (self.shared, canon) {
            if let Some(frag) = self.extract_fragment(node, &vars) {
                cache.insert(context, enc, Arc::new(frag));
            }
        }
        Ok(node)
    }
}

/// Compiles a CNF top-down into a d-DNNF over the same variable space,
/// without a shared cache (an owned per-compilation [`ComponentCache`]
/// still provides intra-compilation canonical sharing).
pub fn compile_topdown(cnf: &Cnf, budget: &Budget) -> Result<(Ddnnf, CompileStats), CompileError> {
    let owned = ComponentCache::new();
    compile_topdown_shared(cnf, budget, &owned, 0)
}

/// [`compile_topdown`] against a shared [`ComponentCache`]: fragments
/// compiled here become visible to every later compilation probing with
/// the same `context` digest, and vice versa.
pub fn compile_topdown_shared(
    cnf: &Cnf,
    budget: &Budget,
    cache: &ComponentCache,
    context: u64,
) -> Result<(Ddnnf, CompileStats), CompileError> {
    compile_topdown_with_aux(cnf, budget, cache, context, cnf.num_vars())
}

/// [`compile_topdown_shared`] that additionally treats CNF variables
/// `>= aux_from` as Tseytin gate variables, branched in preference to
/// inputs (see [`TopDownCompiler::pick_branch_var`] for why that keeps
/// lineage encodings polynomial). `aux_from == num_vars` disables the
/// preference.
fn compile_topdown_with_aux(
    cnf: &Cnf,
    budget: &Budget,
    cache: &ComponentCache,
    context: u64,
    aux_from: usize,
) -> Result<(Ddnnf, CompileStats), CompileError> {
    let mut c = TopDownCompiler::new(cnf, budget, Some((cache, context)), aux_from);
    // An empty clause makes the whole formula unsatisfiable.
    let root = if cnf.clauses().iter().any(|cl| cl.is_empty()) {
        c.builder.false_node()
    } else {
        let ids: Vec<u32> = (0..cnf.len() as u32).collect();
        c.compile_clauses(&ids)?
    };
    let mut stats = c.stats;
    stats.nodes = c.builder.len();
    Ok((c.builder.finish(root, cnf.num_vars()), stats))
}

/// Circuit → Tseytin CNF → top-down compile → project (Lemma 4.6) — the
/// wide-lineage counterpart of [`crate::compile_circuit`].
pub fn compile_circuit_topdown(
    circuit: &Circuit,
    root: NodeId,
    budget: &Budget,
    shared: Option<(&ComponentCache, u64)>,
) -> Result<CircuitCompilation, CompileError> {
    let t = tseytin(circuit, root);
    let owned;
    let (cache, context) = match shared {
        Some(pair) => pair,
        None => {
            owned = ComponentCache::new();
            (&owned, 0)
        }
    };
    let (full, stats) = compile_topdown_with_aux(&t.cnf, budget, cache, context, t.num_inputs())?;
    let unprojected_size = full.len();
    let ddnnf = project(&full, t.num_inputs());
    Ok(CircuitCompilation {
        ddnnf,
        fact_vars: t.input_vars.clone(),
        tseytin: t,
        unprojected_size,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, Budget};
    use proptest::prelude::*;

    fn check_compiled(cnf: &Cnf) -> CompileStats {
        let (d, stats) = compile_topdown(cnf, &Budget::unlimited()).unwrap();
        d.verify_decomposable().unwrap();
        d.verify_decisions().unwrap();
        d.check_determinism_sampled(50, 11).unwrap();
        assert_eq!(
            d.count_models().to_u64().unwrap(),
            cnf.count_models_bruteforce(),
            "model count mismatch for {cnf}"
        );
        stats
    }

    fn cnf_of(num_vars: usize, clauses: &[&[(usize, bool)]]) -> Cnf {
        let mut cnf = Cnf::new(num_vars);
        for c in clauses {
            cnf.push_lits(
                c.iter()
                    .map(|&(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) })
                    .collect(),
            );
        }
        cnf
    }

    #[test]
    fn matches_bruteforce_on_basics() {
        // Example 5.1, a component split, a unit chain, an UNSAT core.
        check_compiled(&cnf_of(4, &[&[(0, true), (1, true)]]));
        check_compiled(&cnf_of(
            4,
            &[&[(0, true), (1, true)], &[(2, true), (3, true)]],
        ));
        check_compiled(&cnf_of(
            3,
            &[
                &[(0, true)],
                &[(0, false), (1, true)],
                &[(1, false), (2, true)],
            ],
        ));
        check_compiled(&cnf_of(2, &[&[(0, true)], &[(0, false)]]));
    }

    #[test]
    fn empty_and_empty_clause_cnfs() {
        let (d, _) = compile_topdown(&Cnf::new(3), &Budget::unlimited()).unwrap();
        assert_eq!(d.count_models().to_u64(), Some(8));
        let mut cnf = Cnf::new(2);
        cnf.push_lits(vec![]);
        let (d, _) = compile_topdown(&cnf, &Budget::unlimited()).unwrap();
        assert_eq!(d.count_models().to_u64(), Some(0));
    }

    #[test]
    fn budget_limits_enforced() {
        let mut cnf = Cnf::new(12);
        for i in 0..6 {
            cnf.push_lits(vec![Lit::pos(2 * i), Lit::pos(2 * i + 1)]);
            cnf.push_lits(vec![Lit::neg(2 * i), Lit::pos((2 * i + 3) % 12)]);
        }
        let err = compile_topdown(&cnf, &Budget::with_max_nodes(3)).unwrap_err();
        assert_eq!(err, CompileError::NodeLimit);
    }

    /// OR of `k` disjoint 3-variable majority blocks (non-read-once inside
    /// each block), as a CNF: per block the three majority pairs, plus the
    /// blocks chained disjunctively through Tseytin-free direct encoding is
    /// awkward — instead encode each block's majority directly as clauses
    /// and conjoin blocks, which still exercises isomorphic components.
    fn majority_blocks(k: usize) -> Cnf {
        let mut cnf = Cnf::new(3 * k);
        for b in 0..k {
            let (x, y, z) = (3 * b, 3 * b + 1, 3 * b + 2);
            // majority(x,y,z): (x∨y) ∧ (x∨z) ∧ (y∨z)
            cnf.push_lits(vec![Lit::pos(x), Lit::pos(y)]);
            cnf.push_lits(vec![Lit::pos(x), Lit::pos(z)]);
            cnf.push_lits(vec![Lit::pos(y), Lit::pos(z)]);
        }
        cnf
    }

    #[test]
    fn isomorphic_components_hit_the_canonical_cache_within_one_compile() {
        // 5 identical majority blocks at different variable offsets: the
        // local clause-id cache can never hit across them, the canonical
        // cache must (first block compiles, the other four replay).
        let cache = ComponentCache::new();
        let (d, stats) =
            compile_topdown_shared(&majority_blocks(5), &Budget::unlimited(), &cache, 7).unwrap();
        assert_eq!(d.count_models().to_u64().unwrap(), 4u64.pow(5));
        assert!(
            stats.shared_hits >= 4,
            "isomorphic blocks must hit the canonical cache: {stats:?}"
        );
        let cs = cache.stats();
        assert!(cs.hits >= 4 && cs.misses >= 1 && cs.entries >= 1);
    }

    #[test]
    fn cache_persists_across_compilations_and_respects_contexts() {
        let cache = ComponentCache::new();
        let cnf = majority_blocks(3);
        let (d1, s1) = compile_topdown_shared(&cnf, &Budget::unlimited(), &cache, 1).unwrap();
        assert!(s1.decisions > 0);
        let hits_after_first = cache.stats().hits;
        // Same context: the whole structure replays from fragments.
        let (d2, s2) = compile_topdown_shared(&cnf, &Budget::unlimited(), &cache, 1).unwrap();
        assert!(cache.stats().hits > hits_after_first);
        assert_eq!(s2.decisions, 0, "warm same-context compile must replay");
        assert!(s2.shared_hits > 0);
        // Different context: context-1 fragments are invisible, so the
        // compile replays context 1's cold run exactly — same decisions,
        // same intra-compilation hits (blocks 2–3 reusing block 1's
        // fragment stored under context 2 itself), and fresh misses.
        let miss_before = cache.stats().misses;
        let (d3, s3) = compile_topdown_shared(&cnf, &Budget::unlimited(), &cache, 2).unwrap();
        assert!(
            cache.stats().misses > miss_before,
            "different context must not hit"
        );
        assert_eq!(
            s3.decisions, s1.decisions,
            "different context must redo the cold compile's work"
        );
        assert_eq!(s3.shared_hits, s1.shared_hits);
        for d in [&d1, &d2, &d3] {
            assert_eq!(d.count_models().to_u64().unwrap(), 4u64.pow(3));
            d.verify_decomposable().unwrap();
            d.verify_decisions().unwrap();
        }
    }

    #[test]
    fn unsat_components_become_shared_nogoods() {
        // (x∨y)(x∨¬y)(¬x∨y)(¬x∨¬y) is UNSAT; shifted copies refute from
        // the cache.
        let mut cnf = Cnf::new(4);
        for b in 0..2 {
            let (x, y) = (2 * b, 2 * b + 1);
            cnf.push_lits(vec![Lit::pos(x), Lit::pos(y)]);
            cnf.push_lits(vec![Lit::pos(x), Lit::neg(y)]);
            cnf.push_lits(vec![Lit::neg(x), Lit::pos(y)]);
            cnf.push_lits(vec![Lit::neg(x), Lit::neg(y)]);
        }
        let cache = ComponentCache::new();
        let (d, _) = compile_topdown_shared(&cnf, &Budget::unlimited(), &cache, 0).unwrap();
        assert_eq!(d.count_models().to_u64(), Some(0));
        assert!(
            cache.stats().nogoods >= 1,
            "UNSAT components must be stored as nogoods: {:?}",
            cache.stats()
        );
    }

    #[test]
    fn eviction_keeps_the_cache_under_capacity() {
        // A capacity small enough that distinct blocks must evict.
        let cache = ComponentCache::with_capacity_nodes(8);
        for seed in 0..6usize {
            // Distinct functions: majority blocks with one sign flipped by
            // the seed, so every compile stores fresh fragments.
            let mut cnf = Cnf::new(3);
            cnf.push_lits(vec![Lit::pos(0), Lit::pos(1)]);
            cnf.push_lits(vec![
                Lit::pos(0),
                if seed % 2 == 0 {
                    Lit::pos(2)
                } else {
                    Lit::neg(2)
                },
            ]);
            cnf.push_lits(vec![
                if seed % 3 == 0 {
                    Lit::pos(1)
                } else {
                    Lit::neg(1)
                },
                Lit::pos(2),
            ]);
            compile_topdown_shared(&cnf, &Budget::unlimited(), &cache, seed as u64).unwrap();
        }
        let s = cache.stats();
        assert!(s.stored_nodes <= 8, "capacity violated: {s:?}");
        assert!(s.evictions > 0, "expected evictions: {s:?}");
    }

    #[test]
    fn warm_cache_skips_search_entirely() {
        let cache = ComponentCache::new();
        let cnf = majority_blocks(8);
        compile_topdown_shared(&cnf, &Budget::unlimited(), &cache, 3).unwrap();
        let (_, warm) = compile_topdown_shared(&cnf, &Budget::unlimited(), &cache, 3).unwrap();
        assert_eq!(warm.decisions, 0, "warm compile must replay fragments");
        assert!(warm.shared_hits >= 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Top-down ≡ bottom-up model counts on random CNFs. Two 5-variable
        /// halves plus optional bridging clauses straddle the decomposition
        /// boundary: empty bridge → components split at the root; bridged →
        /// splits happen only under branches.
        #[test]
        fn prop_topdown_matches_bottom_up(
            left in proptest::collection::vec(
                proptest::collection::vec((0usize..5, any::<bool>()), 1..4), 0..6),
            right in proptest::collection::vec(
                proptest::collection::vec((5usize..10, any::<bool>()), 1..4), 0..6),
            bridge in proptest::collection::vec(
                proptest::collection::vec((0usize..10, any::<bool>()), 2..4), 0..3),
        ) {
            let mut cnf = Cnf::new(10);
            for c in left.iter().chain(&right).chain(&bridge) {
                cnf.push_lits(
                    c.iter().map(|&(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) }).collect(),
                );
            }
            let (td, _) = compile_topdown(&cnf, &Budget::unlimited()).unwrap();
            let (bu, _) = compile(&cnf, &Budget::unlimited()).unwrap();
            prop_assert_eq!(td.count_models(), bu.count_models());
            prop_assert_eq!(td.count_models().to_u64().unwrap(), cnf.count_models_bruteforce());
            prop_assert!(td.verify_decomposable().is_ok());
            prop_assert!(td.verify_decisions().is_ok());
            prop_assert!(td.check_determinism_sampled(20, 5).is_ok());
        }

        /// A shared cache warmed by one CNF never changes another CNF's
        /// compiled function (fragment reuse is semantically transparent).
        #[test]
        fn prop_shared_cache_is_semantically_transparent(
            a in proptest::collection::vec(
                proptest::collection::vec((0usize..8, any::<bool>()), 1..4), 0..8),
            b in proptest::collection::vec(
                proptest::collection::vec((0usize..8, any::<bool>()), 1..4), 0..8),
        ) {
            let mk = |cs: &Vec<Vec<(usize, bool)>>| {
                let mut cnf = Cnf::new(8);
                for c in cs {
                    cnf.push_lits(
                        c.iter().map(|&(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) }).collect(),
                    );
                }
                cnf
            };
            let (ca, cb) = (mk(&a), mk(&b));
            let cache = ComponentCache::new();
            let (da1, _) = compile_topdown_shared(&ca, &Budget::unlimited(), &cache, 0).unwrap();
            let (db, _) = compile_topdown_shared(&cb, &Budget::unlimited(), &cache, 0).unwrap();
            let (da2, _) = compile_topdown_shared(&ca, &Budget::unlimited(), &cache, 0).unwrap();
            prop_assert_eq!(db.count_models().to_u64().unwrap(), cb.count_models_bruteforce());
            prop_assert_eq!(da1.count_models(), da2.count_models());
            prop_assert_eq!(da1.count_models().to_u64().unwrap(), ca.count_models_bruteforce());
        }
    }
}
