//! Streaming ≡ materialized extraction on the seeded workloads, plus the
//! JOB-scale memory regression guard.
//!
//! [`LineageStream`] must reproduce `evaluate()`'s answers **bit-identically**
//! — same order, same canonical minimized DNFs, same fingerprints — on every
//! seeded database (TPC-H, IMDB, JOB), and bounded-channel consumption must
//! keep peak provenance memory governed by the chunk size rather than the
//! answer count.

use shapdb_circuit::fingerprint;
use shapdb_query::{evaluate, with_streamed_lineages, LineageStream, OutputTuple, Ucq};
use shapdb_workloads::{
    imdb_database, imdb_queries, job_database, job_ranking_query, tpch_database, tpch_queries,
    ImdbConfig, JobConfig, TpchConfig,
};

fn assert_bit_identical(q: &Ucq, db: &shapdb_data::Database, tag: &str) {
    let materialized = evaluate(q, db);
    let streamed: Vec<OutputTuple> = LineageStream::new(q, db).collect();
    assert_eq!(streamed.len(), materialized.outputs.len(), "{tag}: answers");
    for (s, m) in streamed.iter().zip(&materialized.outputs) {
        assert_eq!(s.tuple, m.tuple, "{tag}: answer order");
        assert_eq!(s.lineage, m.lineage, "{tag}: lineage of {:?}", s.tuple);
        let (se, me) = (s.endo_lineage(db), m.endo_lineage(db));
        assert_eq!(se, me, "{tag}: endo lineage of {:?}", s.tuple);
        if !se.is_empty() {
            assert_eq!(
                fingerprint(&se).shared_key(),
                fingerprint(&me).shared_key(),
                "{tag}: fingerprint of {:?}",
                s.tuple
            );
        }
    }
}

#[test]
fn tpch_streams_bit_identically() {
    let db = tpch_database(&TpchConfig {
        scale: 0.5,
        ..Default::default()
    });
    for q in tpch_queries() {
        assert_bit_identical(&q.ucq, &db, &q.name);
    }
}

#[test]
fn imdb_streams_bit_identically() {
    let db = imdb_database(&ImdbConfig {
        movies: 250,
        ..Default::default()
    });
    for q in imdb_queries() {
        assert_bit_identical(&q.ucq, &db, &q.name);
    }
}

#[test]
fn job_streams_bit_identically() {
    let db = job_database(&JobConfig::smoke());
    assert_bit_identical(&job_ranking_query(), &db, "job");
}

#[test]
fn job_streaming_peak_is_chunk_bounded() {
    // The memory regression guard: streaming the JOB corpus through a small
    // bounded channel must never hold more than (chunk + 1) answers' worth
    // of literals at once, a small fraction of what materializing holds.
    let cfg = JobConfig::smoke();
    let db = job_database(&cfg);
    let q = job_ranking_query();
    let chunk = 16;
    let (n, stats) = with_streamed_lineages(&q, &db, chunk, |it| it.count());
    assert_eq!(n, cfg.movies);
    assert_eq!(stats.answers, cfg.movies);
    assert!(
        stats.peak_in_flight_literals <= (chunk + 1) * stats.max_answer_literals,
        "peak {} exceeds chunk bound ({} × {})",
        stats.peak_in_flight_literals,
        chunk + 1,
        stats.max_answer_literals
    );
    assert!(
        stats.peak_in_flight_literals * 4 < stats.total_literals,
        "peak {} is not well below the materialized total {}",
        stats.peak_in_flight_literals,
        stats.total_literals
    );
}
