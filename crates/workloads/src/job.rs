//! JOB-scale ranking workload: one answer per movie, thousands of answers.
//!
//! The existing [`crate::imdb`] workload replays the paper's *per-query*
//! lineage spectrum at a few hundred answers. This module is the scaling
//! counterpart (ROADMAP direction 2): a seeded generator over a JOB-style
//! schema that produces **one output answer per movie** — tens of thousands
//! of answers over ~10⁵–10⁶ base tuples — with wide, non-read-once,
//! *partially* isomorphic lineages. It is the corpus for the streaming
//! extraction path and the bound-driven top-k ranking loop.
//!
//! ## The query
//!
//! [`job_ranking_query`] is a two-disjunct UCQ with head `q(m)`:
//!
//! ```text
//! q(m) :- title(m,kd), cast_info(m,p), name(p,tr)
//! q(m) :- title(m,kd), movie_companies(m,c), company_name(c,cc),
//!         movie_keyword(m,k), keyword(k,kc), company_keyword(c,k)
//! ```
//!
//! `title` and the dictionary tables (`company_name`, `keyword`) are
//! exogenous; the link tables (`cast_info`, `name`, `movie_companies`,
//! `movie_keyword`, `company_keyword`) are endogenous. Per movie this yields
//! * one width-2 conjunct `{cast, name}` per cast member (a star), and
//! * one width-3 conjunct `{mc, mk, ck}` per edge of the movie's *induced
//!   company–keyword pattern*: the subgraph of the global `company_keyword`
//!   bipartite table spanned by the movie's companies and keywords.
//!
//! Because a `movie_companies` fact recurs in every conjunct of its
//! company's induced edges (and `movie_keyword` likewise per keyword),
//! these lineages do **not** factor read-once — they exercise the knowledge
//! compiler, not the cheap engines.
//!
//! ## Shape control
//!
//! Three generator rules keep the corpus honest for bound-driven top-k:
//!
//! * **Global `company_keyword` table first.** Edges are drawn Zipf×Zipf
//!   once, up front, and never mutated, so induced patterns are correlated
//!   across movies (popular company–keyword pairs recur) yet structurally
//!   diverse in the tail.
//! * **Pattern acceptance.** A movie's company/keyword picks are resampled
//!   (up to [`JobConfig::pattern_tries`] times) until the induced pattern
//!   has ≥ 3 edges, no vertex incident to *all* edges, and max vertex
//!   degree ≤ 6 — otherwise the movie falls back to a cast-only star. The
//!   degree cap bounds how often any single fact recurs across conjuncts,
//!   which keeps every such answer's Shapley upper bound strictly below ½.
//! * **A small solo slice.** The first `movies·solo_per_mille/1000` movies
//!   get exactly one cast edge to a dedicated person and no pattern: their
//!   lineage is a single width-2 conjunct, every fact scores exactly ½, and
//!   all of them share one structure. They are the provable top of the
//!   ranking — one solved structure pins the k-th threshold at ½ and lets
//!   the admission loop prune everything else.

use crate::Zipf;
use rand::prelude::*;
use shapdb_data::{Database, Value};
use shapdb_query::{CqBuilder, Ucq};
use std::collections::HashSet;

/// Maximum vertex degree accepted in a movie's induced company–keyword
/// pattern (see the module docs: bounds per-fact conjunct recurrence).
const MAX_PATTERN_DEGREE: usize = 6;

const KINDS: [&str; 3] = ["movie", "tv movie", "short"];
const TIERS: [&str; 3] = ["lead", "support", "minor"];
const COUNTRIES: [&str; 8] = [
    "[us]", "[de]", "[fr]", "[gb]", "[it]", "[jp]", "[in]", "[ca]",
];

/// Generator knobs. [`Default`] is bench scale (~12k answers, ~2·10⁵ base
/// tuples); [`JobConfig::smoke`] is CI/test scale.
#[derive(Clone, Copy, Debug)]
pub struct JobConfig {
    /// Number of movies — and, since the query head is `q(m)`, the number
    /// of output answers.
    pub movies: usize,
    /// Company catalog size.
    pub companies: usize,
    /// Keyword catalog size.
    pub keywords: usize,
    /// Shared person pool size (solo movies get dedicated extra persons).
    pub people: usize,
    /// Distinct edges drawn for the global `company_keyword` table.
    pub ck_edges: usize,
    /// Maximum cast size of a non-solo movie (minimum is 2).
    pub max_cast: usize,
    /// Per-mille of movies in the solo slice (single-conjunct lineage,
    /// score exactly ½ — the provable top of the ranking).
    pub solo_per_mille: usize,
    /// Resample attempts before a movie falls back to a cast-only star.
    pub pattern_tries: usize,
    /// RNG seed; generation is deterministic per seed.
    pub seed: u64,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            movies: 12_000,
            companies: 2_000,
            keywords: 1_500,
            people: 40_000,
            ck_edges: 30_000,
            max_cast: 8,
            solo_per_mille: 10,
            pattern_tries: 40,
            seed: 0x10B,
        }
    }
}

impl JobConfig {
    /// Small instance for tests and CI smoke runs (~300 answers).
    pub fn smoke() -> JobConfig {
        JobConfig {
            movies: 300,
            companies: 120,
            keywords: 90,
            people: 1_200,
            ck_edges: 1_200,
            max_cast: 6,
            solo_per_mille: 20,
            pattern_tries: 40,
            seed: 0x10B,
        }
    }

    /// Number of movies in the solo slice (movie ids `0..solo_movies()`).
    pub fn solo_movies(&self) -> usize {
        self.movies * self.solo_per_mille / 1000
    }
}

/// The two-disjunct ranking UCQ `q(m)` described in the module docs.
pub fn job_ranking_query() -> Ucq {
    // Disjunct 1: the cast star.
    let mut b = CqBuilder::new();
    let m = b.var("m");
    let kd = b.var("kd");
    let p = b.var("p");
    let tr = b.var("tr");
    b.atom("title", [m.into(), kd.into()]);
    b.atom("cast_info", [m.into(), p.into()]);
    b.atom("name", [p.into(), tr.into()]);
    let q1 = b.head([m.into()]).build();

    // Disjunct 2: the induced company–keyword pattern.
    let mut b = CqBuilder::new();
    let m = b.var("m");
    let kd = b.var("kd");
    let c = b.var("c");
    let cc = b.var("cc");
    let k = b.var("k");
    let kc = b.var("kc");
    b.atom("title", [m.into(), kd.into()]);
    b.atom("movie_companies", [m.into(), c.into()]);
    b.atom("company_name", [c.into(), cc.into()]);
    b.atom("movie_keyword", [m.into(), k.into()]);
    b.atom("keyword", [k.into(), kc.into()]);
    b.atom("company_keyword", [c.into(), k.into()]);
    let q2 = b.head([m.into()]).build();

    Ucq::new(vec![q1, q2])
}

/// Samples up to `n` *distinct* ids from `zipf` (bails after a bounded
/// number of collisions so skewed tiny domains cannot spin).
fn sample_distinct(zipf: &Zipf, rng: &mut StdRng, n: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(n);
    let mut guard = 0;
    while out.len() < n && guard < 16 * n {
        let x = zipf.sample(rng);
        if !out.contains(&x) {
            out.push(x);
        }
        guard += 1;
    }
    out
}

/// Acceptance predicate for an induced pattern: ≥ 3 edges, no vertex on
/// *every* edge, and max degree ≤ [`MAX_PATTERN_DEGREE`].
fn pattern_ok(edges: &[(usize, usize)]) -> bool {
    let e = edges.len();
    if e < 3 {
        return false;
    }
    let mut ok = true;
    let mut check_side = |side: fn(&(usize, usize)) -> usize| {
        let mut seen: Vec<(usize, usize)> = Vec::new();
        for edge in edges {
            let v = side(edge);
            match seen.iter_mut().find(|(u, _)| *u == v) {
                Some((_, d)) => *d += 1,
                None => seen.push((v, 1)),
            }
        }
        if seen.iter().any(|&(_, d)| d > MAX_PATTERN_DEGREE || d == e) {
            ok = false;
        }
    };
    check_side(|&(c, _)| c);
    check_side(|&(_, k)| k);
    ok
}

/// Generates the JOB-scale database.
///
/// Schema (endogenous marked *):
/// ```text
/// title(id, kind)          cast_info*(movie, person)    name*(person, tier)
/// company_name(id, cc)     movie_companies*(movie, company)
/// keyword(id, tag)         movie_keyword*(movie, keyword)
///                          company_keyword*(company, keyword)
/// ```
pub fn job_database(cfg: &JobConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new();
    db.create_relation("title", &["id", "kind"]);
    db.create_relation("name", &["id", "tier"]);
    db.create_relation("cast_info", &["movie_id", "person_id"]);
    db.create_relation("movie_companies", &["movie_id", "company_id"]);
    db.create_relation("company_name", &["id", "country"]);
    db.create_relation("movie_keyword", &["movie_id", "keyword_id"]);
    db.create_relation("keyword", &["id", "tag"]);
    db.create_relation("company_keyword", &["company_id", "keyword_id"]);

    let solo = cfg.solo_movies();

    // Dictionaries (exogenous).
    for c in 0..cfg.companies {
        db.insert_exo(
            "company_name",
            vec![Value::int(c as i64), Value::str(COUNTRIES[c % 8])],
        );
    }
    for k in 0..cfg.keywords {
        db.insert_exo(
            "keyword",
            vec![
                Value::int(k as i64),
                Value::Str(format!("t{}", k % 11).as_str().into()),
            ],
        );
    }
    // Person pool + one dedicated person per solo movie (ids past the pool,
    // so the shared Zipf pick can never alias them).
    for p in 0..cfg.people + solo {
        db.insert_endo("name", vec![Value::int(p as i64), Value::str(TIERS[p % 3])]);
    }

    // The global company–keyword table, drawn Zipf×Zipf *before* the movie
    // loop and never mutated: induced patterns are deterministic functions
    // of a movie's picks.
    let comp_zipf = Zipf::new(cfg.companies);
    let kw_zipf = Zipf::new(cfg.keywords);
    let mut ck_set: HashSet<(usize, usize)> = HashSet::new();
    let mut attempts = 0;
    while ck_set.len() < cfg.ck_edges && attempts < cfg.ck_edges * 8 {
        attempts += 1;
        let c = comp_zipf.sample(&mut rng);
        let k = kw_zipf.sample(&mut rng);
        if ck_set.insert((c, k)) {
            db.insert_endo(
                "company_keyword",
                vec![Value::int(c as i64), Value::int(k as i64)],
            );
        }
    }

    let people_zipf = Zipf::new(cfg.people);
    let cast_extra = Zipf::new(cfg.max_cast.saturating_sub(1).max(1));
    for m in 0..cfg.movies {
        db.insert_exo(
            "title",
            vec![Value::int(m as i64), Value::str(KINDS[m % 3])],
        );
        if m < solo {
            // Solo slice: one cast edge to a dedicated person, no pattern.
            db.insert_endo(
                "cast_info",
                vec![Value::int(m as i64), Value::int((cfg.people + m) as i64)],
            );
            continue;
        }
        // Cast star: 2..=max_cast distinct persons, Zipf-skewed size and picks.
        let j = 2 + cast_extra.sample(&mut rng);
        for p in sample_distinct(&people_zipf, &mut rng, j) {
            db.insert_endo(
                "cast_info",
                vec![Value::int(m as i64), Value::int(p as i64)],
            );
        }
        // Company–keyword pattern: resample picks until the induced
        // subgraph passes acceptance, else fall back to the star alone.
        let mut accepted: Option<(Vec<usize>, Vec<usize>)> = None;
        for _ in 0..cfg.pattern_tries {
            let nc = rng.random_range(2..=3usize);
            let nk = rng.random_range(2..=4usize);
            let cs = sample_distinct(&comp_zipf, &mut rng, nc);
            let ks = sample_distinct(&kw_zipf, &mut rng, nk);
            let mut edges = Vec::new();
            for &c in &cs {
                for &k in &ks {
                    if ck_set.contains(&(c, k)) {
                        edges.push((c, k));
                    }
                }
            }
            if pattern_ok(&edges) {
                accepted = Some((cs, ks));
                break;
            }
        }
        if let Some((cs, ks)) = accepted {
            for c in cs {
                db.insert_endo(
                    "movie_companies",
                    vec![Value::int(m as i64), Value::int(c as i64)],
                );
            }
            for k in ks {
                db.insert_endo(
                    "movie_keyword",
                    vec![Value::int(m as i64), Value::int(k as i64)],
                );
            }
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapdb_circuit::fingerprint;
    use shapdb_query::evaluate;
    use std::collections::HashMap;

    #[test]
    fn generator_is_deterministic() {
        let cfg = JobConfig::smoke();
        let a = job_database(&cfg);
        let b = job_database(&cfg);
        assert_eq!(a.num_facts(), b.num_facts());
        let ra = evaluate(&job_ranking_query(), &a);
        let rb = evaluate(&job_ranking_query(), &b);
        assert_eq!(ra.outputs.len(), rb.outputs.len());
        for (x, y) in ra.outputs.iter().zip(rb.outputs.iter()) {
            assert_eq!(x.tuple, y.tuple);
            assert_eq!(x.endo_lineage(&a), y.endo_lineage(&b));
        }
    }

    #[test]
    fn one_answer_per_movie() {
        let cfg = JobConfig::smoke();
        let db = job_database(&cfg);
        let res = evaluate(&job_ranking_query(), &db);
        assert_eq!(res.outputs.len(), cfg.movies);
        for out in &res.outputs {
            assert!(!out.endo_lineage(&db).is_empty());
        }
    }

    #[test]
    fn solo_slice_is_one_shared_width_2_structure() {
        let cfg = JobConfig::smoke();
        let solo = cfg.solo_movies();
        assert!(solo >= 3, "smoke scale must keep a few solo movies");
        let db = job_database(&cfg);
        let res = evaluate(&job_ranking_query(), &db);
        let mut solo_keys = HashSet::new();
        for out in &res.outputs {
            let m = match out.tuple[0] {
                Value::Int(m) => m as usize,
                _ => panic!("movie id head"),
            };
            let mut lin = out.endo_lineage(&db);
            lin.minimize();
            if m < solo {
                assert_eq!(lin.len(), 1, "solo movie {m} lineage: {lin}");
                assert_eq!(lin.conjuncts()[0].len(), 2);
                solo_keys.insert(fingerprint(&lin).shared_key());
            } else {
                assert!(lin.len() >= 2, "non-solo movie {m} lineage: {lin}");
            }
        }
        assert_eq!(solo_keys.len(), 1, "solo movies must share one structure");
    }

    #[test]
    fn patterns_engage_and_structures_are_diverse() {
        let cfg = JobConfig::smoke();
        let db = job_database(&cfg);
        let res = evaluate(&job_ranking_query(), &db);
        let mut groups: HashMap<_, usize> = HashMap::new();
        let mut with_pattern = 0;
        for out in &res.outputs {
            let mut lin = out.endo_lineage(&db);
            lin.minimize();
            if lin.conjuncts().iter().any(|c| c.len() == 3) {
                with_pattern += 1;
            }
            *groups.entry(fingerprint(&lin).shared_key()).or_insert(0) += 1;
        }
        // Most movies must carry an induced company–keyword pattern
        // (width-3 conjuncts), and the corpus must be only *partially*
        // isomorphic: many distinct structures, but real sharing too.
        assert!(
            with_pattern * 2 > cfg.movies,
            "only {with_pattern}/{} movies carry a pattern",
            cfg.movies
        );
        assert!(groups.len() >= 20, "structure diversity: {}", groups.len());
        assert!(
            groups.len() < cfg.movies,
            "no structure sharing at all ({} groups)",
            groups.len()
        );
    }

    #[test]
    fn pattern_degree_and_domination_bounds_hold() {
        // Per-fact conjunct recurrence in minimized lineages must respect
        // the generator's acceptance criteria: no endogenous fact appears
        // in more than MAX_PATTERN_DEGREE conjuncts, and no fact appears
        // in every conjunct of a multi-conjunct lineage.
        let cfg = JobConfig::smoke();
        let db = job_database(&cfg);
        let res = evaluate(&job_ranking_query(), &db);
        for out in &res.outputs {
            let mut lin = out.endo_lineage(&db);
            lin.minimize();
            let n = lin.len();
            let mut occ: HashMap<u32, usize> = HashMap::new();
            for c in lin.conjuncts() {
                for v in c {
                    *occ.entry(v.0).or_insert(0) += 1;
                }
            }
            for (&v, &d) in &occ {
                assert!(d <= MAX_PATTERN_DEGREE, "fact {v} in {d} conjuncts");
                assert!(n == 1 || d < n, "fact {v} dominates a {n}-conjunct lineage");
            }
        }
    }

    #[test]
    fn bench_scale_config_hits_issue_floors() {
        // Don't *generate* the full bench corpus here (that's the bench's
        // job); just pin the knobs that the acceptance criteria rely on.
        let cfg = JobConfig::default();
        assert!(cfg.movies >= 10_000, "need ≥ 10⁴ answers");
        assert!(cfg.solo_movies() >= 100, "solo slice must cover k=100");
        let smoke = JobConfig::smoke();
        assert!(smoke.movies <= 500, "smoke scale must stay CI-cheap");
    }
}
