//! The running example (Figure 1) as a packaged workload.

use crate::WorkloadQuery;
use shapdb_data::{flights_example, Database, FactId};
use shapdb_query::ast::flights_query;

/// The flights database, the `a1..a8` fact ids, and the UCQ `q = q1 ∨ q2`.
pub fn flights_workload() -> (Database, Vec<FactId>, WorkloadQuery) {
    let (db, a_ids) = flights_example();
    (db, a_ids, WorkloadQuery::new("flights", flights_query()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapdb_query::evaluate;

    #[test]
    fn workload_is_runnable() {
        let (db, a_ids, q) = flights_workload();
        assert_eq!(a_ids.len(), 8);
        let res = evaluate(&q.ucq, &db);
        assert!(res.boolean_answer());
        assert_eq!(res.outputs[0].lineage.len(), 6);
    }
}
