//! IMDB/JOB-lite: schema, Zipf-skewed seeded generator, and nine queries.
//!
//! The paper's IMDB workload uses the Join Order Benchmark join queries with
//! an added final projection over a join attribute, which makes provenance
//! wide (up to hundreds of facts per output tuple). The real IMDB dump is
//! proprietary, so this module generates a synthetic instance over the JOB
//! schema subset our queries touch, with **Zipf-skewed** foreign keys: a few
//! popular companies/keywords/people accumulate many movies, reproducing the
//! paper's lineage-size spectrum (1–400 facts) and its hard cases (queries
//! projecting on low-cardinality attributes such as gender or country).
//!
//! Fact tables (`title`, `movie_companies`, `movie_info`, `movie_info_idx`,
//! `movie_keyword`, `cast_info`) are endogenous; dictionary tables are
//! exogenous.

use crate::{WorkloadQuery, Zipf};
use rand::prelude::*;
use shapdb_data::{Database, Value};
use shapdb_query::{CmpOp, CqBuilder, Term, Ucq};

/// Generator knobs.
#[derive(Clone, Copy, Debug)]
pub struct ImdbConfig {
    pub movies: usize,
    pub companies: usize,
    pub people: usize,
    pub keywords: usize,
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        ImdbConfig {
            movies: 1500,
            companies: 120,
            people: 800,
            keywords: 100,
            seed: 0x1DB,
        }
    }
}

const COUNTRIES: [&str; 8] = [
    "[us]", "[de]", "[fr]", "[gb]", "[it]", "[jp]", "[in]", "[ca]",
];
const KINDS: [&str; 4] = ["movie", "tv movie", "video movie", "episode"];
const GENRES: [&str; 6] = ["Drama", "Comedy", "Action", "Horror", "Thriller", "Romance"];
const ROLES: [&str; 4] = ["actor", "actress", "director", "producer"];
const INFO_TYPES: [&str; 5] = [
    "top 250 rank",
    "bottom 10 rank",
    "rating",
    "genres",
    "budget",
];
const KEYWORD_NAMES: [&str; 10] = [
    "love",
    "murder",
    "money",
    "friendship",
    "revenge",
    "war",
    "family",
    "betrayal",
    "justice",
    "dream",
];

/// Generates the IMDB-lite database.
///
/// Schema (endogenous marked *):
/// ```text
/// kind_type(id, kind)                           title*(id, kind_id, year)
/// company_name(id, country)                     movie_companies*(movie, company, ctype)
/// company_type(id, kind)                        movie_info*(movie, itype, info)
/// info_type(id, info)                           movie_info_idx*(movie, itype, val)
/// keyword(id, kw)                               movie_keyword*(movie, keyword)
/// name(id, gender)      role_type(id, role)     cast_info*(person, movie, role)
/// ```
pub fn imdb_database(cfg: &ImdbConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new();
    db.create_relation("kind_type", &["id", "kind"]);
    db.create_relation("title", &["id", "kind_id", "year"]);
    db.create_relation("company_name", &["id", "country"]);
    db.create_relation("company_type", &["id", "kind"]);
    db.create_relation(
        "movie_companies",
        &["movie_id", "company_id", "company_type_id"],
    );
    db.create_relation("info_type", &["id", "info"]);
    db.create_relation("movie_info", &["movie_id", "info_type_id", "info"]);
    db.create_relation("movie_info_idx", &["movie_id", "info_type_id", "val"]);
    db.create_relation("keyword", &["id", "kw"]);
    db.create_relation("movie_keyword", &["movie_id", "keyword_id"]);
    db.create_relation("name", &["id", "gender"]);
    db.create_relation("role_type", &["id", "role"]);
    db.create_relation("cast_info", &["person_id", "movie_id", "role_id"]);

    for (i, k) in KINDS.iter().enumerate() {
        db.insert_exo("kind_type", vec![Value::int(i as i64), Value::str(k)]);
    }
    for (i, it) in INFO_TYPES.iter().enumerate() {
        db.insert_exo("info_type", vec![Value::int(i as i64), Value::str(it)]);
    }
    db.insert_exo(
        "company_type",
        vec![Value::int(0), Value::str("production companies")],
    );
    db.insert_exo(
        "company_type",
        vec![Value::int(1), Value::str("distributors")],
    );
    for (i, r) in ROLES.iter().enumerate() {
        db.insert_exo("role_type", vec![Value::int(i as i64), Value::str(r)]);
    }
    let country_zipf = Zipf::new(COUNTRIES.len());
    for i in 0..cfg.companies {
        let c = COUNTRIES[country_zipf.sample(&mut rng)];
        db.insert_exo("company_name", vec![Value::int(i as i64), Value::str(c)]);
    }
    for i in 0..cfg.keywords {
        // First ten keywords get real names (query constants target those),
        // the rest synthetic.
        let kw = match KEYWORD_NAMES.get(i) {
            Some(name) => name.to_string(),
            None => format!("kw{i}"),
        };
        db.insert_exo(
            "keyword",
            vec![Value::int(i as i64), Value::Str(kw.as_str().into())],
        );
    }
    for i in 0..cfg.people {
        let g = if rng.random_bool(0.55) { "m" } else { "f" };
        db.insert_exo("name", vec![Value::int(i as i64), Value::str(g)]);
    }

    let company_pick = Zipf::new(cfg.companies);
    let keyword_pick = Zipf::new(cfg.keywords);
    let people_pick = Zipf::new(cfg.people);
    for m in 0..cfg.movies {
        let year = rng.random_range(1950..=2020);
        db.insert_endo(
            "title",
            vec![
                Value::int(m as i64),
                Value::int(rng.random_range(0..KINDS.len()) as i64),
                Value::int(year),
            ],
        );
        // 1–2 production/distribution links.
        for _ in 0..rng.random_range(1..=2usize) {
            db.insert_endo(
                "movie_companies",
                vec![
                    Value::int(m as i64),
                    Value::int(company_pick.sample(&mut rng) as i64),
                    Value::int(rng.random_range(0..2)),
                ],
            );
        }
        // A genre row and (sometimes) a budget row.
        db.insert_endo(
            "movie_info",
            vec![
                Value::int(m as i64),
                Value::int(3), // 'genres'
                Value::str(GENRES[rng.random_range(0..GENRES.len())]),
            ],
        );
        if rng.random_bool(0.5) {
            db.insert_endo(
                "movie_info",
                vec![
                    Value::int(m as i64),
                    Value::int(4),                                         // 'budget'
                    Value::str(GENRES[rng.random_range(0..GENRES.len())]), // opaque payload
                ],
            );
        }
        // Ratings for most movies; top-250 rank for a small subset.
        if rng.random_bool(0.8) {
            db.insert_endo(
                "movie_info_idx",
                vec![
                    Value::int(m as i64),
                    Value::int(2),
                    Value::int(rng.random_range(1..=10)),
                ],
            );
        }
        if rng.random_bool(0.12) {
            db.insert_endo(
                "movie_info_idx",
                vec![
                    Value::int(m as i64),
                    Value::int(0),
                    Value::int(rng.random_range(1..=250)),
                ],
            );
        }
        // Keywords (skewed) and cast.
        for _ in 0..rng.random_range(0..=3usize) {
            db.insert_endo(
                "movie_keyword",
                vec![
                    Value::int(m as i64),
                    Value::int(keyword_pick.sample(&mut rng) as i64),
                ],
            );
        }
        for _ in 0..rng.random_range(1..=4usize) {
            db.insert_endo(
                "cast_info",
                vec![
                    Value::int(people_pick.sample(&mut rng) as i64),
                    Value::int(m as i64),
                    Value::int(rng.random_range(0..ROLES.len()) as i64),
                ],
            );
        }
    }
    db
}

/// The fifteen JOB-flavored queries (Table 1 analogs plus six more shapes:
/// 2a, 3b, 4a, 5c, 9d and the self-join 10a).
pub fn imdb_queries() -> Vec<WorkloadQuery> {
    vec![
        WorkloadQuery::new("1a", q1a()),
        WorkloadQuery::new("2a", q2a()),
        WorkloadQuery::new("3b", q3b()),
        WorkloadQuery::new("4a", q4a()),
        WorkloadQuery::new("5c", q5c()),
        WorkloadQuery::new("6b", q6b()),
        WorkloadQuery::new("7c", q7c()),
        WorkloadQuery::new("8d", q8d()),
        WorkloadQuery::new("9d", q9d()),
        WorkloadQuery::new("10a", q10a()),
        WorkloadQuery::new("11a", q11a()),
        WorkloadQuery::new("11d", q11d()),
        WorkloadQuery::new("13c", q13c()),
        WorkloadQuery::new("15d", q15d()),
        WorkloadQuery::new("16a", q16a()),
    ]
}

/// 2a (4 joins): German-produced "war" movies, per movie — narrow lineages.
fn q2a() -> Ucq {
    let mut b = CqBuilder::new();
    let t = b.var("t");
    let kw = b.var("kw");
    let c = b.var("c");
    let ct = b.var("ct");
    let k = b.var("k");
    let y = b.var("y");
    b.atom("movie_keyword", [t.into(), kw.into()]);
    b.atom("keyword", [kw.into(), "war".into()]);
    b.atom("movie_companies", [t.into(), c.into(), ct.into()]);
    b.atom("company_name", [c.into(), "[de]".into()]);
    b.atom("title", [t.into(), k.into(), y.into()]);
    b.head([t.into()]).build().into()
}

/// 3b (3 joins): recent horror movies tagged "murder", per movie.
fn q3b() -> Ucq {
    let mut b = CqBuilder::new();
    let t = b.var("t");
    let it = b.var("it");
    let kw = b.var("kw");
    let k = b.var("k");
    let y = b.var("y");
    b.atom("movie_info", [t.into(), it.into(), "Horror".into()]);
    b.atom("info_type", [it.into(), "genres".into()]);
    b.atom("movie_keyword", [t.into(), kw.into()]);
    b.atom("keyword", [kw.into(), "murder".into()]);
    b.atom("title", [t.into(), k.into(), y.into()]);
    b.filter(y.into(), CmpOp::Gt, Term::int(2005));
    b.head([t.into()]).build().into()
}

/// 4a (4 joins): ratings of "revenge" movies, per rating value — the final
/// projection groups many movies per value, widening the lineages.
fn q4a() -> Ucq {
    let mut b = CqBuilder::new();
    let t = b.var("t");
    let it = b.var("it");
    let v = b.var("v");
    let kw = b.var("kw");
    let k = b.var("k");
    let y = b.var("y");
    b.atom("movie_info_idx", [t.into(), it.into(), v.into()]);
    b.atom("info_type", [it.into(), "rating".into()]);
    b.atom("movie_keyword", [t.into(), kw.into()]);
    b.atom("keyword", [kw.into(), "revenge".into()]);
    b.atom("title", [t.into(), k.into(), y.into()]);
    b.filter(v.into(), CmpOp::Gt, Term::int(5));
    b.head([v.into()]).build().into()
}

/// 5c (4 joins): genres distributed by US companies since 1975, per genre —
/// only six possible outputs, so lineages are very wide (hard cases).
fn q5c() -> Ucq {
    let mut b = CqBuilder::new();
    let t = b.var("t");
    let it = b.var("it");
    let inf = b.var("inf");
    let c = b.var("c");
    let ct = b.var("ct");
    let k = b.var("k");
    let y = b.var("y");
    b.atom("movie_info", [t.into(), it.into(), inf.into()]);
    b.atom("info_type", [it.into(), "genres".into()]);
    b.atom("movie_companies", [t.into(), c.into(), ct.into()]);
    b.atom("company_type", [ct.into(), "distributors".into()]);
    b.atom("company_name", [c.into(), "[us]".into()]);
    b.atom("title", [t.into(), k.into(), y.into()]);
    b.filter(y.into(), CmpOp::Gt, Term::int(1975));
    b.head([inf.into()]).build().into()
}

/// 9d (5 joins): actresses of US-company movies, per person.
fn q9d() -> Ucq {
    let mut b = CqBuilder::new();
    let p = b.var("p");
    let t = b.var("t");
    let r = b.var("r");
    let g = b.var("g");
    let c = b.var("c");
    let ct = b.var("ct");
    let k = b.var("k");
    let y = b.var("y");
    b.atom("cast_info", [p.into(), t.into(), r.into()]);
    b.atom("role_type", [r.into(), "actress".into()]);
    b.atom("name", [p.into(), g.into()]);
    b.atom("movie_companies", [t.into(), c.into(), ct.into()]);
    b.atom("company_name", [c.into(), "[us]".into()]);
    b.atom("title", [t.into(), k.into(), y.into()]);
    b.head([p.into()]).build().into()
}

/// 10a (5 joins, `cast_info` self-join): actors appearing in recent movies
/// alongside a director credit, per actor — the workload's self-join case.
fn q10a() -> Ucq {
    let mut b = CqBuilder::new();
    let p1 = b.var("p1");
    let p2 = b.var("p2");
    let t = b.var("t");
    let r1 = b.var("r1");
    let r2 = b.var("r2");
    let k = b.var("k");
    let y = b.var("y");
    b.atom("cast_info", [p1.into(), t.into(), r1.into()]);
    b.atom("role_type", [r1.into(), "director".into()]);
    b.atom("cast_info", [p2.into(), t.into(), r2.into()]);
    b.atom("role_type", [r2.into(), "actor".into()]);
    b.atom("title", [t.into(), k.into(), y.into()]);
    b.filter(y.into(), CmpOp::Gt, Term::int(2010));
    b.head([p2.into()]).build().into()
}

/// 1a (5 joins): production companies of recent top-250 movies, per company.
fn q1a() -> Ucq {
    let mut b = CqBuilder::new();
    let ct = b.var("ct");
    let it = b.var("it");
    let t = b.var("t");
    let c = b.var("c");
    let v = b.var("v");
    let k = b.var("k");
    let y = b.var("y");
    b.atom("company_type", [ct.into(), "production companies".into()]);
    b.atom("info_type", [it.into(), "top 250 rank".into()]);
    b.atom("movie_companies", [t.into(), c.into(), ct.into()]);
    b.atom("movie_info_idx", [t.into(), it.into(), v.into()]);
    b.atom("title", [t.into(), k.into(), y.into()]);
    b.filter(y.into(), CmpOp::Gt, Term::int(1990));
    b.head([c.into()]).build().into()
}

/// 6b (5 joins): people cast in "love"-keyword movies, per person.
fn q6b() -> Ucq {
    let mut b = CqBuilder::new();
    let kw = b.var("kw");
    let t = b.var("t");
    let p = b.var("p");
    let r = b.var("r");
    let g = b.var("g");
    let k = b.var("k");
    let y = b.var("y");
    b.atom("keyword", [kw.into(), "love".into()]);
    b.atom("movie_keyword", [t.into(), kw.into()]);
    b.atom("cast_info", [p.into(), t.into(), r.into()]);
    b.atom("name", [p.into(), g.into()]);
    b.atom("title", [t.into(), k.into(), y.into()]);
    b.filter(y.into(), CmpOp::Gt, Term::int(1980));
    b.head([p.into()]).build().into()
}

/// 7c (8 joins): gender of actors in US "money" movies — projects onto two
/// groups, producing the paper's wide, hard-to-compile lineages.
fn q7c() -> Ucq {
    let mut b = CqBuilder::new();
    let p = b.var("p");
    let g = b.var("g");
    let t = b.var("t");
    let r = b.var("r");
    let kw = b.var("kw");
    let c = b.var("c");
    let ct = b.var("ct");
    let k = b.var("k");
    let y = b.var("y");
    b.atom("name", [p.into(), g.into()]);
    b.atom("cast_info", [p.into(), t.into(), r.into()]);
    b.atom("role_type", [r.into(), "actor".into()]);
    b.atom("title", [t.into(), k.into(), y.into()]);
    b.atom("movie_keyword", [t.into(), kw.into()]);
    b.atom("keyword", [kw.into(), "money".into()]);
    b.atom("movie_companies", [t.into(), c.into(), ct.into()]);
    b.atom("company_name", [c.into(), "[us]".into()]);
    b.filter(y.into(), CmpOp::Gt, Term::int(1970));
    b.head([g.into()]).build().into()
}

/// 8d (7 joins): production companies of drama movies with casts, per company.
fn q8d() -> Ucq {
    let mut b = CqBuilder::new();
    let t = b.var("t");
    let c = b.var("c");
    let ct = b.var("ct");
    let k = b.var("k");
    let y = b.var("y");
    let it = b.var("it");
    let p = b.var("p");
    let r = b.var("r");
    let g = b.var("g");
    b.atom("movie_companies", [t.into(), c.into(), ct.into()]);
    b.atom("company_type", [ct.into(), "production companies".into()]);
    b.atom("title", [t.into(), k.into(), y.into()]);
    b.atom("movie_info", [t.into(), it.into(), "Drama".into()]);
    b.atom("info_type", [it.into(), "genres".into()]);
    b.atom("cast_info", [p.into(), t.into(), r.into()]);
    b.atom("name", [p.into(), g.into()]);
    b.head([c.into()]).build().into()
}

/// 11a (8 joins): keywords of recent German productions, per keyword.
fn q11a() -> Ucq {
    let mut b = CqBuilder::new();
    let kw = b.var("kw");
    let kwn = b.var("kwn");
    let t = b.var("t");
    let k = b.var("k");
    let y = b.var("y");
    let c = b.var("c");
    let ct = b.var("ct");
    let it = b.var("it");
    let inf = b.var("inf");
    b.atom("keyword", [kw.into(), kwn.into()]);
    b.atom("movie_keyword", [t.into(), kw.into()]);
    b.atom("title", [t.into(), k.into(), y.into()]);
    b.atom("movie_companies", [t.into(), c.into(), ct.into()]);
    b.atom("company_name", [c.into(), "[de]".into()]);
    b.atom("company_type", [ct.into(), "production companies".into()]);
    b.atom("movie_info", [t.into(), it.into(), inf.into()]);
    b.atom("info_type", [it.into(), "genres".into()]);
    b.filter(y.into(), CmpOp::Gt, Term::int(1995));
    b.head([kwn.into()]).build().into()
}

/// 11d (8 joins): like 11a, US distributors, no year filter — wider output.
fn q11d() -> Ucq {
    let mut b = CqBuilder::new();
    let kw = b.var("kw");
    let kwn = b.var("kwn");
    let t = b.var("t");
    let k = b.var("k");
    let y = b.var("y");
    let c = b.var("c");
    let ct = b.var("ct");
    let it = b.var("it");
    let inf = b.var("inf");
    b.atom("keyword", [kw.into(), kwn.into()]);
    b.atom("movie_keyword", [t.into(), kw.into()]);
    b.atom("title", [t.into(), k.into(), y.into()]);
    b.atom("movie_companies", [t.into(), c.into(), ct.into()]);
    b.atom("company_name", [c.into(), "[us]".into()]);
    b.atom("company_type", [ct.into(), "distributors".into()]);
    b.atom("movie_info", [t.into(), it.into(), inf.into()]);
    b.atom("info_type", [it.into(), "genres".into()]);
    b.head([kwn.into()]).build().into()
}

/// 13c (9 joins, incl. an info_type self-join): well-rated drama movies of
/// production companies, per movie — narrow lineages.
fn q13c() -> Ucq {
    let mut b = CqBuilder::new();
    let t = b.var("t");
    let k = b.var("k");
    let y = b.var("y");
    let it1 = b.var("it1");
    let it2 = b.var("it2");
    let v = b.var("v");
    let c = b.var("c");
    let ct = b.var("ct");
    let cc = b.var("cc");
    b.atom("kind_type", [k.into(), "movie".into()]);
    b.atom("title", [t.into(), k.into(), y.into()]);
    b.atom("movie_info", [t.into(), it1.into(), "Drama".into()]);
    b.atom("info_type", [it1.into(), "genres".into()]);
    b.atom("movie_info_idx", [t.into(), it2.into(), v.into()]);
    b.atom("info_type", [it2.into(), "rating".into()]);
    b.atom("movie_companies", [t.into(), c.into(), ct.into()]);
    b.atom("company_type", [ct.into(), "production companies".into()]);
    b.atom("company_name", [c.into(), cc.into()]);
    b.filter(v.into(), CmpOp::Ge, Term::int(6));
    b.head([t.into()]).build().into()
}

/// 15d (9 joins): release years of US movies with keywords and casts, per
/// year — mid-width lineages.
fn q15d() -> Ucq {
    let mut b = CqBuilder::new();
    let t = b.var("t");
    let k = b.var("k");
    let y = b.var("y");
    let kw = b.var("kw");
    let kwn = b.var("kwn");
    let p = b.var("p");
    let r = b.var("r");
    let c = b.var("c");
    let ct = b.var("ct");
    b.atom("title", [t.into(), k.into(), y.into()]);
    b.atom("kind_type", [k.into(), "movie".into()]);
    b.atom("movie_keyword", [t.into(), kw.into()]);
    b.atom("keyword", [kw.into(), kwn.into()]);
    b.atom("cast_info", [p.into(), t.into(), r.into()]);
    b.atom("role_type", [r.into(), "actor".into()]);
    b.atom("movie_companies", [t.into(), c.into(), ct.into()]);
    b.atom("company_name", [c.into(), "[us]".into()]);
    b.atom("company_type", [ct.into(), "production companies".into()]);
    b.filter(y.into(), CmpOp::Ge, Term::int(2000));
    b.head([y.into()]).build().into()
}

/// 16a (8 joins): countries of companies distributing keyword-tagged movies,
/// per country.
fn q16a() -> Ucq {
    let mut b = CqBuilder::new();
    let t = b.var("t");
    let k = b.var("k");
    let y = b.var("y");
    let kw = b.var("kw");
    let c = b.var("c");
    let ct = b.var("ct");
    let cc = b.var("cc");
    let p = b.var("p");
    let r = b.var("r");
    b.atom("title", [t.into(), k.into(), y.into()]);
    b.atom("movie_keyword", [t.into(), kw.into()]);
    b.atom("keyword", [kw.into(), "friendship".into()]);
    b.atom("movie_companies", [t.into(), c.into(), ct.into()]);
    b.atom("company_name", [c.into(), cc.into()]);
    b.atom("company_type", [ct.into(), "distributors".into()]);
    b.atom("cast_info", [p.into(), t.into(), r.into()]);
    b.atom("role_type", [r.into(), "actress".into()]);
    b.head([cc.into()]).build().into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapdb_query::evaluate;

    #[test]
    fn generator_deterministic_and_skewed() {
        let cfg = ImdbConfig {
            movies: 300,
            ..Default::default()
        };
        let a = imdb_database(&cfg);
        let b = imdb_database(&cfg);
        assert_eq!(a.num_facts(), b.num_facts());
        // Zipf skew: company 0 links to strictly more movies than company 30.
        let mc = a.relation("movie_companies").unwrap();
        let count = |cid: i64| {
            mc.facts()
                .iter()
                .filter(|f| f.values[1] == Value::int(cid))
                .count()
        };
        assert!(count(0) > count(30));
    }

    #[test]
    fn endo_exo_partition() {
        let db = imdb_database(&ImdbConfig {
            movies: 100,
            ..Default::default()
        });
        for rel in ["title", "movie_companies", "movie_info", "cast_info"] {
            assert!(
                db.relation(rel)
                    .unwrap()
                    .facts()
                    .iter()
                    .all(|f| f.endogenous),
                "{rel} should be endogenous"
            );
        }
        for rel in ["keyword", "name", "company_name", "info_type"] {
            assert!(
                db.relation(rel)
                    .unwrap()
                    .facts()
                    .iter()
                    .all(|f| !f.endogenous),
                "{rel} should be exogenous"
            );
        }
    }

    #[test]
    fn all_queries_run() {
        let db = imdb_database(&ImdbConfig {
            movies: 400,
            ..Default::default()
        });
        let mut nonempty = 0;
        for q in imdb_queries() {
            let res = evaluate(&q.ucq, &db);
            if !res.is_empty() {
                nonempty += 1;
            }
            for out in res.outputs.iter().take(5) {
                assert!(!out.lineage.is_empty(), "{}", q.name);
            }
        }
        // At this scale the vast majority of queries must produce output.
        assert!(nonempty >= 12, "only {nonempty}/15 queries returned tuples");
    }

    #[test]
    fn lineage_width_spectrum() {
        // The paper buckets provenance sizes 1-10 / 11-100 / 101-200 / 201-400;
        // our synthetic instance must cover both narrow and wide lineages.
        let db = imdb_database(&ImdbConfig {
            movies: 800,
            ..Default::default()
        });
        let mut widths: Vec<usize> = Vec::new();
        for q in imdb_queries() {
            let res = evaluate(&q.ucq, &db);
            for out in &res.outputs {
                widths.push(out.endo_lineage(&db).vars().len());
            }
        }
        let narrow = widths.iter().filter(|&&w| w <= 10).count();
        let wide = widths.iter().filter(|&&w| w > 100).count();
        assert!(narrow > 0, "no narrow lineages");
        assert!(wide > 0, "no wide lineages (max {:?})", widths.iter().max());
    }

    #[test]
    fn join_counts_match_table_1_shape() {
        let qs = imdb_queries();
        let by_name = |n: &str| {
            qs.iter()
                .find(|q| q.name == n)
                .unwrap()
                .ucq
                .num_joined_tables()
        };
        assert_eq!(by_name("1a"), 5);
        assert_eq!(by_name("2a"), 5);
        assert_eq!(by_name("3b"), 5);
        assert_eq!(by_name("4a"), 5);
        assert_eq!(by_name("5c"), 6);
        assert_eq!(by_name("6b"), 5);
        assert_eq!(by_name("7c"), 8);
        assert_eq!(by_name("8d"), 7);
        assert_eq!(by_name("9d"), 6);
        assert_eq!(by_name("10a"), 5);
        assert_eq!(by_name("11a"), 8);
        assert_eq!(by_name("11d"), 8);
        assert_eq!(by_name("13c"), 9);
        assert_eq!(by_name("15d"), 9);
        assert_eq!(by_name("16a"), 8);
    }

    #[test]
    fn q10a_exercises_a_self_join() {
        use shapdb_query::is_self_join_free;
        let q10a = imdb_queries()
            .into_iter()
            .find(|q| q.name == "10a")
            .unwrap();
        assert!(!is_self_join_free(&q10a.ucq.disjuncts()[0]));
        // 13c self-joins `info_type`; the remaining thirteen are
        // self-join free.
        for q in imdb_queries() {
            match q.name.as_str() {
                "10a" | "13c" => {
                    assert!(!is_self_join_free(&q.ucq.disjuncts()[0]), "{}", q.name)
                }
                _ => assert!(is_self_join_free(&q.ucq.disjuncts()[0]), "{}", q.name),
            }
        }
    }
}
