//! TPC-H-lite: schema, seeded generator, and the eight Table 1 queries.
//!
//! The schema keeps the columns the queries touch (the full TPC-H row
//! payloads would only inflate memory without affecting provenance). Row
//! counts scale linearly with [`TpchConfig::scale`], mirroring dbgen's
//! proportions (at scale 1.0: 10 suppliers, 150 customers, 200 parts, 800
//! partsupps, 1 500 orders, 6 000 lineitems — i.e. dbgen's SF 0.001).
//!
//! Queries follow the paper's adaptation of the TPC-H suite: aggregation
//! and nesting removed, selections and joins kept, and a projection that
//! groups many derivations per output tuple. `lineitem`, `orders` and
//! `partsupp` facts are endogenous; dimension tables are exogenous.

use crate::WorkloadQuery;
use rand::prelude::*;
use shapdb_data::{Database, Value};
use shapdb_query::{CmpOp, CqBuilder, Term, Ucq};

/// Generator knobs.
#[derive(Clone, Copy, Debug)]
pub struct TpchConfig {
    /// Linear row-count multiplier (1.0 ≈ dbgen SF 0.001).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale: 1.0,
            seed: 0x7C9,
        }
    }
}

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const NATIONS: [&str; 10] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "JAPAN",
    "KENYA",
];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];
const SHIP_MODES: [&str; 4] = ["AIR", "RAIL", "SHIP", "TRUCK"];
const CONTAINERS: [&str; 4] = ["SM CASE", "MED BOX", "LG BOX", "JUMBO PKG"];
const TYPES: [&str; 5] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY"];

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(2)
}

/// Generates the TPC-H-lite database.
///
/// Schema:
/// ```text
/// region(key, name)                                  exogenous
/// nation(key, name, regionkey)                       exogenous
/// supplier(key, nationkey)                           exogenous
/// customer(key, nationkey, mktsegment)               exogenous
/// part(key, brand, type, size, container)            exogenous
/// partsupp(partkey, suppkey, availqty)               endogenous
/// orders(key, custkey, orderdate)                    endogenous
/// lineitem(orderkey, partkey, suppkey, linenumber,
///          quantity, shipdate, returnflag, shipmode) endogenous
/// ```
pub fn tpch_database(cfg: &TpchConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new();
    db.create_relation("region", &["key", "name"]);
    db.create_relation("nation", &["key", "name", "regionkey"]);
    db.create_relation("supplier", &["key", "nationkey"]);
    db.create_relation("customer", &["key", "nationkey", "mktsegment"]);
    db.create_relation("part", &["key", "brand", "type", "size", "container"]);
    db.create_relation("partsupp", &["partkey", "suppkey", "availqty"]);
    db.create_relation("orders", &["key", "custkey", "orderdate"]);
    db.create_relation(
        "lineitem",
        &[
            "orderkey",
            "partkey",
            "suppkey",
            "linenumber",
            "quantity",
            "shipdate",
            "returnflag",
            "shipmode",
        ],
    );

    for (i, r) in REGIONS.iter().enumerate() {
        db.insert_exo("region", vec![Value::int(i as i64), Value::str(r)]);
    }
    let n_nations = NATIONS.len();
    for (i, n) in NATIONS.iter().enumerate() {
        db.insert_exo(
            "nation",
            vec![
                Value::int(i as i64),
                Value::str(n),
                Value::int((i % REGIONS.len()) as i64),
            ],
        );
    }
    let n_supplier = scaled(10, cfg.scale);
    for i in 0..n_supplier {
        db.insert_exo(
            "supplier",
            vec![
                Value::int(i as i64),
                Value::int(rng.random_range(0..n_nations) as i64),
            ],
        );
    }
    let n_customer = scaled(150, cfg.scale);
    for i in 0..n_customer {
        db.insert_exo(
            "customer",
            vec![
                Value::int(i as i64),
                Value::int(rng.random_range(0..n_nations) as i64),
                Value::str(SEGMENTS[rng.random_range(0..SEGMENTS.len())]),
            ],
        );
    }
    let n_part = scaled(200, cfg.scale);
    for i in 0..n_part {
        db.insert_exo(
            "part",
            vec![
                Value::int(i as i64),
                Value::int(rng.random_range(1..=25)), // brand id
                Value::str(TYPES[rng.random_range(0..TYPES.len())]),
                Value::int(rng.random_range(1..=50)),
                Value::str(CONTAINERS[rng.random_range(0..CONTAINERS.len())]),
            ],
        );
    }
    let n_partsupp = scaled(800, cfg.scale);
    for _ in 0..n_partsupp {
        db.insert_endo(
            "partsupp",
            vec![
                Value::int(rng.random_range(0..n_part) as i64),
                Value::int(rng.random_range(0..n_supplier) as i64),
                Value::int(rng.random_range(1..10_000)),
            ],
        );
    }
    let n_orders = scaled(1500, cfg.scale);
    for i in 0..n_orders {
        db.insert_endo(
            "orders",
            vec![
                Value::int(i as i64),
                Value::int(rng.random_range(0..n_customer) as i64),
                Value::int(rng.random_range(0..2557)), // day number over ~7y
            ],
        );
    }
    let n_lineitem = scaled(6000, cfg.scale);
    for i in 0..n_lineitem {
        db.insert_endo(
            "lineitem",
            vec![
                Value::int(rng.random_range(0..n_orders) as i64),
                Value::int(rng.random_range(0..n_part) as i64),
                Value::int(rng.random_range(0..n_supplier) as i64),
                Value::int((i % 7) as i64),
                Value::int(rng.random_range(1..=50)),
                Value::int(rng.random_range(0..2557)),
                Value::str(RETURN_FLAGS[rng.random_range(0..RETURN_FLAGS.len())]),
                Value::str(SHIP_MODES[rng.random_range(0..SHIP_MODES.len())]),
            ],
        );
    }
    db
}

/// The eight Table 1 queries (paper-style SPJ adaptations).
pub fn tpch_queries() -> Vec<WorkloadQuery> {
    vec![
        WorkloadQuery::new("Q3", q3()),
        WorkloadQuery::new("Q5", q5()),
        WorkloadQuery::new("Q7", q7()),
        WorkloadQuery::new("Q10", q10()),
        WorkloadQuery::new("Q11", q11()),
        WorkloadQuery::new("Q16", q16()),
        WorkloadQuery::new("Q18", q18()),
        WorkloadQuery::new("Q19", q19()),
    ]
}

/// Q3 (shipping priority, de-aggregated): orders of BUILDING customers with
/// late-shipped lineitems, per order.
fn q3() -> Ucq {
    let mut b = CqBuilder::new();
    let ck = b.var("ck");
    let ok = b.var("ok");
    let odate = b.var("odate");
    let pk = b.var("pk");
    let sk = b.var("sk");
    let ln = b.var("ln");
    let qty = b.var("qty");
    let sdate = b.var("sdate");
    let rf = b.var("rf");
    let sm = b.var("sm");
    let cn = b_var(&mut b, "cn");
    b.atom("customer", [ck.into(), cn, "BUILDING".into()]);
    b.atom("orders", [ok.into(), ck.into(), odate.into()]);
    b.atom(
        "lineitem",
        [
            ok.into(),
            pk.into(),
            sk.into(),
            ln.into(),
            qty.into(),
            sdate.into(),
            rf.into(),
            sm.into(),
        ],
    );
    b.filter(odate.into(), CmpOp::Lt, Term::int(1200));
    b.filter(sdate.into(), CmpOp::Gt, Term::int(1200));
    b.head([ok.into()]).build().into()
}

// Small helper: declare a throwaway variable inline.
fn b_var(b: &mut CqBuilder, name: &str) -> Term {
    Term::Var(b.var(name))
}

/// Q5 (local supplier volume): customers, orders, lineitems and suppliers of
/// the same ASIA nation, per nation.
fn q5() -> Ucq {
    let mut b = CqBuilder::new();
    let nk = b.var("nk");
    let nname = b.var("nname");
    let rk = b.var("rk");
    let ck = b.var("ck");
    let ok = b.var("ok");
    let odate = b.var("odate");
    let pk = b.var("pk");
    let sk = b.var("sk");
    let seg = b_var(&mut b, "seg");
    let ln = b_var(&mut b, "ln");
    let qty = b_var(&mut b, "qty");
    let sdate = b_var(&mut b, "sdate");
    let rf = b_var(&mut b, "rf");
    let sm = b_var(&mut b, "sm");
    b.atom("region", [rk.into(), "ASIA".into()]);
    b.atom("nation", [nk.into(), nname.into(), rk.into()]);
    b.atom("customer", [ck.into(), nk.into(), seg]);
    b.atom("orders", [ok.into(), ck.into(), odate.into()]);
    b.atom(
        "lineitem",
        [ok.into(), pk.into(), sk.into(), ln, qty, sdate, rf, sm],
    );
    b.atom("supplier", [sk.into(), nk.into()]);
    b.filter(odate.into(), CmpOp::Ge, Term::int(400));
    b.filter(odate.into(), CmpOp::Lt, Term::int(1900));
    b.head([nname.into()]).build().into()
}

/// Q7 (volume shipping): FRANCE customers buying via GERMANY suppliers
/// (self-join on `nation`), per supplier nation name.
fn q7() -> Ucq {
    let mut b = CqBuilder::new();
    let sk = b.var("sk");
    let snk = b.var("snk");
    let ok = b.var("ok");
    let ck = b.var("ck");
    let cnk = b.var("cnk");
    let sdate = b.var("sdate");
    let pk = b_var(&mut b, "pk");
    let ln = b_var(&mut b, "ln");
    let qty = b_var(&mut b, "qty");
    let rf = b_var(&mut b, "rf");
    let sm = b_var(&mut b, "sm");
    let odate = b_var(&mut b, "odate");
    let seg = b_var(&mut b, "seg");
    let r1 = b_var(&mut b, "r1");
    let r2 = b_var(&mut b, "r2");
    b.atom("supplier", [sk.into(), snk.into()]);
    b.atom(
        "lineitem",
        [ok.into(), pk, sk.into(), ln, qty, sdate.into(), rf, sm],
    );
    b.atom("orders", [ok.into(), ck.into(), odate]);
    b.atom("customer", [ck.into(), cnk.into(), seg]);
    b.atom("nation", [snk.into(), "GERMANY".into(), r1]);
    b.atom("nation", [cnk.into(), "FRANCE".into(), r2]);
    b.filter(sdate.into(), CmpOp::Ge, Term::int(700));
    b.filter(sdate.into(), CmpOp::Le, Term::int(1400));
    b.head([ok.into()]).build().into()
}

/// Q10 (returned items): customers with returned lineitems, per customer.
fn q10() -> Ucq {
    let mut b = CqBuilder::new();
    let ck = b.var("ck");
    let cnk = b.var("cnk");
    let ok = b.var("ok");
    let odate = b.var("odate");
    let seg = b_var(&mut b, "seg");
    let pk = b_var(&mut b, "pk");
    let sk = b_var(&mut b, "sk");
    let ln = b_var(&mut b, "ln");
    let qty = b_var(&mut b, "qty");
    let sdate = b_var(&mut b, "sdate");
    let sm = b_var(&mut b, "sm");
    let nn = b_var(&mut b, "nn");
    let rk = b_var(&mut b, "rk");
    b.atom("customer", [ck.into(), cnk.into(), seg]);
    b.atom("orders", [ok.into(), ck.into(), odate.into()]);
    b.atom(
        "lineitem",
        [ok.into(), pk, sk, ln, qty, sdate, "R".into(), sm],
    );
    b.atom("nation", [cnk.into(), nn, rk]);
    b.filter(odate.into(), CmpOp::Ge, Term::int(800));
    b.filter(odate.into(), CmpOp::Lt, Term::int(1100));
    b.head([ck.into()]).build().into()
}

/// Q11 (important stock): GERMANY partsupps, per part.
fn q11() -> Ucq {
    let mut b = CqBuilder::new();
    let pk = b.var("pk");
    let sk = b.var("sk");
    let nk = b.var("nk");
    let qty = b.var("aq");
    let rk = b_var(&mut b, "rk");
    b.atom("partsupp", [pk.into(), sk.into(), qty.into()]);
    b.atom("supplier", [sk.into(), nk.into()]);
    b.atom("nation", [nk.into(), "GERMANY".into(), rk]);
    b.filter(qty.into(), CmpOp::Gt, Term::int(100));
    b.head([pk.into()]).build().into()
}

/// Q16 (supplier part relationship): mid-size STANDARD parts, per brand.
fn q16() -> Ucq {
    let mut b = CqBuilder::new();
    let pk = b.var("pk");
    let sk = b.var("sk");
    let brand = b.var("brand");
    let size = b.var("size");
    let aq = b_var(&mut b, "aq");
    let cont = b_var(&mut b, "cont");
    let nk = b_var(&mut b, "nk");
    b.atom("partsupp", [pk.into(), sk.into(), aq]);
    b.atom(
        "part",
        [
            pk.into(),
            brand.into(),
            "STANDARD".into(),
            size.into(),
            cont,
        ],
    );
    b.atom("supplier", [sk.into(), nk]);
    b.filter(size.into(), CmpOp::Ge, Term::int(10));
    b.filter(size.into(), CmpOp::Le, Term::int(30));
    b.head([brand.into()]).build().into()
}

/// Q18 (large volume customers): big-quantity lineitems, per order.
fn q18() -> Ucq {
    let mut b = CqBuilder::new();
    let ck = b.var("ck");
    let ok = b.var("ok");
    let qty = b.var("qty");
    let cnk = b_var(&mut b, "cnk");
    let seg = b_var(&mut b, "seg");
    let odate = b_var(&mut b, "odate");
    let pk = b_var(&mut b, "pk");
    let sk = b_var(&mut b, "sk");
    let ln = b_var(&mut b, "ln");
    let sdate = b_var(&mut b, "sdate");
    let rf = b_var(&mut b, "rf");
    let sm = b_var(&mut b, "sm");
    b.atom("customer", [ck.into(), cnk, seg]);
    b.atom("orders", [ok.into(), ck.into(), odate]);
    b.atom(
        "lineitem",
        [ok.into(), pk, sk, ln, qty.into(), sdate, rf, sm],
    );
    b.filter(qty.into(), CmpOp::Ge, Term::int(45));
    b.head([ok.into()]).build().into()
}

/// Q19 (discounted revenue): three disjunctive brand/container/quantity
/// groups — a genuine UCQ, per brand.
fn q19() -> Ucq {
    let make = |brand_lo: i64, brand_hi: i64, container: &str, qty_lo: i64| {
        let mut b = CqBuilder::new();
        let pk = b.var("pk");
        let brand = b.var("brand");
        let qty = b.var("qty");
        let size = b.var("size");
        let typ = b_var(&mut b, "typ");
        let ok = b_var(&mut b, "ok");
        let sk = b_var(&mut b, "sk");
        let ln = b_var(&mut b, "ln");
        let sdate = b_var(&mut b, "sdate");
        let rf = b_var(&mut b, "rf");
        b.atom(
            "part",
            [pk.into(), brand.into(), typ, size.into(), container.into()],
        );
        b.atom(
            "lineitem",
            [ok, pk.into(), sk, ln, qty.into(), sdate, rf, "AIR".into()],
        );
        b.filter(brand.into(), CmpOp::Ge, Term::int(brand_lo));
        b.filter(brand.into(), CmpOp::Le, Term::int(brand_hi));
        b.filter(qty.into(), CmpOp::Ge, Term::int(qty_lo));
        b.filter(qty.into(), CmpOp::Le, Term::int(qty_lo + 10));
        b.filter(size.into(), CmpOp::Le, Term::int(15));
        b.head([brand.into()]).build()
    };
    Ucq::new(vec![
        make(1, 8, "SM CASE", 1),
        make(9, 16, "MED BOX", 10),
        make(17, 25, "LG BOX", 20),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapdb_query::evaluate;

    #[test]
    fn generator_is_deterministic() {
        let a = tpch_database(&TpchConfig::default());
        let b = tpch_database(&TpchConfig::default());
        assert_eq!(a.num_facts(), b.num_facts());
        assert_eq!(
            a.fact(shapdb_data::FactId(100)).values,
            b.fact(shapdb_data::FactId(100)).values
        );
    }

    #[test]
    fn scale_controls_size() {
        let small = tpch_database(&TpchConfig {
            scale: 0.5,
            ..Default::default()
        });
        let big = tpch_database(&TpchConfig {
            scale: 2.0,
            ..Default::default()
        });
        assert!(big.num_facts() > 2 * small.num_facts() / 2);
        assert!(
            big.relation("lineitem").unwrap().len() > small.relation("lineitem").unwrap().len()
        );
    }

    #[test]
    fn endo_exo_partition() {
        let db = tpch_database(&TpchConfig::default());
        let endo = db.num_endogenous();
        let lineitem = db.relation("lineitem").unwrap().len();
        let orders = db.relation("orders").unwrap().len();
        let partsupp = db.relation("partsupp").unwrap().len();
        assert_eq!(endo, lineitem + orders + partsupp);
        assert!(db
            .relation("customer")
            .unwrap()
            .facts()
            .iter()
            .all(|f| !f.endogenous));
    }

    #[test]
    fn all_queries_run_and_produce_lineage() {
        let db = tpch_database(&TpchConfig {
            scale: 0.25,
            seed: 11,
        });
        for q in tpch_queries() {
            let res = evaluate(&q.ucq, &db);
            // Every query must at least type-check against the schema; most
            // produce outputs at this scale.
            for out in &res.outputs {
                assert!(!out.lineage.is_empty(), "{}: empty lineage", q.name);
                let elin = out.endo_lineage(&db);
                assert!(!elin.is_empty(), "{}: no endogenous lineage", q.name);
            }
        }
    }

    #[test]
    fn q19_is_a_real_union() {
        let q = q19();
        assert_eq!(q.disjuncts().len(), 3);
        assert_eq!(q.arity(), 1);
    }

    #[test]
    fn table_1_shape_metadata() {
        // #joined tables matches the paper's Table 1 counts loosely (our
        // de-aggregated variants): Q3 joins 3 relations, Q5 joins 6, etc.
        let qs = tpch_queries();
        let by_name = |n: &str| {
            qs.iter()
                .find(|q| q.name == n)
                .unwrap()
                .ucq
                .num_joined_tables()
        };
        assert_eq!(by_name("Q3"), 3);
        assert_eq!(by_name("Q5"), 6);
        assert_eq!(by_name("Q7"), 6);
        assert_eq!(by_name("Q10"), 4);
        assert_eq!(by_name("Q11"), 3);
        assert_eq!(by_name("Q16"), 3);
        assert_eq!(by_name("Q18"), 3);
        assert_eq!(by_name("Q19"), 2);
    }
}
