//! # shapdb-workloads — the paper's benchmark workloads, synthesized
//!
//! §6 of the paper evaluates on TPC-H (1.4 GB) and IMDB (1.2 GB) with 40
//! queries adapted from the TPC-H specification and the Join Order Benchmark
//! (JOB): nested queries and aggregates removed (TPC-H), and a final
//! projection added over a join attribute (IMDB) to make provenance
//! non-trivial. Neither raw dataset ships with this repository — TPC-H's
//! dbgen is external tooling and IMDB's dataset is proprietary — so this
//! crate provides *seeded synthetic generators* with the same schemas,
//! foreign-key structure, and skew:
//!
//! * [`tpch`] — the eight TPC-H-derived queries of Table 1 (Q3, Q5, Q7, Q10,
//!   Q11, Q16, Q18, Q19) over a scaled TPC-H schema; transaction tables
//!   (`lineitem`, `orders`, `partsupp`) are endogenous, dimensions exogenous;
//! * [`imdb`] — nine JOB-flavored queries (1a, 6b, 7c, 8d, 11a, 11d, 13c,
//!   15d, 16a analogs) over a JOB-style movie schema with Zipf-skewed
//!   foreign keys, so output lineages span the paper's 1–400 facts range;
//! * [`flights`] — the running example (Figure 1) packaged as a workload.
//!
//! The generators are deterministic per seed, so every experiment in the
//! bench harness is reproducible. The substitution (real data → synthetic)
//! preserves what the experiments actually measure: lineage width/shape
//! drives knowledge-compilation difficulty, and both are controlled here by
//! the same knobs (fan-out, skew, selectivity).

pub mod flights;
pub mod imdb;
pub mod job;
pub mod tpch;

pub use flights::flights_workload;
pub use imdb::{imdb_database, imdb_queries, ImdbConfig};
pub use job::{job_database, job_ranking_query, JobConfig};
pub use tpch::{tpch_database, tpch_queries, TpchConfig};

use rand::prelude::*;
use shapdb_query::Ucq;

/// Zipf(1) sampler over `0..n` via inverse-CDF on precomputed cumulative
/// weights — popular ids are low ids. Shared by the skewed generators.
pub(crate) struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    pub(crate) fn new(n: usize) -> Zipf {
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / (i + 1) as f64;
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    pub(crate) fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty Zipf domain");
        let x = rng.random_range(0.0..total);
        self.cumulative
            .partition_point(|&c| c < x)
            .min(self.cumulative.len() - 1)
    }
}

/// A named benchmark query.
#[derive(Clone, Debug)]
pub struct WorkloadQuery {
    /// Paper-style identifier (e.g. `"Q3"` or `"8d"`).
    pub name: String,
    /// The query.
    pub ucq: Ucq,
}

impl WorkloadQuery {
    pub(crate) fn new(name: &str, ucq: Ucq) -> WorkloadQuery {
        WorkloadQuery {
            name: name.to_string(),
            ucq,
        }
    }
}
