//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access to crates.io, so this shim
//! provides exactly the 0.9-style API surface the workspace uses:
//!
//! * [`StdRng`] + [`SeedableRng::seed_from_u64`] — a seeded xoshiro256++
//!   generator (not the upstream ChaCha12; every caller in this workspace
//!   seeds explicitly and asserts statistical properties, never exact
//!   streams, so the algorithm choice is free);
//! * [`Rng::random_range`] / [`Rng::random_bool`];
//! * [`SliceRandom::shuffle`] and [`SliceRandom::choose_weighted`].
//!
//! If the real crate ever becomes available, deleting the `shims/` path
//! entries from the crate manifests swaps it back in without source changes.

/// The raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `u64` convenience constructor is needed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ by Blackman & Vigna, seeded through SplitMix64 as the
/// authors recommend. Passes BigCrush; more than adequate for Monte Carlo
/// sampling and synthetic data generation.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 stream to fill the state; never all-zero.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Range types [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` (span > 0). Multiply-shift bounded sampling
/// (Lemire); the residual bias is < 2⁻⁶⁴ per draw.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: a raw draw is already uniform.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(bounded(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        // `start + unit*span` can round up to `end` when the span's ULP is
        // coarse; the contract (like real rand's) is half-open.
        if v < self.end {
            v
        } else {
            self.end.next_down()
        }
    }
}

/// The high-level sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0,1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Error from [`SliceRandom::choose_weighted`] on empty/degenerate input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightError;

impl core::fmt::Display for WeightError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid weights for choose_weighted")
    }
}

impl std::error::Error for WeightError {}

/// Slice extensions: Fisher–Yates shuffle and weighted choice.
pub trait SliceRandom {
    type Item;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    fn choose_weighted<R, F>(&self, rng: &mut R, weight: F) -> Result<&Self::Item, WeightError>
    where
        R: RngCore + ?Sized,
        F: Fn(&Self::Item) -> f64;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = bounded(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose_weighted<R, F>(&self, rng: &mut R, weight: F) -> Result<&T, WeightError>
    where
        R: RngCore + ?Sized,
        F: Fn(&T) -> f64,
    {
        let mut total = 0.0f64;
        let mut weights = Vec::with_capacity(self.len());
        for item in self {
            let w = weight(item);
            if !w.is_finite() || w < 0.0 {
                return Err(WeightError);
            }
            weights.push(w);
            total += w;
        }
        if self.is_empty() || !total.is_finite() || total <= 0.0 {
            return Err(WeightError);
        }
        let mut x = core::ops::Range {
            start: 0.0,
            end: total,
        }
        .sample_single(rng);
        for (item, w) in self.iter().zip(&weights) {
            x -= w;
            if x < 0.0 {
                return Ok(item);
            }
        }
        // Floating-point rounding fallthrough: never land on a zero-weight
        // item (the upstream contract); pick the last positive-weight one.
        let idx = weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("total > 0 implies a positive weight");
        Ok(&self[idx])
    }
}

pub mod prelude {
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn choose_weighted_respects_weights() {
        let mut rng = StdRng::seed_from_u64(11);
        let items = [0usize, 1, 2];
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[*items.choose_weighted(&mut rng, |&i| weights[i]).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[2] > 2 * counts[1], "counts = {counts:?}");
        let empty: [usize; 0] = [];
        assert!(empty.choose_weighted(&mut rng, |_| 1.0).is_err());
    }

    #[test]
    fn choose_weighted_rejects_invalid_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [0usize, 1];
        // Negative and NaN weights are contract violations even when the
        // total is positive.
        assert!(items
            .choose_weighted(&mut rng, |&i| [-1.0, 3.0][i])
            .is_err());
        assert!(items
            .choose_weighted(&mut rng, |&i| [f64::NAN, 3.0][i])
            .is_err());
        assert!(items
            .choose_weighted(&mut rng, |&i| [f64::INFINITY, 3.0][i])
            .is_err());
        assert!(items.choose_weighted(&mut rng, |_| 0.0).is_err());
    }

    #[test]
    fn f64_range_stays_half_open_under_coarse_ulp() {
        // At 1e16 the ULP is 2.0, so naive start + unit*span rounds to end.
        let mut rng = StdRng::seed_from_u64(17);
        let (start, end) = (1e16f64, 1e16 + 2.0);
        for _ in 0..100_000 {
            let v = rng.random_range(start..end);
            assert!(v >= start && v < end, "{v} escaped [{start}, {end})");
        }
    }
}
