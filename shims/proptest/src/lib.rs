//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering the surface this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`],
//! * strategies: integer/`bool` [`any`], numeric ranges, tuples, and
//!   [`collection::vec`].
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed (derived from the test name), and failing inputs are
//! reported but **not shrunk**. Both are acceptable here — these tests pit
//! implementations against oracles on small random instances, so a failure
//! report with the full input is already actionable.

use rand::prelude::*;

/// Per-test configuration (only the case count is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps oracle-vs-implementation suites
        // (which run exponential-time oracles per case) fast.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input: skip, doesn't count as a failure.
    Reject,
    /// `prop_assert*!` failed.
    Fail(String),
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. The shim generates directly (no value trees, no
/// shrinking).
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

/// `any::<T>()` — the full domain of `T`.
pub struct Any<T>(core::marker::PhantomData<T>);

pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(core::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                // Truncating a uniform 64/128-bit draw stays uniform.
                if core::mem::size_of::<$t>() > 8 {
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    wide as $t
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

// `u128`/`i128` ranges (used as `1u128..`): sample two limbs then clamp into
// the span by widening rejection-free modular reduction.
macro_rules! impl_range_strategy_128 {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let span = (<$t>::MAX as u128).wrapping_sub(self.start as u128).wrapping_add(1);
                if span == 0 {
                    raw as $t
                } else {
                    self.start.wrapping_add((raw % span) as $t)
                }
            }
        }
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end);
                let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((raw % span) as $t)
            }
        }
    )*};
}

impl_range_strategy_128!(u128, i128);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $v:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / a, B / b),
    (A / a, B / b, C / c),
    (A / a, B / b, C / c, D / d),
);

pub mod collection {
    use super::*;

    /// Inclusive length bounds for [`vec()`]; built from a `usize` (exact
    /// length), a `Range<usize>`, or a `RangeInclusive<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty length range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.min..=self.len.max);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Stable per-test seed: FNV-1a over the test path, so every test draws an
/// independent, reproducible stream.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    // `stringify!` output is passed as an argument, never spliced into the
    // format literal: conditions may contain `{`/`}` (closures, structs).
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), format!($($fmt)*), l, r
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        // The `#[test]` attribute is written by the caller inside the
        // `proptest!` block (the crate's documented style) and passed
        // through here.
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = <$crate::__rng::StdRng as $crate::__rng::SeedableRng>::seed_from_u64(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).max(1024),
                    "proptest: too many inputs rejected by prop_assume!"
                );
                let __generated =
                    ($($crate::Strategy::generate(&($strat), &mut rng),)+);
                // The body takes the inputs by value; keep a clone so the
                // failure arm can report them (cheaper than eagerly
                // Debug-formatting on the hot passing path).
                let __kept = __generated.clone();
                let __result: $crate::TestCaseResult = (move || {
                    let ($($arg,)+) = __generated;
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __result {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed (case {} of {}): {}\ninputs: {} = {:?}",
                            accepted + 1,
                            config.cases,
                            msg,
                            stringify!(($($arg),+)),
                            __kept,
                        );
                    }
                }
            }
        }
    )*};
}

#[doc(hidden)]
pub mod __rng {
    pub use rand::{SeedableRng, StdRng};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Any, ProptestConfig, Strategy, TestCaseError, TestCaseResult};
}

pub mod strategy {
    pub use crate::Strategy;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in any::<i32>(), b in any::<i32>()) {
            prop_assert_eq!(a as i64 + b as i64, b as i64 + a as i64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn vec_lengths_in_range(v in collection::vec(0usize..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #[test]
        fn tuples_and_assume((x, flag) in (1usize..100, any::<bool>()), y in 0usize..100) {
            prop_assume!(y != x);
            prop_assert!((1..100).contains(&x));
            prop_assert!(flag == (flag as u8 == 1));
            prop_assert!(y != x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_inputs() {
        proptest_inner();
    }

    fn proptest_inner() {
        let config = ProptestConfig::with_cases(4);
        let mut rng = <crate::__rng::StdRng as crate::__rng::SeedableRng>::seed_from_u64(1);
        for _ in 0..config.cases {
            let x = crate::Strategy::generate(&(0usize..10), &mut rng);
            let r: TestCaseResult = (|| {
                prop_assert!(x > 100, "x was {}", x);
                Ok(())
            })();
            if let Err(TestCaseError::Fail(msg)) = r {
                panic!("proptest case failed: {msg}");
            }
        }
    }
}
