//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness. The build environment has no crates.io access, so this
//! shim implements the API surface the `shapdb_bench` benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], [`criterion_group!`], [`criterion_main!`] — with honest
//! wall-clock measurement (median / mean / min over N samples, one line per
//! benchmark). No statistical regression analysis, plots, or saved
//! baselines; for trajectory tracking, commit the printed numbers.
//!
//! Benches must set `harness = false` (same as with the real crate).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // The real default is 100 samples; 20 keeps full `cargo bench` runs
        // tractable for the heavier knowledge-compilation benches.
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into().id, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into().id, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Passed to the measured closure; [`Bencher::iter`] times one sample.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call (cold caches, lazy statics), then timed samples.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let label = format!("{group}/{id}");
    if bencher.samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    bencher.samples.sort_unstable();
    let n = bencher.samples.len();
    let median = bencher.samples[n / 2];
    let min = bencher.samples[0];
    let mean = bencher.samples.iter().sum::<Duration>() / n as u32;
    println!(
        "{label:<60} median {:>12} | mean {:>12} | min {:>12} | n={n}",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(min),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Builds the function the matching [`criterion_main!`] invokes.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_formats() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("spin", |b| {
            b.iter(|| {
                runs += 1;
                (0..1000u64).sum::<u64>()
            })
        });
        group.finish();
        assert_eq!(runs, 4, "1 warm-up + 3 samples");
    }

    #[test]
    fn benchmark_ids_compose() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("8x8").id, "8x8");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
